//! Property-based end-to-end tests: random datasets, random thresholds —
//! the distributed algorithms must match the brute-force result exactly.

use proptest::prelude::*;

use minispark::{Cluster, ClusterConfig};
use topk_rankings::Ranking;
use topk_simjoin::{Algorithm, JoinConfig};

/// A random dataset of `n` rankings with `k` distinct items from a small
/// universe (small universe ⇒ high overlap ⇒ the regime where filter bugs
/// would surface).
fn dataset(n: usize, k: usize, universe: u32) -> impl Strategy<Value = Vec<Ranking>> {
    proptest::collection::vec(
        proptest::sample::subsequence((0..universe).collect::<Vec<u32>>(), k).prop_shuffle(),
        n,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(id, items)| Ranking::new_unchecked(id as u64, items))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vj_and_vj_nl_match_brute_force(
        data in dataset(40, 6, 14),
        theta in 0.0f64..=0.5,
    ) {
        let cluster = Cluster::new(ClusterConfig::local(4).with_default_partitions(8));
        let config = JoinConfig::new(theta);
        let expected = Algorithm::BruteForce.run(&cluster, &data, &config).unwrap().pairs;
        let vj = Algorithm::Vj.run(&cluster, &data, &config).unwrap().pairs;
        prop_assert_eq!(&vj, &expected);
        let vjnl = Algorithm::VjNl.run(&cluster, &data, &config).unwrap().pairs;
        prop_assert_eq!(&vjnl, &expected);
    }

    #[test]
    fn cl_and_clp_match_brute_force(
        data in dataset(40, 6, 14),
        theta in 0.0f64..=0.5,
        theta_c in 0.0f64..=0.15,
        delta in 1usize..=20,
    ) {
        let cluster = Cluster::new(ClusterConfig::local(4).with_default_partitions(8));
        let config = JoinConfig::new(theta)
            .with_cluster_threshold(theta_c)
            .with_partition_threshold(delta);
        let expected = Algorithm::BruteForce.run(&cluster, &data, &config).unwrap().pairs;
        let cl = Algorithm::Cl.run(&cluster, &data, &config).unwrap().pairs;
        prop_assert_eq!(&cl, &expected, "CL, θ={}, θc={}", theta, theta_c);
        let clp = Algorithm::ClP.run(&cluster, &data, &config).unwrap().pairs;
        prop_assert_eq!(&clp, &expected, "CL-P, θ={}, θc={}, δ={}", theta, theta_c, delta);
    }

    #[test]
    fn repartitioned_vj_matches_brute_force(
        data in dataset(35, 5, 12),
        theta in 0.0f64..=0.6,
        delta in 1usize..=15,
    ) {
        let cluster = Cluster::new(ClusterConfig::local(4).with_default_partitions(8));
        let config = JoinConfig::new(theta).with_partition_threshold(delta);
        let expected = Algorithm::BruteForce.run(&cluster, &data, &config).unwrap().pairs;
        let got = Algorithm::VjRepartitioned.run(&cluster, &data, &config).unwrap().pairs;
        prop_assert_eq!(got, expected);
    }
}
