//! Invariance tests: the result set must not depend on any tuning knob —
//! partition counts, node counts, δ, θc, prefix flavour, position filter.
//! (Performance depends on all of them; correctness on none.)

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_rankings::{PrefixKind, Ranking};
use topk_simjoin::{Algorithm, JoinConfig};

fn corpus() -> Vec<Ranking> {
    CorpusProfile::orku_like(350, 10).generate()
}

fn reference(data: &[Ranking], theta: f64) -> Vec<(u64, u64)> {
    let cluster = Cluster::new(ClusterConfig::local(4));
    Algorithm::BruteForce
        .run(&cluster, data, &JoinConfig::new(theta))
        .unwrap()
        .pairs
}

#[test]
fn invariant_to_partition_count() {
    let data = corpus();
    let expected = reference(&data, 0.25);
    for partitions in [1, 2, 7, 86, 286] {
        let cluster = Cluster::new(ClusterConfig::local(4));
        let config = JoinConfig::new(0.25).with_partitions(partitions);
        for algo in [Algorithm::Vj, Algorithm::Cl] {
            let got = algo.run(&cluster, &data, &config).unwrap().pairs;
            assert_eq!(
                got,
                expected,
                "{} with {partitions} partitions",
                algo.name()
            );
        }
    }
}

#[test]
fn invariant_to_node_count() {
    let data = corpus();
    let expected = reference(&data, 0.25);
    for nodes in [1, 2, 4, 8] {
        let cluster =
            Cluster::new(ClusterConfig::paper_scalability(nodes).with_default_partitions(24));
        let got = Algorithm::ClP
            .run(
                &cluster,
                &data,
                &JoinConfig::new(0.25).with_partition_threshold(25),
            )
            .unwrap()
            .pairs;
        assert_eq!(got, expected, "{nodes} nodes");
    }
}

#[test]
fn invariant_to_partitioning_threshold() {
    let data = corpus();
    let expected = reference(&data, 0.3);
    for delta in [1, 3, 10, 40, 200, 1_000_000] {
        let cluster = Cluster::new(ClusterConfig::local(4));
        let config = JoinConfig::new(0.3).with_partition_threshold(delta);
        let got = Algorithm::ClP.run(&cluster, &data, &config).unwrap().pairs;
        assert_eq!(got, expected, "δ = {delta}");
    }
}

#[test]
fn invariant_to_clustering_threshold() {
    let data = corpus();
    let expected = reference(&data, 0.3);
    for theta_c in [0.0, 0.01, 0.02, 0.03, 0.05, 0.1] {
        let cluster = Cluster::new(ClusterConfig::local(4));
        let config = JoinConfig::new(0.3)
            .with_cluster_threshold(theta_c)
            .with_partition_threshold(30);
        for algo in [Algorithm::Cl, Algorithm::ClP] {
            let got = algo.run(&cluster, &data, &config).unwrap().pairs;
            assert_eq!(got, expected, "{} with θc = {theta_c}", algo.name());
        }
    }
}

#[test]
fn invariant_to_prefix_kind() {
    let data = corpus();
    let expected = reference(&data, 0.2);
    for prefix in [PrefixKind::Overlap, PrefixKind::Ordered] {
        let cluster = Cluster::new(ClusterConfig::local(4));
        let config = JoinConfig::new(0.2).with_prefix(prefix);
        for algo in [Algorithm::Vj, Algorithm::VjNl, Algorithm::Cl] {
            let got = algo.run(&cluster, &data, &config).unwrap().pairs;
            assert_eq!(got, expected, "{} with {prefix:?}", algo.name());
        }
    }
}

#[test]
fn invariant_to_position_filter() {
    let data = corpus();
    let expected = reference(&data, 0.1);
    for enabled in [true, false] {
        let cluster = Cluster::new(ClusterConfig::local(4));
        let config = JoinConfig::new(0.1).with_position_filter(enabled);
        for algo in Algorithm::paper_lineup() {
            let got = algo.run(&cluster, &data, &config).unwrap().pairs;
            assert_eq!(got, expected, "{} position_filter = {enabled}", algo.name());
        }
    }
}

#[test]
fn deterministic_across_runs() {
    let data = corpus();
    let cluster = Cluster::new(ClusterConfig::local(8));
    let config = JoinConfig::new(0.3).with_partition_threshold(20);
    let first = Algorithm::ClP.run(&cluster, &data, &config).unwrap().pairs;
    for _ in 0..3 {
        let again = Algorithm::ClP.run(&cluster, &data, &config).unwrap().pairs;
        assert_eq!(again, first);
    }
}

#[test]
fn invariant_to_ablation_flags() {
    // Disabling the triangle bounds or Lemma 5.3 changes work, not results.
    let data = corpus();
    let expected = reference(&data, 0.3);
    for (triangle, lemma53) in [(false, true), (true, false), (false, false)] {
        let cluster = Cluster::new(ClusterConfig::local(4));
        let config = JoinConfig::new(0.3)
            .with_triangle_bounds(triangle)
            .with_lemma53(lemma53)
            .with_partition_threshold(30);
        for algo in [Algorithm::Cl, Algorithm::ClP] {
            let got = algo.run(&cluster, &data, &config).unwrap().pairs;
            assert_eq!(
                got,
                expected,
                "{} triangle={triangle} lemma53={lemma53}",
                algo.name()
            );
        }
    }
}

#[test]
fn ablations_change_the_work_profile() {
    let data = corpus();
    let cluster = Cluster::new(ClusterConfig::local(4));
    let with = Algorithm::Cl
        .run(&cluster, &data, &JoinConfig::new(0.3))
        .unwrap();
    let without = Algorithm::Cl
        .run(
            &cluster,
            &data,
            &JoinConfig::new(0.3).with_triangle_bounds(false),
        )
        .unwrap();
    assert_eq!(with.pairs, without.pairs);
    assert_eq!(without.stats.triangle_accepted, 0);
    assert_eq!(without.stats.triangle_pruned, 0);
    assert!(without.stats.verified >= with.stats.verified);
}
