//! Cross-crate exactness tests: every algorithm must return exactly the
//! brute-force result set, across datasets, thresholds, ranking lengths and
//! cluster configurations.

use minispark::{Cluster, ClusterConfig};
use topk_datagen::{increase_dataset, CorpusProfile};
use topk_rankings::Ranking;
use topk_simjoin::{Algorithm, JoinConfig};

fn assert_all_agree(cluster: &Cluster, data: &[Ranking], config: &JoinConfig, context: &str) {
    let expected = Algorithm::BruteForce
        .run(cluster, data, config)
        .expect("brute force failed")
        .pairs;
    for algo in [
        Algorithm::Vj,
        Algorithm::VjNl,
        Algorithm::VjRepartitioned,
        Algorithm::Cl,
        Algorithm::ClP,
    ] {
        let got = algo.run(cluster, data, config).expect("join failed").pairs;
        assert_eq!(
            got,
            expected,
            "{} disagrees with brute force ({context})",
            algo.name()
        );
    }
}

#[test]
fn dblp_like_corpus_across_thresholds() {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let data = CorpusProfile::dblp_like(400, 10).generate();
    for theta in [0.05, 0.1, 0.2, 0.3, 0.4] {
        let config = JoinConfig::new(theta).with_partition_threshold(20);
        assert_all_agree(&cluster, &data, &config, &format!("DBLP-like, θ = {theta}"));
    }
}

#[test]
fn orku_like_corpus_across_thresholds() {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let data = CorpusProfile::orku_like(400, 10).generate();
    for theta in [0.1, 0.3] {
        let config = JoinConfig::new(theta).with_partition_threshold(15);
        assert_all_agree(&cluster, &data, &config, &format!("ORKU-like, θ = {theta}"));
    }
}

#[test]
fn k25_rankings() {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let data = CorpusProfile::orku_like(250, 25).generate();
    let config = JoinConfig::new(0.3).with_partition_threshold(25);
    assert_all_agree(&cluster, &data, &config, "k = 25");
}

#[test]
fn tiny_k_rankings() {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let data = CorpusProfile::dblp_like(300, 3).generate();
    let config = JoinConfig::new(0.3).with_partition_threshold(30);
    assert_all_agree(&cluster, &data, &config, "k = 3");
}

#[test]
fn increased_dataset() {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let base = CorpusProfile::dblp_like(150, 10).generate();
    let data = increase_dataset(&base, 3, 7);
    let config = JoinConfig::new(0.2).with_partition_threshold(25);
    assert_all_agree(&cluster, &data, &config, "DBLP ×3");
}

#[test]
fn single_task_slot_cluster() {
    // Sequential execution must not change results.
    let cluster = Cluster::new(ClusterConfig::local(1).with_default_partitions(3));
    let data = CorpusProfile::orku_like(250, 10).generate();
    let config = JoinConfig::new(0.25).with_partition_threshold(10);
    assert_all_agree(&cluster, &data, &config, "1 slot");
}

#[test]
fn many_partitions_few_records() {
    let cluster = Cluster::new(ClusterConfig::local(4).with_default_partitions(64));
    let data = CorpusProfile::dblp_like(60, 10).generate();
    let config = JoinConfig::new(0.3).with_partition_threshold(4);
    assert_all_agree(&cluster, &data, &config, "64 partitions, 60 records");
}

#[test]
fn duplicate_heavy_corpus() {
    // Truncation to k can leave distance-0 records in the real datasets
    // (§7); the algorithms must handle them like any other pair.
    let cluster = Cluster::new(ClusterConfig::local(4));
    let mut data = CorpusProfile::dblp_like(120, 10).generate();
    let copies: Vec<Ranking> = data
        .iter()
        .take(30)
        .map(|r| Ranking::new_unchecked(r.id() + 1_000, r.items().to_vec()))
        .collect();
    data.extend(copies);
    let config = JoinConfig::new(0.2).with_partition_threshold(20);
    assert_all_agree(&cluster, &data, &config, "with exact duplicates");
}

#[test]
fn extreme_thresholds() {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let data = CorpusProfile::dblp_like(150, 10).generate();
    for theta in [0.0, 1.0] {
        let config = JoinConfig::new(theta).with_partition_threshold(50);
        assert_all_agree(&cluster, &data, &config, &format!("θ = {theta}"));
    }
}

#[test]
fn strict_paper_prefixes_on_benchmark_corpora() {
    // The literal Algorithm-1 prefix sizing. On these corpora it happens to
    // produce the exact result too (the θ-vs-θ+θc prefix gap rarely
    // matters in practice); the sound default is what the guarantees rest
    // on. See centroid_join.rs.
    let cluster = Cluster::new(ClusterConfig::local(4));
    let data = CorpusProfile::orku_like(300, 10).generate();
    let expected = Algorithm::BruteForce
        .run(&cluster, &data, &JoinConfig::new(0.2))
        .unwrap()
        .pairs;
    let mut config = JoinConfig::new(0.2);
    config.strict_paper_prefixes = true;
    let got = Algorithm::Cl.run(&cluster, &data, &config).unwrap().pairs;
    assert_eq!(got, expected);
}

#[test]
fn spilling_token_groups_do_not_change_results() {
    // §4.1: Spark spills shuffle groups under memory pressure; the engine's
    // spilling group-by must be transparent to every algorithm.
    let data = CorpusProfile::orku_like(300, 10).generate();
    let plain_cluster = Cluster::new(ClusterConfig::local(4));
    let expected = Algorithm::BruteForce
        .run(&plain_cluster, &data, &JoinConfig::new(0.3))
        .unwrap()
        .pairs;
    let spill_cluster = Cluster::new(ClusterConfig::local(4).with_spill_budget(64));
    for algo in [
        Algorithm::Vj,
        Algorithm::VjNl,
        Algorithm::Cl,
        Algorithm::ClP,
    ] {
        let config = JoinConfig::new(0.3).with_partition_threshold(20);
        let got = algo.run(&spill_cluster, &data, &config).unwrap().pairs;
        assert_eq!(got, expected, "{} with spilling", algo.name());
    }
    assert!(
        spill_cluster.metrics().total_spilled_runs() > 0,
        "the spill budget never triggered"
    );
}
