//! Spill observability: the `spilled_runs` stage metric, the `spill-run/…`
//! trace marks and a driver-side replay of the hash partitioning must all
//! agree on how many run files the spilling group-by wrote and merged back.

use minispark::{Cluster, ClusterConfig, HashPartitioner, Partitioner, TraceCollector};

const BUDGET: usize = 16;
const PARTITIONS: usize = 4;

fn records() -> Vec<(u32, u64)> {
    (0..500u32).map(|n| (n % 37, u64::from(n))).collect()
}

#[test]
fn spilled_runs_metric_marks_and_replay_agree() {
    let config = ClusterConfig::local(2).with_spill_budget(BUDGET);
    let cluster = Cluster::with_trace(config, TraceCollector::enabled());
    let data = records();
    let grouped = cluster
        .parallelize(data.clone(), 8)
        .group_by_key_spilling("spilly", PARTITIONS);

    // Grouping is still correct despite the spills.
    let collected = grouped.collect();
    assert_eq!(collected.len(), 37);
    let total: usize = collected.iter().map(|(_, vs)| vs.len()).sum();
    assert_eq!(total, data.len());

    // The stage metric.
    let metrics = cluster.metrics();
    let stage = metrics
        .stages
        .iter()
        .find(|s| s.name == "spilly")
        .expect("the spilling stage was recorded");
    assert!(stage.spilled_runs > 0, "the budget must force spills");
    assert_eq!(metrics.total_spilled_runs(), stage.spilled_runs);

    // The trace marks: one instant event of value 1 per merged run file.
    let snapshot = cluster.trace().snapshot();
    let marks: Vec<_> = snapshot
        .marks()
        .filter(|m| m.name == "spill-run/spilly")
        .collect();
    assert!(marks.iter().all(|m| m.value == 1));
    assert_eq!(
        marks.len(),
        stage.spilled_runs,
        "every merged run file must leave one trace mark"
    );

    // Driver-side replay: the external group-by writes one run per full
    // budget of records buffered in a reduce partition, so the expected
    // count is Σ over partitions of ⌊len / budget⌋ under the same hash
    // partitioner the shuffle used.
    let partitioner = HashPartitioner::new(PARTITIONS);
    let mut lens = [0usize; PARTITIONS];
    for (key, _) in &data {
        lens[partitioner.partition(key)] += 1;
    }
    let expected: usize = lens.iter().map(|len| len / BUDGET).sum();
    assert_eq!(
        stage.spilled_runs, expected,
        "metric must match the partition-replay prediction"
    );
}

#[test]
fn no_spills_without_budget_pressure() {
    let cluster = Cluster::with_trace(ClusterConfig::local(2), TraceCollector::enabled());
    cluster
        .parallelize(records(), 8)
        .group_by_key_spilling("roomy", PARTITIONS)
        .collect();
    assert_eq!(cluster.metrics().total_spilled_runs(), 0);
    assert_eq!(
        cluster
            .trace()
            .snapshot()
            .marks()
            .filter(|m| m.name.starts_with("spill-run/"))
            .count(),
        0
    );
}
