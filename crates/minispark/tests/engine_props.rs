//! Property tests for the engine: every distributed operator must agree
//! with its obvious sequential equivalent, for any partitioning and any
//! slot count.

use std::collections::{HashMap, HashSet};

use minispark::{Cluster, ClusterConfig};
use proptest::prelude::*;

fn cluster(slots: usize) -> Cluster {
    Cluster::new(ClusterConfig::local(slots))
}

proptest! {
    #[test]
    fn map_matches_iterator_map(
        data in proptest::collection::vec(any::<u32>(), 0..300),
        partitions in 1usize..12,
        slots in 1usize..6,
    ) {
        let ds = cluster(slots).parallelize(data.clone(), partitions);
        let mut got = ds.map("m", |n| n.wrapping_mul(3)).collect();
        let mut expected: Vec<u32> = data.iter().map(|n| n.wrapping_mul(3)).collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn filter_flat_map_compose(
        data in proptest::collection::vec(0u32..1000, 0..300),
        partitions in 1usize..12,
    ) {
        let ds = cluster(4).parallelize(data.clone(), partitions);
        let mut got = ds
            .filter("f", |n| n % 3 == 0)
            .flat_map("fm", |n| vec![*n, *n + 1])
            .collect();
        let mut expected: Vec<u32> = data
            .iter()
            .filter(|n| *n % 3 == 0)
            .flat_map(|n| vec![*n, *n + 1])
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn group_by_key_matches_hashmap(
        data in proptest::collection::vec((0u32..20, any::<u16>()), 0..400),
        partitions in 1usize..10,
        targets in 1usize..10,
    ) {
        let ds = cluster(4).parallelize(data.clone(), partitions);
        let grouped = ds.group_by_key("g", targets);
        let mut expected: HashMap<u32, Vec<u16>> = HashMap::new();
        for (k, v) in &data {
            expected.entry(*k).or_default().push(*v);
        }
        let got = grouped.collect();
        prop_assert_eq!(got.len(), expected.len());
        for (k, mut vs) in got {
            let mut want = expected.remove(&k).expect("unexpected key");
            vs.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(vs, want);
        }
    }

    #[test]
    fn group_by_key_spilling_matches_group_by_key(
        data in proptest::collection::vec((0u32..15, any::<u32>()), 0..300),
        budget in 1usize..50,
    ) {
        let plain = cluster(4).parallelize(data.clone(), 6).group_by_key("g", 4);
        let spill_cluster = Cluster::new(ClusterConfig::local(4).with_spill_budget(budget));
        let spilled = spill_cluster
            .parallelize(data, 6)
            .group_by_key_spilling("gs", 4);
        let normalize = |mut rows: Vec<(u32, Vec<u32>)>| {
            for (_, vs) in rows.iter_mut() {
                vs.sort_unstable();
            }
            rows.sort();
            rows
        };
        prop_assert_eq!(normalize(plain.collect()), normalize(spilled.collect()));
    }

    #[test]
    fn reduce_by_key_matches_fold(
        data in proptest::collection::vec((0u32..10, 0u64..1000), 0..300),
        partitions in 1usize..10,
    ) {
        let ds = cluster(4).parallelize(data.clone(), partitions);
        let mut got = ds.reduce_by_key("r", 4, |a, b| a + b).collect();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for (k, v) in &data {
            *expected.entry(*k).or_default() += v;
        }
        let mut expected: Vec<(u32, u64)> = expected.into_iter().collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_matches_nested_loop(
        left in proptest::collection::vec((0u32..12, any::<u8>()), 0..120),
        right in proptest::collection::vec((0u32..12, any::<u8>()), 0..120),
    ) {
        let c = cluster(4);
        let l = c.parallelize(left.clone(), 5);
        let r = c.parallelize(right.clone(), 3);
        let mut got = l.join("j", &r, 4).collect();
        let mut expected = Vec::new();
        for (k, v) in &left {
            for (k2, w) in &right {
                if k == k2 {
                    expected.push((*k, (*v, *w)));
                }
            }
        }
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn distinct_matches_hashset(
        data in proptest::collection::vec(0u32..50, 0..400),
        targets in 1usize..8,
    ) {
        let ds = cluster(4).parallelize(data.clone(), 7);
        let mut got = ds.distinct("d", targets).collect();
        let mut expected: Vec<u32> = data.into_iter().collect::<HashSet<_>>().into_iter().collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn union_and_repartition_preserve_records(
        a in proptest::collection::vec(any::<u32>(), 0..150),
        b in proptest::collection::vec(any::<u32>(), 0..150),
        n in 1usize..10,
    ) {
        let c = cluster(4);
        let u = c.parallelize(a.clone(), 3).union(&c.parallelize(b.clone(), 2));
        let re = u.repartition("rp", n);
        prop_assert_eq!(re.num_partitions(), n);
        let mut got = re.collect();
        let mut expected = a;
        expected.extend(b);
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn cogroup_collects_everything(
        left in proptest::collection::vec((0u32..8, any::<u8>()), 0..100),
        right in proptest::collection::vec((0u32..8, any::<u8>()), 0..100),
    ) {
        let c = cluster(4);
        let cg = c
            .parallelize(left.clone(), 4)
            .cogroup("cg", &c.parallelize(right.clone(), 4), 4);
        let rows = cg.collect();
        let total_left: usize = rows.iter().map(|(_, (l, _))| l.len()).sum();
        let total_right: usize = rows.iter().map(|(_, (_, r))| r.len()).sum();
        prop_assert_eq!(total_left, left.len());
        prop_assert_eq!(total_right, right.len());
        // Keys are unique.
        let keys: HashSet<u32> = rows.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(keys.len(), rows.len());
    }

    #[test]
    fn results_independent_of_slots_and_partitions(
        data in proptest::collection::vec((0u32..16, any::<u16>()), 0..250),
    ) {
        let mut reference: Option<Vec<(u32, usize)>> = None;
        for (slots, partitions) in [(1usize, 1usize), (2, 5), (8, 13)] {
            let ds = cluster(slots).parallelize(data.clone(), partitions);
            let mut got: Vec<(u32, usize)> = ds
                .group_by_key("g", 4)
                .map("sizes", |(k, vs)| (*k, vs.len()))
                .collect();
            got.sort_unstable();
            match &reference {
                None => reference = Some(got),
                Some(expected) => prop_assert_eq!(&got, expected),
            }
        }
    }
}

proptest! {
    // LPT makespan invariants: never below max(longest task, total/slots),
    // never above the serial total, monotone non-increasing in slots.
    #[test]
    fn simulated_wall_respects_makespan_bounds(
        millis in proptest::collection::vec(1u64..200, 1..40),
        slots in 1usize..16,
    ) {
        use minispark::StageMetrics;
        use std::time::Duration;
        let stage = StageMetrics {
            task_durations: millis.iter().map(|&m| Duration::from_millis(m)).collect(),
            num_tasks: millis.len(),
            ..StageMetrics::default()
        };
        let total: u64 = millis.iter().sum();
        let longest = *millis.iter().max().expect("non-empty");
        let sim = stage.simulated_wall(slots).as_millis() as u64;
        prop_assert!(sim >= longest, "makespan {sim} < longest task {longest}");
        prop_assert!(
            sim as f64 >= total as f64 / slots as f64 - 1.0,
            "makespan {sim} below perfect split {}",
            total as f64 / slots as f64
        );
        prop_assert!(sim <= total, "makespan {sim} > serial total {total}");
        // More slots never hurt.
        let fewer = stage
            .simulated_wall(slots.saturating_sub(1).max(1))
            .as_millis() as u64;
        prop_assert!(sim <= fewer);
        // (LPT is within 4/3 − 1/(3m) of the true optimum, but the optimum
        // itself is NP-hard to compute, and comparing against the
        // max(longest, total/m) *lower bound* of the optimum is not a sound
        // assertion — the bound can be loose. The four checks above are the
        // invariants the simulation relies on.)
    }
}
