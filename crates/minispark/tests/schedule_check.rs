//! Integration tests for the concurrency-checking layer: the deterministic
//! scheduler (`minispark::sched`), the trace auditors and the determinism
//! checker (`minispark::check`) — exercised end-to-end through real
//! `Dataset` pipelines rather than fabricated snapshots.
//!
//! The `#[ignore]`d test at the bottom is the suite's **negative control**:
//! it arms the seeded schedule-dependence bug in `run_tasks_scheduled`
//! (`MINISPARK_SCHED_INJECT=claim-order` makes task outputs land at their
//! *claim position* instead of their task index) and asserts that the
//! determinism checker catches it. Run with `cargo test -p minispark
//! --test schedule_check -- --ignored`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use minispark::trace::TraceCollector;
use minispark::{
    audit_snapshot, check_determinism, schedule_matrix, Cluster, ClusterConfig, Schedule,
};

fn traced_cluster(slots: usize, schedule: Option<Schedule>) -> Cluster {
    let mut config = ClusterConfig::local(slots).with_default_partitions(4);
    if let Some(schedule) = schedule {
        config = config.with_schedule(schedule);
    }
    Cluster::with_trace(config, TraceCollector::enabled())
}

/// A shuffle-heavy pipeline whose answer is easy to verify: word counts.
fn word_count(cluster: &Cluster) -> Vec<(String, usize)> {
    let words: Vec<String> = "the quick brown fox jumps over the lazy dog the fox"
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let mut counts = cluster
        .parallelize(words, 4)
        .map("pair", |w: &String| (w.clone(), 1usize))
        .reduce_by_key("count", 4, |a, b| a + b)
        .collect();
    counts.sort();
    counts
}

#[test]
fn real_runs_pass_the_happens_before_audit_under_every_schedule() {
    let mut modes = vec![None];
    modes.extend(schedule_matrix(6, 7).into_iter().map(Some));
    for schedule in modes {
        let cluster = traced_cluster(3, schedule);
        let counts = word_count(&cluster);
        assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), 11);
        let violations = audit_snapshot(&cluster.trace().snapshot());
        assert!(
            violations.is_empty(),
            "audit violations under {schedule:?}: {violations:?}"
        );
    }
}

#[test]
fn scheduled_runs_reproduce_the_thread_pool_result() {
    let reference = word_count(&traced_cluster(4, None));
    for schedule in schedule_matrix(8, 42) {
        let got = word_count(&traced_cluster(4, Some(schedule)));
        assert_eq!(got, reference, "divergence under {schedule:?}");
    }
}

#[test]
fn determinism_checker_passes_a_clean_pipeline_end_to_end() {
    let base = ClusterConfig::local(2).with_default_partitions(4);
    let schedules = schedule_matrix(4, 9);
    let outcome = check_determinism(&base, &[1, 2, 4], &schedules, word_count)
        .expect("word count is schedule-independent");
    assert_eq!(outcome.runs, 3 * (schedules.len() + 1));
    assert_eq!(outcome.reference.len(), 8, "8 distinct words");
}

#[test]
fn yield_hook_fires_at_shuffle_flush_boundaries() {
    let fired = Arc::new(AtomicUsize::new(0));
    let observed = Arc::clone(&fired);
    minispark::sched::install_yield_hook(Arc::new(move |site| {
        if site == "shuffle-flush" {
            // relaxed(counter): test-only counter read after the run.
            observed.fetch_add(1, Ordering::Relaxed);
        }
    }));
    let counts = word_count(&traced_cluster(2, Some(Schedule::Natural)));
    minispark::sched::clear_yield_hook();
    assert_eq!(counts.len(), 8);
    assert!(
        fired.load(Ordering::Relaxed) >= 1,
        "reduce_by_key must cross at least one shuffle-flush yield point"
    );
}

#[test]
fn flush_marks_are_recorded_for_wide_stages() {
    let cluster = traced_cluster(2, Some(Schedule::Reversed));
    let _ = word_count(&cluster);
    let snapshot = cluster.trace().snapshot();
    assert!(
        snapshot
            .marks()
            .any(|m| m.name.starts_with("shuffle-flush/")),
        "wide operations should emit a shuffle-flush mark for the auditor"
    );
}

/// The negative control demanded by the issue's acceptance criteria: with
/// the seeded bug armed, the determinism checker must fail.
///
/// `#[ignore]`d because the arming environment variable is process-global —
/// run this test alone (`-- --ignored`), not interleaved with the clean
/// suite above.
#[test]
#[ignore = "arms MINISPARK_SCHED_INJECT, which is process-global"]
fn determinism_checker_catches_the_injected_claim_order_bug() {
    std::env::set_var("MINISPARK_SCHED_INJECT", "claim-order");
    let base = ClusterConfig::local(2).with_default_partitions(4);
    // `word_count` sorts before comparing, and reduce_by_key is
    // order-insensitive — so probe partition *placement* instead, which the
    // claim-order bug scrambles: collect() concatenates partitions in order.
    let result = check_determinism(&base, &[3], &schedule_matrix(6, 17), |cluster| {
        cluster
            .parallelize((0..12u64).collect::<Vec<u64>>(), 6)
            .map("tag", |n| n * 10)
            .collect()
    });
    std::env::remove_var("MINISPARK_SCHED_INJECT");
    let failure = result
        .expect_err("the claim-order injection reorders task outputs — the checker must notice");
    let text = failure.to_string();
    assert!(
        text.contains("slots"),
        "the failure should name the run that diverged: {text}"
    );
}
