//! Property tests for the hand-rolled JSON emitter/parser: everything the
//! emitter produces parses back to the same value, string escaping is
//! lossless for arbitrary Unicode (including control characters), the
//! NaN/Infinity policy degrades to `null`, and the parser never panics on
//! arbitrary input.

use minispark::Json;
use proptest::prelude::*;

/// Arbitrary JSON values: scalars at the leaves, arrays/objects recursively.
/// Floats are filtered to finite values — non-finite ones are deliberately
/// not representable in the output (they render as `null`).
fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<f64>().prop_filter_map("finite floats only", |f| {
            f.is_finite().then_some(Json::Num(f))
        }),
        any::<String>().prop_map(Json::Str),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Json::Arr),
            proptest::collection::vec((any::<String>(), inner), 0..6).prop_map(Json::Obj),
        ]
    })
}

proptest! {
    #[test]
    fn emitted_documents_parse_back_to_the_same_value(value in json_strategy()) {
        let text = value.render();
        let parsed = Json::parse(&text).expect("emitted JSON must parse");
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn strings_round_trip_losslessly(s in any::<String>()) {
        // Arbitrary Unicode, including control characters, quotes and
        // backslashes — everything must survive escape + unescape.
        let text = Json::Str(s.clone()).render();
        let parsed = Json::parse(&text).expect("escaped string must parse");
        prop_assert_eq!(parsed, Json::Str(s));
    }

    #[test]
    fn finite_floats_round_trip_exactly(f in any::<f64>().prop_filter("finite", |f| f.is_finite())) {
        let text = Json::Num(f).render();
        let parsed = Json::parse(&text).expect("rendered float must parse");
        prop_assert_eq!(parsed, Json::Num(f));
    }

    #[test]
    fn non_finite_floats_render_null(bits in any::<u64>()) {
        let f = f64::from_bits(bits);
        if !f.is_finite() {
            prop_assert_eq!(Json::Num(f).render(), "null");
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in any::<String>()) {
        // The result does not matter — only that it is a Result.
        let _ = Json::parse(&s);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes_shaped_as_json(
        s in "[\\[\\]{}\",:0-9eE+\\-. \\\\unlrtf]{0,64}"
    ) {
        // Inputs drawn from JSON's own alphabet hit the deeper parser paths
        // (escapes, numbers, nesting) more often than fully random strings.
        let _ = Json::parse(&s);
    }
}
