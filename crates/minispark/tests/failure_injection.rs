//! Failure-injection and edge-condition tests for the engine: panicking
//! tasks, pathological partitionings, hot keys, forced spills, and the
//! memory-budget path under stress.

use std::sync::atomic::{AtomicUsize, Ordering};

use minispark::{Cluster, ClusterConfig, CompositePartitioner, Partitioner};

fn cluster(slots: usize) -> Cluster {
    Cluster::new(ClusterConfig::local(slots))
}

#[test]
fn task_panic_fails_the_stage() {
    let c = cluster(4);
    let ds = c.parallelize((0..100u32).collect(), 8);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ds.map("explode", |n| {
            if *n == 57 {
                panic!("injected task failure");
            }
            *n
        })
        .collect()
    }));
    assert!(result.is_err(), "a panicking task must fail the stage");
}

#[test]
fn stage_after_failed_stage_still_works() {
    // The cluster must stay usable after a failed job (no poisoned state).
    let c = cluster(4);
    let ds = c.parallelize((0..50u32).collect(), 4);
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ds.map("explode", |_| -> u32 { panic!("boom") }).collect()
    }));
    let ok = c
        .parallelize((0..50u32).collect(), 4)
        .map("fine", |n| n + 1);
    assert_eq!(ok.count(), 50);
}

#[test]
fn empty_partitions_everywhere() {
    let c = cluster(4);
    // 3 records across 16 partitions: most tasks see nothing.
    let ds = c.parallelize(vec![1u32, 2, 3], 16);
    let grouped = ds.map("k", |n| (*n % 2, *n)).group_by_key("g", 16);
    assert_eq!(grouped.count(), 2);
    let joined = grouped.join("j", &c.empty::<(u32, u32)>().group_by_key("g2", 4), 8);
    assert_eq!(joined.count(), 0);
}

#[test]
fn single_hot_key_lands_on_one_partition() {
    // groupByKey cannot split a hot key — the skew metric must expose it.
    let c = cluster(4);
    let data: Vec<(u32, u64)> = (0..5_000).map(|n| (7u32, n)).collect();
    let grouped = c.parallelize(data, 16).group_by_key("hot", 8);
    assert_eq!(grouped.count(), 1);
    let metrics = c.metrics();
    let stage = metrics.stages_named("hot")[0];
    assert_eq!(stage.max_partition_records, 1);
    assert!(stage.skew() >= 7.9, "skew = {}", stage.skew());
}

#[test]
fn composite_partitioner_defuses_the_hot_key() {
    let c = cluster(4);
    let data: Vec<((u32, u32), u64)> = (0..5_000).map(|n| ((7u32, (n % 64) as u32), n)).collect();
    let spread = c
        .parallelize(data, 16)
        .partition_by("spread", &CompositePartitioner::new(16));
    let nonempty = spread.partition_sizes().iter().filter(|&&s| s > 0).count();
    assert!(nonempty >= 12, "only {nonempty} partitions used");
}

#[test]
fn forced_spill_with_budget_one() {
    let c = Cluster::new(ClusterConfig::local(2).with_spill_budget(1));
    let data: Vec<(u32, u64)> = (0..2_000u64).map(|n| ((n % 23) as u32, n)).collect();
    let grouped = c.parallelize(data, 4).group_by_key_spilling("spill-all", 2);
    assert_eq!(grouped.count(), 23);
    let total_values: usize = grouped.collect().iter().map(|(_, v)| v.len()).sum();
    assert_eq!(total_values, 2_000);
    assert!(c.metrics().total_spilled_runs() >= 1_000);
}

#[test]
fn zero_partition_requests_are_clamped() {
    let c = cluster(2);
    let ds = c.parallelize(vec![1u32, 2, 3], 0);
    assert_eq!(ds.num_partitions(), 1);
    let re = ds.repartition("rp", 0);
    assert_eq!(re.num_partitions(), 1);
    let grouped = ds.map("k", |n| (*n, *n)).group_by_key("g", 0);
    assert_eq!(grouped.count(), 3);
}

#[test]
fn broadcast_shared_under_concurrency() {
    let c = cluster(8);
    let lookup = c.broadcast((0..1000u32).map(|n| n * 2).collect::<Vec<u32>>());
    let hits = AtomicUsize::new(0);
    let ds = c.parallelize((0..1000u32).collect(), 32);
    let mapped = ds.map("lookup", |n| {
        hits.fetch_add(1, Ordering::Relaxed);
        lookup.value()[*n as usize]
    });
    assert_eq!(mapped.count(), 1000);
    assert_eq!(hits.load(Ordering::Relaxed), 1000);
}

#[test]
fn custom_partitioner_out_of_range_is_caught_in_debug() {
    // A partitioner returning an in-range value must be respected exactly.
    struct Fixed;
    impl Partitioner<u32> for Fixed {
        fn partition(&self, _key: &u32) -> usize {
            2
        }
        fn num_partitions(&self) -> usize {
            4
        }
    }
    let c = cluster(2);
    let ds = c.parallelize(vec![(1u32, ()), (2, ()), (3, ())], 2);
    let parted = ds.partition_by("fixed", &Fixed);
    assert_eq!(parted.partition_sizes(), vec![0, 0, 3, 0]);
}

#[test]
fn deeply_chained_pipeline_is_stable() {
    let c = cluster(4);
    let mut ds = c.parallelize((0..200u64).collect(), 8);
    for i in 0..30 {
        ds = ds.map(&format!("step-{i}"), |n| n.wrapping_add(1));
    }
    let mut got = ds.collect();
    got.sort_unstable();
    assert_eq!(got, (30..230u64).collect::<Vec<_>>());
    assert_eq!(c.metrics().stages.len(), 30);
}

#[test]
fn huge_partition_counts_do_not_explode() {
    let c = cluster(2);
    let ds = c.parallelize((0..100u32).collect(), 2_000);
    assert_eq!(ds.count(), 100);
    let grouped = ds.map("k", |n| (*n % 5, *n)).group_by_key("g", 2_000);
    assert_eq!(grouped.count(), 5);
}
