//! Property tests for the log-linear telemetry histogram: the bucket
//! scheme's ≤ 1/16 relative-width guarantee, quantile error bounds against
//! the exact nearest-rank answer, merge behaving like pooled recording,
//! and lossless JSON round-trips of [`HistogramData`].

use minispark::telemetry::{
    bucket_index, bucket_lower, bucket_representative, bucket_upper, HistogramData,
    TelemetryRegistry, EXACT_LIMIT, NUM_BUCKETS,
};
use minispark::Json;
use proptest::prelude::*;

/// Records every value into a fresh live histogram and snapshots it.
fn histogram_of(values: &[u64]) -> HistogramData {
    let h = TelemetryRegistry::enabled().histogram("h");
    for &v in values {
        h.record(v);
    }
    h.data()
}

/// The exact nearest-rank quantile over the raw values.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let count = sorted.len() as u64;
    // cast(count is a test vector length, far below 2^53)
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    sorted[usize::try_from(rank - 1).expect("rank fits usize")]
}

/// Mixes small exact-region values with large log-linear-region ones so
/// both halves of the bucket scheme are exercised.
fn value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        1u64..=u64::MAX,
        (0u32..64).prop_map(|shift| 1u64 << shift),
    ]
}

/// Values bounded so that pooled sums stay inside f64's exact-integer range
/// (< 2^53): the JSON encoding carries numbers as f64, so only such sums
/// round-trip bit-exactly. Real telemetry sums (nanoseconds, bytes per run)
/// live far below this bound.
fn bounded_value_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        1u64..(1 << 40),
        (0u32..40).prop_map(|shift| 1u64 << shift),
    ]
}

proptest! {
    #[test]
    fn every_value_lands_inside_its_bucket_bounds(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < NUM_BUCKETS);
        prop_assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx));
        let rep = bucket_representative(idx);
        prop_assert!(bucket_lower(idx) <= rep && rep <= bucket_upper(idx));
    }

    #[test]
    fn bucket_relative_width_is_at_most_one_sixteenth(v in any::<u64>()) {
        let idx = bucket_index(v);
        let (lo, hi) = (bucket_lower(idx), bucket_upper(idx));
        if idx < EXACT_LIMIT {
            prop_assert_eq!(lo, hi, "exact region buckets hold one value");
        } else {
            prop_assert!(hi - lo <= lo / 16, "bucket {idx}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn quantiles_match_nearest_rank_within_the_bucket_bound(
        mut values in proptest::collection::vec(value_strategy(), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let data = histogram_of(&values);
        values.sort_unstable();
        let truth = exact_quantile(&values, q);
        let estimate = data.quantile(q).expect("non-empty histogram");
        // The walk lands in the bucket of the true rank-q element, so the
        // estimate shares its bucket — and hence its ≤ 1/16 width bound.
        prop_assert_eq!(
            bucket_index(estimate),
            bucket_index(truth),
            "estimate {estimate} vs truth {truth}"
        );
        if truth < EXACT_LIMIT as u64 {
            prop_assert_eq!(estimate, truth);
        } else {
            let error = estimate.abs_diff(truth) as f64;
            // cast(quantile comparison tolerates f64 rounding)
            prop_assert!(error <= truth as f64 / 16.0, "{estimate} vs {truth}");
        }
    }

    #[test]
    fn merge_is_pooled_recording(
        a in proptest::collection::vec(value_strategy(), 0..120),
        b in proptest::collection::vec(value_strategy(), 0..120),
    ) {
        let mut merged = histogram_of(&a);
        merged.merge(&histogram_of(&b));
        let pooled: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, histogram_of(&pooled));
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(value_strategy(), 0..120),
        b in proptest::collection::vec(value_strategy(), 0..120),
    ) {
        let mut ab = histogram_of(&a);
        ab.merge(&histogram_of(&b));
        let mut ba = histogram_of(&b);
        ba.merge(&histogram_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn json_round_trips_losslessly(
        values in proptest::collection::vec(bounded_value_strategy(), 0..200),
    ) {
        let data = histogram_of(&values);
        let text = data.to_json().render();
        let doc = Json::parse(&text).expect("emitted JSON parses");
        let back = HistogramData::from_json(&doc).expect("shape is valid");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn from_json_rejects_out_of_range_bucket_indices(
        idx in NUM_BUCKETS as u64..,
        n in 1u64..1000,
    ) {
        let doc = Json::obj()
            .with("count", Json::num_u64(n))
            .with("sum", Json::num_u64(0))
            .with(
                "buckets",
                Json::Arr(vec![Json::Arr(vec![Json::num_u64(idx), Json::num_u64(n)])]),
            );
        prop_assert!(HistogramData::from_json(&doc).is_none());
    }
}
