//! Concurrency stress tests for [`minispark::executor::run_tasks`].
//!
//! The executor's work-stealing claim loop (an atomic cursor plus per-slot
//! mutexes) must deliver three guarantees regardless of slot count and task
//! mix: every task runs exactly once, outputs come back in input order, and
//! one timing is recorded per task. These tests hammer those guarantees
//! across slot counts from sequential to heavily oversubscribed, with jitter
//! so that claim interleavings actually vary between runs.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use minispark::executor::run_tasks;

/// Every `(slots, tasks)` combination must return outputs in input order
/// with one timing per task — including slots > tasks, slots == 1, and the
/// empty input.
#[test]
fn outputs_stay_in_input_order_across_slot_counts() {
    for slots in [1, 2, 3, 4, 7, 8, 16, 64] {
        for num_tasks in [0usize, 1, 2, 7, 64, 257] {
            let inputs: Vec<usize> = (0..num_tasks).collect();
            let (outputs, times) = run_tasks(slots, inputs, |idx, input| {
                assert_eq!(idx, input, "task index must match input position");
                // Jitter the fast tasks so claim order varies between runs.
                if input % 13 == 0 {
                    std::thread::sleep(Duration::from_micros(50));
                }
                input.wrapping_mul(2)
            });
            let expected: Vec<usize> = (0..num_tasks).map(|n| n * 2).collect();
            assert_eq!(
                outputs, expected,
                "outputs out of order at slots = {slots}, tasks = {num_tasks}"
            );
            assert_eq!(
                times.per_task.len(),
                num_tasks,
                "one timing per task at slots = {slots}, tasks = {num_tasks}"
            );
        }
    }
}

/// Under contention every task must execute exactly once — no lost or
/// double-claimed indices.
#[test]
fn every_task_claimed_exactly_once_under_contention() {
    let executions = AtomicUsize::new(0);
    let inputs: Vec<usize> = (0..1000).collect();
    let (outputs, _) = run_tasks(16, inputs, |_, input| {
        executions.fetch_add(1, Ordering::SeqCst);
        input
    });
    assert_eq!(executions.load(Ordering::SeqCst), 1000);
    let unique: HashSet<usize> = outputs.iter().copied().collect();
    assert_eq!(unique.len(), 1000, "an input was dropped or duplicated");
}

/// Mixed task durations (a skewed stage): order and count still hold when
/// the slow tasks land on different workers than the fast ones.
#[test]
fn skewed_task_durations_keep_order() {
    let inputs: Vec<u64> = (0..128).collect();
    let (outputs, times) = run_tasks(8, inputs, |_, input| {
        if input % 17 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        input
    });
    assert_eq!(outputs, (0..128).collect::<Vec<u64>>());
    assert_eq!(times.per_task.len(), 128);
    assert!(times.total >= Duration::from_millis(2 * (128 / 17)));
}

/// A panic inside any task must propagate to the caller (the stage fails),
/// not vanish inside a worker thread. On the parallel path the panic
/// surfaces through `std::thread::scope`, which re-panics with its own
/// payload ("a scoped thread panicked") rather than the task's message —
/// what matters is that the caller unwinds at all.
#[test]
#[should_panic(expected = "a scoped thread panicked")]
fn panicking_task_propagates_to_the_caller() {
    let inputs: Vec<usize> = (0..64).collect();
    let _ = run_tasks(4, inputs, |_, input| {
        if input == 37 {
            panic!("task 37 exploded");
        }
        input
    });
}

/// The sequential fast path (slots = 1) must panic just like the parallel
/// path does.
#[test]
#[should_panic(expected = "sequential task exploded")]
fn panicking_task_propagates_on_the_sequential_path() {
    let inputs: Vec<usize> = vec![0, 1, 2];
    let _ = run_tasks(1, inputs, |_, input| {
        if input == 1 {
            panic!("sequential task exploded");
        }
        input
    });
}
