//! Invariants of the tracing layer against real engine runs: the
//! queued ≤ started ≤ finished ordering, per-task residence bounded by the
//! stage wall time, analytics ranges, the Chrome export, and the disabled
//! collector being a true no-op.

use minispark::trace::chrome_trace_json;
use minispark::{Cluster, ClusterConfig, ExecutorAnalytics, Json, TraceCollector};

/// Runs a small but representative workload: a narrow map, a wide
/// group-by-key, a repartition and a driver-side stage (`parallelize`).
fn run_workload(cluster: &Cluster) {
    let ds = cluster.parallelize((0..4_000u32).collect::<Vec<_>>(), 8);
    let mapped = ds.map("square", |&n| (n % 97, u64::from(n) * u64::from(n)));
    let grouped = mapped.group_by_key("group-by-mod", 4);
    assert_eq!(grouped.collect().len(), 97);
}

#[test]
fn disabled_collector_is_a_true_noop() {
    let cluster = Cluster::new(ClusterConfig::local(2));
    run_workload(&cluster);
    assert!(!cluster.trace().is_enabled());
    assert!(
        cluster.trace().snapshot().is_empty(),
        "a disabled collector must record nothing"
    );
}

#[test]
fn task_events_obey_ordering_and_stage_wall_bounds() {
    let cluster = Cluster::with_trace(ClusterConfig::local(2), TraceCollector::enabled());
    run_workload(&cluster);
    let snapshot = cluster.trace().snapshot();
    let metrics = cluster.metrics();
    let slots = cluster.config().task_slots();
    assert!(snapshot.tasks().count() > 0, "tasks were recorded");

    for task in snapshot.tasks() {
        assert!(
            task.queued_ns <= task.started_ns && task.started_ns <= task.finished_ns,
            "task ordering violated in stage {:?}: {} / {} / {}",
            task.stage,
            task.queued_ns,
            task.started_ns,
            task.finished_ns
        );
        assert!(task.slot < slots, "slot {} out of range", task.slot);
        let stage = &metrics.stages[task.stage_id];
        assert_eq!(&*task.stage, stage.name.as_str());
        // queue_wait + busy is the task's residence (finished − queued),
        // which can never exceed the stage's wall time: the queued stamp is
        // taken after the stage starts, the finished stamp before its
        // metrics are recorded.
        let residence = task.queue_wait() + task.busy();
        assert!(
            residence <= stage.wall,
            "task residence {:?} exceeds wall {:?} of stage {}",
            residence,
            stage.wall,
            stage.name
        );
    }

    // Every traced stage id resolves to a recorded metrics stage.
    let max_id = snapshot.tasks().map(|t| t.stage_id).max().unwrap_or(0);
    assert!(max_id < metrics.stages.len());
}

#[test]
fn analytics_ranges_are_physical() {
    let cluster = Cluster::with_trace(ClusterConfig::local(2), TraceCollector::enabled());
    run_workload(&cluster);
    let analytics = ExecutorAnalytics::from_snapshot(
        &cluster.trace().snapshot(),
        cluster.config().task_slots(),
    );
    assert!(!analytics.stages.is_empty());
    assert!((0.0..=1.0).contains(&analytics.overall_occupancy()));
    assert!((0.0..=1.0).contains(&analytics.overall_idle_fraction()));
    assert!(analytics.critical_path() <= analytics.total_busy());
    for stage in &analytics.stages {
        assert!((0.0..=1.0).contains(&stage.occupancy), "{}", stage.stage);
        assert!(
            (0.0..=1.0).contains(&stage.idle_fraction),
            "{}",
            stage.stage
        );
        assert!(
            (stage.occupancy + stage.idle_fraction - 1.0).abs() < 1e-9,
            "occupancy and idle fraction must sum to 1"
        );
        assert!(stage.queue_wait_p50 <= stage.queue_wait_p95);
        assert!(stage.queue_wait_p95 <= stage.queue_wait_max);
        assert!(stage.longest_task <= stage.busy);
        let slot_sum: std::time::Duration = stage.slot_busy.iter().sum();
        assert_eq!(slot_sum, stage.busy, "slot timeline must account busy");
    }
}

#[test]
fn chrome_export_parses_and_covers_all_tasks() {
    let cluster = Cluster::with_trace(ClusterConfig::local(2), TraceCollector::enabled());
    {
        let _run = cluster.trace().span("demo/run");
        run_workload(&cluster);
    }
    let snapshot = cluster.trace().snapshot();
    let text = chrome_trace_json(&snapshot);
    let doc = Json::parse(&text).expect("the Chrome trace must parse back");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    // Every task and phase event becomes one complete event.
    assert_eq!(
        complete,
        snapshot.tasks().count() + snapshot.phases().count()
    );
    // The driver span is on the phase track (tid 0).
    assert!(events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("demo/run")
            && e.get("tid").and_then(Json::as_u64) == Some(0)
    }));
    // Shuffle flush marks surface as instant events.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Json::as_str) == Some("i")
            && e.get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.starts_with("shuffle-flush/"))
    }));
}

#[test]
fn forked_runs_share_one_timeline() {
    let parent = TraceCollector::enabled();
    for _ in 0..2 {
        let cluster = Cluster::with_trace(ClusterConfig::local(2), parent.fork());
        run_workload(&cluster);
        parent.extend(cluster.trace().snapshot().events);
    }
    let snapshot = parent.snapshot();
    let stages: std::collections::HashSet<usize> = snapshot.tasks().map(|t| t.stage_id).collect();
    // Both runs restart stage ids at 0 — the merged timeline keeps both.
    assert!(snapshot.tasks().count() > 0);
    assert!(stages.contains(&0));
    // All timestamps are on the parent's epoch: monotone non-negative.
    assert!(snapshot.tasks().all(|t| t.finished_ns >= t.queued_ns));
}
