//! End-to-end tests of the live metrics plane: the telemetry registry
//! observed through real `Dataset` pipelines, epoch reset between runs on
//! one cluster, the heartbeat time series, the HTTP endpoint scraped over
//! a real TCP connection, and the no-op invariance guarantee (telemetry on
//! vs. off changes nothing about results or determinism fingerprints).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use minispark::telemetry::{SampleValue, HEARTBEAT_SCHEMA, SNAPSHOT_SCHEMA};
use minispark::{check_determinism, schedule_matrix, Cluster, ClusterConfig, Json};

/// A small shuffle-heavy workload with a verifiable answer.
fn run_workload(cluster: &Cluster) -> Vec<(u32, u64)> {
    let records: Vec<(u32, u64)> = (0..400u32).map(|n| (n % 23, u64::from(n))).collect();
    let mut sums = cluster
        .parallelize(records, 8)
        .reduce_by_key("sum", 4, |a, b| a + b)
        .collect();
    sums.sort_unstable();
    sums
}

fn counter_value(cluster: &Cluster, name: &str) -> u64 {
    match cluster.telemetry().snapshot().find(name) {
        Some(sample) => match sample.value {
            SampleValue::Counter(v) => v,
            ref other => panic!("{name} is not a counter: {other:?}"),
        },
        None => 0,
    }
}

#[test]
fn a_run_populates_the_executor_series() {
    let cluster = Cluster::new(ClusterConfig::local(2).with_telemetry());
    let sums = run_workload(&cluster);
    assert_eq!(sums.len(), 23);

    let completed = counter_value(&cluster, "minispark_tasks_completed_total");
    let claimed = counter_value(&cluster, "minispark_tasks_claimed_total");
    assert!(completed > 0, "tasks ran, the counter must show them");
    assert_eq!(claimed, completed, "every claimed task completed");
    assert!(
        counter_value(&cluster, "minispark_shuffle_records_total") > 0,
        "reduce_by_key shuffles records"
    );

    // Queue depth and in-flight shuffle records drain back to zero.
    let snapshot = cluster.telemetry().snapshot();
    for gauge in [
        "minispark_queue_depth",
        "minispark_shuffle_inflight_records",
    ] {
        let sample = snapshot.find(gauge).expect("gauge registered");
        assert_eq!(
            sample.value,
            SampleValue::Gauge(0),
            "{gauge} must drain to zero after the run"
        );
    }

    // The task-duration histogram saw one record per completed task.
    let durations = snapshot
        .find("minispark_task_duration_ns")
        .expect("histogram registered");
    match &durations.value {
        SampleValue::Histogram(data) => assert_eq!(data.count, completed),
        other => panic!("task duration is not a histogram: {other:?}"),
    }
}

/// The run-to-run bleed regression test: two runs on ONE cluster with a
/// reset in between must report identical per-run numbers — reset really
/// clears every cell and bumps the epoch.
#[test]
fn two_runs_on_one_cluster_do_not_bleed() {
    let cluster = Cluster::new(ClusterConfig::local(2).with_telemetry());

    let first_sums = run_workload(&cluster);
    let first_completed = counter_value(&cluster, "minispark_tasks_completed_total");
    let first_shuffled = counter_value(&cluster, "minispark_shuffle_records_total");
    let epoch_before = cluster.telemetry().epoch();
    assert!(first_completed > 0);

    cluster.reset_metrics();
    assert_eq!(
        cluster.telemetry().epoch(),
        epoch_before + 1,
        "reset advances the epoch"
    );
    for (name, value) in cluster
        .telemetry()
        .snapshot()
        .metrics
        .iter()
        .filter_map(|m| match m.value {
            SampleValue::Counter(v) => Some((m.series(), v)),
            _ => None,
        })
    {
        assert_eq!(value, 0, "counter {name} must be zero after reset");
    }

    let second_sums = run_workload(&cluster);
    assert_eq!(first_sums, second_sums);
    assert_eq!(
        counter_value(&cluster, "minispark_tasks_completed_total"),
        first_completed,
        "second run must report its own task count, not first + second"
    );
    assert_eq!(
        counter_value(&cluster, "minispark_shuffle_records_total"),
        first_shuffled,
        "second run must report its own shuffle volume"
    );
}

#[test]
fn heartbeat_collects_a_time_series() {
    let config = ClusterConfig::local(2).with_heartbeat(Duration::from_millis(1));
    let cluster = Cluster::new(config);
    run_workload(&cluster);
    std::thread::sleep(Duration::from_millis(10));

    let doc = cluster.heartbeat_document().expect("heartbeat configured");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(HEARTBEAT_SCHEMA)
    );
    let samples = doc
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array");
    assert!(!samples.is_empty(), "1ms cadence over >10ms yields samples");
    // Timestamps are monotonically non-decreasing.
    let times: Vec<f64> = samples
        .iter()
        .map(|s| s.get("t_ms").and_then(Json::as_f64).expect("t_ms"))
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    // Every sample carries the metrics map.
    assert!(samples.iter().all(|s| s.get("metrics").is_some()));
}

/// One blocking HTTP exchange against the live endpoint.
fn http(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("endpoint reachable");
    stream
        .write_all(request.as_bytes())
        .expect("request written");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response read");
    response
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

#[test]
fn live_endpoint_serves_prometheus_and_json_over_tcp() {
    // Port 0: the OS picks a free port — parallel test runs never collide.
    let cluster = Cluster::new(ClusterConfig::local(2).with_live_port(0));
    let addr = cluster.live_addr().expect("server bound");
    run_workload(&cluster);

    let metrics = get(addr, "/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "Prometheus exposition content type: {metrics}"
    );
    let body = metrics.split("\r\n\r\n").nth(1).expect("body present");
    assert!(
        body.contains("# TYPE minispark_tasks_completed_total counter"),
        "{body}"
    );
    assert!(
        body.lines()
            .any(|l| l.starts_with("minispark_tasks_completed_total ")),
        "{body}"
    );
    // Histograms expose the cumulative bucket form.
    assert!(
        body.contains("minispark_task_duration_ns_bucket{le=\"+Inf\"}"),
        "{body}"
    );

    let snapshot = get(addr, "/snapshot");
    assert!(snapshot.starts_with("HTTP/1.1 200 OK\r\n"), "{snapshot}");
    assert!(snapshot.contains("application/json"), "{snapshot}");
    let body = snapshot.split("\r\n\r\n").nth(1).expect("body present");
    let doc = Json::parse(body).expect("snapshot body parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(SNAPSHOT_SCHEMA)
    );

    assert!(
        get(addr, "/nope").starts_with("HTTP/1.1 404"),
        "unknown path"
    );
    let post = http(
        addr,
        "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(post.starts_with("HTTP/1.1 405"), "{post}");
}

/// Telemetry must be a pure observer: the same workload with the full live
/// plane on (registry + heartbeat) passes the determinism checker with the
/// same reference result as the plain run.
#[test]
fn telemetry_does_not_change_results_or_fingerprints() {
    let schedules = schedule_matrix(2, 3);
    let plain = check_determinism(
        &ClusterConfig::local(2).with_default_partitions(4),
        &[1, 3],
        &schedules,
        run_workload,
    )
    .expect("plain workload is deterministic");
    let live = check_determinism(
        &ClusterConfig::local(2)
            .with_default_partitions(4)
            .with_heartbeat(Duration::from_millis(1)),
        &[1, 3],
        &schedules,
        run_workload,
    )
    .expect("telemetry-on workload is deterministic");
    assert_eq!(
        plain.reference, live.reference,
        "telemetry changed the computed result"
    );
    assert_eq!(plain.runs, live.runs);
}
