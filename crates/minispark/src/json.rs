//! A minimal, zero-dependency JSON value with an emitter and a parser.
//!
//! The observability layer ([`crate::trace`], run reports) emits JSON for
//! external tools (Perfetto, CI gates, plotting scripts). The repo's policy
//! is to keep the engine dependency-free, so this module hand-rolls the
//! little JSON that is needed instead of pulling in serde:
//!
//! * **Objects preserve insertion order** (they are association lists, not
//!   hash maps), so emitted documents are deterministic and diffable.
//! * **Non-finite floats render as `null`** — JSON has no NaN/Infinity, and
//!   `null` is what browsers' `JSON.stringify` does. The parser therefore
//!   round-trips every *finite* float exactly (Rust's `{}` formatting of
//!   `f64` is shortest-round-trip), while NaN/±Inf degrade to [`Json::Null`].
//! * The parser exists so tests and the `experiments` binary can validate
//!   what was emitted; it accepts standard JSON (with `\uXXXX` escapes and
//!   surrogate pairs) and rejects everything else with a byte offset.

use std::fmt;

/// Recursion limit for the parser (and the depth of emitted documents is far
/// below it): protects against pathological inputs in tests/CI.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. JSON has one number type; integers round-trip exactly up
    /// to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered association list (insertion order is
    /// preserved when rendering).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// A number from anything convertible to `f64`. Values above 2^53 (never
    /// produced by this repo's counters) lose precision, as in any JSON.
    pub fn num(n: impl Into<f64>) -> Self {
        Json::Num(n.into())
    }

    /// A number from a `usize` counter.
    pub fn num_usize(n: usize) -> Self {
        // cast(documented above: JSON numbers are f64, counters beyond 2^53 round)
        Json::Num(n as f64)
    }

    /// A number from a `u64` counter.
    pub fn num_u64(n: u64) -> Self {
        // cast(documented above: JSON numbers are f64, counters beyond 2^53 round)
        Json::Num(n as f64)
    }

    /// An empty object to be filled with [`Json::push`].
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object; no-op on non-objects (callers build
    /// objects with [`Json::obj`], this keeps the builder infallible).
    pub fn push(&mut self, key: &str, value: Json) {
        if let Json::Obj(fields) = self {
            fields.push((key.to_string(), value));
        } else {
            debug_assert!(false, "Json::push on a non-object");
        }
    }

    /// Builder-style [`Json::push`].
    #[must_use]
    pub fn with(mut self, key: &str, value: Json) -> Self {
        self.push(key, value);
        self
    }

    /// Looks up a field of an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // cast(2^53 is exactly representable; the guard makes the f64 → u64 cast exact)
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if the value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    /// Renders into an existing buffer.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the top-level value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if n.is_finite() {
        // Rust's `{}` for f64 is the shortest representation that parses
        // back to the same bits — exactly what a round-tripping emitter
        // needs — and it never produces exponent syntax JSON would reject.
        // errors(fmt::Write into a String is infallible)
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Infinity; degrade like `JSON.stringify`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            // cast(char → u32 is the scalar value — always lossless)
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                // cast(char → u32 is the scalar value — always lossless)
                // errors(fmt::Write into a String is infallible)
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            // Non-ASCII passes through as UTF-8 (valid JSON).
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Consume one UTF-8 scalar. Only the scalar's own bytes
                    // are validated — re-validating the whole remaining
                    // input here would make string parsing quadratic.
                    let len = match b {
                        0x20..=0x7f => 1,
                        0xc2..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf4 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let end = self.pos + len;
                    let scalar = self
                        .bytes
                        .get(self.pos..end)
                        .and_then(|slice| std::str::from_utf8(slice).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(scalar);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::num_usize(42).render(), "42");
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn object_order_is_preserved() {
        let obj = Json::obj()
            .with("z", Json::num_usize(1))
            .with("a", Json::num_usize(2));
        assert_eq!(obj.render(), "{\"z\":1,\"a\":2}");
        assert_eq!(obj.get("a"), Some(&Json::Num(2.0)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn parses_what_it_renders() {
        let doc = Json::obj()
            .with("name", Json::str("cl-p/join — θ"))
            .with("values", Json::Arr(vec![Json::num(0.25), Json::Null]))
            .with("ok", Json::Bool(false));
        let text = doc.render();
        assert_eq!(Json::parse(&text), Ok(doc));
    }

    #[test]
    fn parses_standard_escapes_and_surrogates() {
        assert_eq!(
            Json::parse("\"\\u00e9\\uD83D\\uDE00\\t\""),
            Ok(Json::Str("é😀\t".to_string()))
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"\\x\"").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn accepts_exponents_and_negatives() {
        assert_eq!(Json::parse("-2.5e3"), Ok(Json::Num(-2500.0)));
        assert_eq!(Json::parse("1E-2"), Ok(Json::Num(0.01)));
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::num_u64(7).as_u64(), Some(7));
        assert_eq!(Json::num(1.5).as_u64(), None);
        assert_eq!(Json::num(-1.0).as_u64(), None);
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut text = String::new();
        for _ in 0..(MAX_DEPTH + 8) {
            text.push('[');
        }
        assert!(Json::parse(&text).is_err());
    }
}
