//! External (spilling) group-by.
//!
//! §4.1 of the paper argues that iterator-style processing is "more native to
//! Spark's computational model, since this allows the framework to spill some
//! data to disk, when needed" — materialized in-memory indexes defeat that
//! and cause GC pressure and OOM crashes. The engine reproduces the mechanism
//! with a classic external grouping operator:
//!
//! 1. groups accumulate in a sorted in-memory map,
//! 2. whenever the record budget is exceeded, the map is encoded
//!    ([`crate::codec::Codec`]) into a sorted **run file**,
//! 3. the final result streams a k-way merge over all runs plus the in-memory
//!    remainder, concatenating value lists of equal keys.
//!
//! Run files are length-prefixed entry streams read through `BufReader`, so
//! the merge holds only one entry per run in memory.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::Codec;
use crate::telemetry::SpillProbe;

/// Result of an external group-by: the grouped records plus how many run
/// files had to be spilled (0 = everything fit in memory).
#[derive(Debug)]
pub struct ExternalGroupByResult<K, V> {
    /// The grouped output, sorted by key.
    pub groups: Vec<(K, Vec<V>)>,
    /// Number of run files written to disk.
    pub spilled_runs: usize,
}

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

fn spill_file_path(dir: Option<&Path>) -> PathBuf {
    let dir = dir.map_or_else(std::env::temp_dir, Path::to_path_buf);
    // relaxed(unique-id): only atomicity matters — each caller must draw a
    // distinct suffix, no ordering with other memory is implied.
    let unique = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    // alloc(one file name per spilled run, IO-bound path)
    dir.join(format!(
        "minispark-spill-{}-{}.run",
        std::process::id(),
        unique
    ))
}

/// One spilled run on disk: entries of `(K, Vec<V>)`, sorted by key, each
/// length-prefixed with a `u32`.
struct RunWriter {
    path: PathBuf,
    writer: BufWriter<File>,
}

impl RunWriter {
    fn create(dir: Option<&Path>) -> io::Result<Self> {
        let path = spill_file_path(dir);
        let file = File::create(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
        })
    }

    /// Writes one entry; returns the bytes it occupies on disk (payload plus
    /// length prefix), feeding the spill-bytes telemetry.
    fn write_entry<K: Codec, V: Codec>(&mut self, key: &K, values: &Vec<V>) -> io::Result<usize> {
        // alloc(per-entry encode buffer on the spill path, dwarfed by the disk write)
        let mut buf = Vec::new();
        key.encode(&mut buf);
        values.encode(&mut buf);
        let len = u32::try_from(buf.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "entry exceeds 4 GiB"))?;
        self.writer.write_all(&len.to_le_bytes())?;
        self.writer.write_all(&buf)?;
        Ok(buf.len() + len.to_le_bytes().len())
    }

    fn finish(mut self) -> io::Result<RunReader> {
        self.writer.flush()?;
        drop(self.writer);
        let file = File::open(&self.path)?;
        Ok(RunReader {
            path: self.path,
            reader: BufReader::new(file),
        })
    }
}

/// Streaming reader over one run file; deletes the file on drop.
struct RunReader {
    path: PathBuf,
    reader: BufReader<File>,
}

impl RunReader {
    fn next_entry<K: Codec, V: Codec>(&mut self) -> io::Result<Option<(K, Vec<V>)>> {
        let mut len_bytes = [0u8; 4];
        match self.reader.read_exact(&mut len_bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        // alloc(per-entry decode buffer on the spill path, dwarfed by the disk read)
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf)?;
        let mut slice = buf.as_slice();
        let key = K::decode(&mut slice)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "corrupt spill key"))?;
        let values = Vec::<V>::decode(&mut slice)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "corrupt spill values"))?;
        Ok(Some((key, values)))
    }
}

impl Drop for RunReader {
    fn drop(&mut self) {
        // errors(best-effort temp-file cleanup in Drop; the OS reclaims stragglers)
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Groups `records` by key, keeping at most `record_budget` records in memory
/// and spilling sorted runs to `spill_dir` (or the system temp directory)
/// beyond that.
///
/// The returned groups are sorted by key. With `record_budget = usize::MAX`
/// this degenerates to an in-memory sorted group-by and never touches disk.
pub fn external_group_by<K, V, I>(
    records: I,
    record_budget: usize,
    spill_dir: Option<&Path>,
) -> io::Result<ExternalGroupByResult<K, V>>
where
    K: Codec + Ord + Clone,
    V: Codec,
    I: Iterator<Item = (K, V)>,
{
    external_group_by_probed(records, record_budget, spill_dir, &SpillProbe::disabled())
}

/// [`external_group_by`] with live telemetry: every finished run ticks the
/// probe's run counter and adds the run's on-disk bytes. A disabled probe
/// makes this identical to the plain version.
pub fn external_group_by_probed<K, V, I>(
    records: I,
    record_budget: usize,
    spill_dir: Option<&Path>,
    probe: &SpillProbe,
) -> io::Result<ExternalGroupByResult<K, V>>
where
    K: Codec + Ord + Clone,
    V: Codec,
    I: Iterator<Item = (K, V)>,
{
    let record_budget = record_budget.max(1);
    // alloc(empty group/run containers never allocate until records arrive)
    let mut in_memory: BTreeMap<K, Vec<V>> = BTreeMap::new();
    let mut buffered = 0usize;
    let mut runs: Vec<RunReader> = Vec::new();

    for (k, v) in records {
        in_memory.entry(k).or_default().push(v);
        buffered += 1;
        if buffered >= record_budget {
            let mut writer = RunWriter::create(spill_dir)?;
            let mut run_bytes = 0usize;
            for (key, values) in std::mem::take(&mut in_memory) {
                run_bytes += writer.write_entry(&key, &values)?;
            }
            runs.push(writer.finish()?);
            probe.runs.inc();
            probe.bytes.add_usize(run_bytes);
            // A finished run is a durability boundary other tasks could
            // observe — announce it to the schedule-exploration harness.
            crate::sched::yield_point("spill-run");
            buffered = 0;
        }
    }

    let spilled_runs = runs.len();
    if runs.is_empty() {
        return Ok(ExternalGroupByResult {
            // alloc(the grouped output the caller takes ownership of)
            groups: in_memory.into_iter().collect(),
            spilled_runs,
        });
    }

    // K-way merge: the heap holds the head entry of each source; equal keys
    // from different sources are concatenated. The in-memory remainder acts
    // as one more (already sorted) source.
    let mut memory_iter = in_memory.into_iter();

    enum Source {
        Run(usize),
        Memory,
    }

    // alloc(merge state sized by run count, once per external group-by)
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    // Pending values per source, aligned with heap entries by source index.
    // Source index: 0..runs.len() are runs, runs.len() is the memory iterator.
    let memory_index = runs.len();
    // alloc(merge state sized by run count, once per external group-by)
    let mut pending: Vec<Option<Vec<V>>> = (0..=memory_index).map(|_| None).collect();

    let advance = |source: &Source,
                   runs: &mut Vec<RunReader>,
                   memory_iter: &mut std::collections::btree_map::IntoIter<K, Vec<V>>|
     -> io::Result<Option<(K, Vec<V>)>> {
        match source {
            // panics(Source::Run is only built with idx < memory_index ≤ runs.len())
            Source::Run(idx) => runs[*idx].next_entry::<K, V>(),
            Source::Memory => Ok(memory_iter.next()),
        }
    };

    #[allow(clippy::needless_range_loop)] // idx doubles as the source id pushed into the heap
    for idx in 0..=memory_index {
        let source = if idx == memory_index {
            Source::Memory
        } else {
            Source::Run(idx)
        };
        if let Some((k, vs)) = advance(&source, &mut runs, &mut memory_iter)? {
            // panics(idx ≤ memory_index < pending.len())
            pending[idx] = Some(vs);
            heap.push(Reverse((k, idx)));
        }
    }

    // alloc(the grouped output the caller takes ownership of)
    let mut groups: Vec<(K, Vec<V>)> = Vec::new();
    while let Some(Reverse((key, idx))) = heap.pop() {
        // panics(the heap only holds source ids ≤ memory_index < pending.len())
        let mut values = pending[idx].take().expect("heap entry without values");
        let source = if idx == memory_index {
            Source::Memory
        } else {
            Source::Run(idx)
        };
        if let Some((k, vs)) = advance(&source, &mut runs, &mut memory_iter)? {
            // panics(idx ≤ memory_index < pending.len())
            pending[idx] = Some(vs);
            heap.push(Reverse((k, idx)));
        }
        match groups.last_mut() {
            Some((last_key, last_values)) if *last_key == key => {
                last_values.append(&mut values);
            }
            _ => groups.push((key, values)),
        }
    }

    Ok(ExternalGroupByResult {
        groups,
        spilled_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn check_grouping(records: Vec<(u32, u64)>, budget: usize) -> usize {
        let mut expected: HashMap<u32, Vec<u64>> = HashMap::new();
        for (k, v) in &records {
            expected.entry(*k).or_default().push(*v);
        }
        let result = external_group_by(records.into_iter(), budget, None).unwrap();
        // Sorted by key.
        assert!(result.groups.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(result.groups.len(), expected.len());
        for (k, mut vs) in result.groups.clone() {
            let mut want = expected.remove(&k).unwrap();
            vs.sort();
            want.sort();
            assert_eq!(vs, want, "values for key {k}");
        }
        result.spilled_runs
    }

    #[test]
    fn in_memory_when_budget_is_large() {
        let records: Vec<(u32, u64)> = (0..100).map(|n| (n % 10, u64::from(n))).collect();
        let spilled = check_grouping(records, usize::MAX);
        assert_eq!(spilled, 0);
    }

    #[test]
    fn spills_and_merges_correctly() {
        let records: Vec<(u32, u64)> = (0..1000).map(|n| (n % 37, u64::from(n))).collect();
        let spilled = check_grouping(records, 100);
        assert!(spilled >= 9, "expected ~10 runs, got {spilled}");
    }

    #[test]
    fn budget_of_one_spills_every_record() {
        let records: Vec<(u32, u64)> = vec![(1, 10), (2, 20), (1, 30)];
        let spilled = check_grouping(records, 1);
        assert_eq!(spilled, 3);
    }

    #[test]
    fn zero_budget_is_clamped() {
        let records: Vec<(u32, u64)> = vec![(5, 50)];
        let spilled = check_grouping(records, 0);
        assert_eq!(spilled, 1);
    }

    #[test]
    fn empty_input() {
        let result = external_group_by(Vec::<(u32, u64)>::new().into_iter(), 10, None).unwrap();
        assert!(result.groups.is_empty());
        assert_eq!(result.spilled_runs, 0);
    }

    #[test]
    fn values_for_a_key_survive_across_runs() {
        // Key 7 appears in every run; all its values must be collected.
        let mut records = Vec::new();
        for n in 0..300u64 {
            records.push((7u32, n));
            records.push(((n % 90) as u32 + 100, n));
        }
        let result = external_group_by(records.into_iter(), 50, None).unwrap();
        let seven = result.groups.iter().find(|(k, _)| *k == 7).unwrap();
        assert_eq!(seven.1.len(), 300);
    }

    #[test]
    fn spill_files_are_deleted() {
        let dir = std::env::temp_dir().join(format!("minispark-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let records: Vec<(u32, u64)> = (0..500).map(|n| (n % 13, u64::from(n))).collect();
        let result = external_group_by(records.into_iter(), 50, Some(&dir)).unwrap();
        assert!(result.spilled_runs > 0);
        let leftovers = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0, "spill files were not cleaned up");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probe_counts_runs_and_bytes() {
        let registry = crate::telemetry::TelemetryRegistry::enabled();
        let probe = SpillProbe::register(&registry);
        let records: Vec<(u32, u64)> = (0..200).map(|n| (n % 11, u64::from(n))).collect();
        let result = external_group_by_probed(records.into_iter(), 50, None, &probe).unwrap();
        assert!(result.spilled_runs > 0);
        assert_eq!(probe.runs.get(), result.spilled_runs as u64);
        assert!(probe.bytes.get() > 0, "runs carry bytes");
    }

    #[test]
    fn string_keys_group_and_sort() {
        let records = vec![
            ("b".to_string(), 1u32),
            ("a".to_string(), 2),
            ("b".to_string(), 3),
        ];
        let result = external_group_by(records.into_iter(), 1, None).unwrap();
        assert_eq!(result.groups[0].0, "a");
        assert_eq!(result.groups[1].0, "b");
        assert_eq!(result.groups[1].1, vec![1, 3]);
    }
}
