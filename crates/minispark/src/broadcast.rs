//! Broadcast variables.
//!
//! Spark broadcasts cache a read-only value on every executor so that tasks
//! can reference it without shipping it with each closure. In-process the
//! analogue is an `Arc` snapshot; the type exists so that pipelines document
//! *which* values cross the driver/executor boundary (the paper broadcasts
//! the item-frequency order in §4) and so the engine can account their size.

use std::ops::Deref;
use std::sync::Arc;

/// A read-only value shared with every task, Spark-broadcast style.
#[derive(Debug)]
pub struct Broadcast<T> {
    value: Arc<T>,
}

impl<T> Broadcast<T> {
    /// Wraps a value for sharing. Usually created via
    /// [`crate::Cluster::broadcast`], which also records metrics.
    pub fn new(value: T) -> Self {
        Self {
            value: Arc::new(value),
        }
    }

    /// The broadcast value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> Clone for Broadcast<T> {
    fn clone(&self) -> Self {
        Self {
            value: Arc::clone(&self.value),
        }
    }
}

impl<T> Deref for Broadcast<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_same_allocation() {
        let b = Broadcast::new(vec![1, 2, 3]);
        let c = b.clone();
        assert!(std::ptr::eq(b.value(), c.value()));
        assert_eq!(*c, vec![1, 2, 3]);
    }

    #[test]
    fn deref_exposes_the_value() {
        let b = Broadcast::new(String::from("order"));
        assert_eq!(b.len(), 5);
    }
}
