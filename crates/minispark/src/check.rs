//! Schedule-exploration harness and dynamic trace auditors.
//!
//! [`crate::sched`] makes the executor's interleavings *controllable*; this
//! module makes them *checkable*:
//!
//! * [`audit_snapshot`] replays a [`TraceSnapshot`] against the executor's
//!   happens-before contract — per-task `queued ≤ started ≤ finished`, no
//!   two tasks overlapping on one slot, and no shuffle read beginning before
//!   the upstream flush mark (the flush-barrier rule);
//! * [`schedule_matrix`] derives a bounded, seed-reproducible set of
//!   [`Schedule`]s (the fixed adversaries plus seeded permutations);
//! * [`check_determinism`] runs a workload under N schedules × M slot
//!   counts — including the real thread pool as run zero — audits every
//!   run's trace, and asserts that the result and the stage-metrics
//!   fingerprint are bit-identical across all of them. A workload whose
//!   output depends on task interleaving (the failure mode that silently
//!   corrupts a distributed similarity join's recall) surfaces as a
//!   [`CheckFailure`].
//!
//! The executor's `pending`/`results` lock discipline is checked separately
//! and continuously by the [`crate::sched::lock_order`] sentinel, which
//! lives below the executor so this module (which sits *above*
//! [`crate::dataset`]) never appears in the executor's dependencies.

use std::fmt;

use crate::config::ClusterConfig;
use crate::dataset::Cluster;
use crate::sched::Schedule;
use crate::trace::{TraceCollector, TraceSnapshot};

/// One violation of the executor's happens-before contract found in a
/// trace. See [`audit_snapshot`] for the rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which rule was violated: `task-monotonicity`, `slot-exclusivity` or
    /// `flush-barrier`.
    pub rule: &'static str,
    /// Human-readable description naming the offending events.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Audits one run's [`TraceSnapshot`] against the executor's
/// happens-before contract. Returns every violation found (empty = clean).
///
/// Rules:
///
/// 1. **task-monotonicity** — every task satisfies
///    `queued_ns ≤ started_ns ≤ finished_ns`;
/// 2. **slot-exclusivity** — a worker slot runs one task at a time: sorted
///    by start, consecutive tasks on one slot must not overlap;
/// 3. **flush-barrier** — a `shuffle-flush/<stage>` mark separates the
///    stage's map wave from its reduce wave, so no task of that stage may
///    *strictly contain* the mark instant (a reduce task running across the
///    flush would be reading a shuffle before all upstream buckets were
///    flushed).
///
/// The snapshot must come from a single run (one cluster, one timeline);
/// timelines merged via [`TraceCollector::extend`] legitimately interleave
/// and would trip the slot-exclusivity rule.
pub fn audit_snapshot(snapshot: &TraceSnapshot) -> Vec<AuditViolation> {
    let mut violations = Vec::new();

    // Rule 1: per-task instant monotonicity.
    for t in snapshot.tasks() {
        if !(t.queued_ns <= t.started_ns && t.started_ns <= t.finished_ns) {
            violations.push(AuditViolation {
                rule: "task-monotonicity",
                detail: format!(
                    "stage '{}' task {}: queued={} started={} finished={}",
                    t.stage, t.task, t.queued_ns, t.started_ns, t.finished_ns
                ),
            });
        }
    }

    // Rule 2: slot exclusivity. Group by slot, sort by start, check for
    // overlap between consecutive occupancies.
    let mut by_slot: std::collections::BTreeMap<usize, Vec<(u64, u64, String, usize)>> =
        std::collections::BTreeMap::new();
    for t in snapshot.tasks() {
        by_slot.entry(t.slot).or_default().push((
            t.started_ns,
            t.finished_ns,
            t.stage.to_string(),
            t.task,
        ));
    }
    for (slot, mut occupancies) in by_slot {
        occupancies.sort_unstable_by_key(|&(started, finished, ..)| (started, finished));
        for pair in occupancies.windows(2) {
            let (_, prev_end, ref prev_stage, prev_task) = pair[0];
            let (next_start, _, ref next_stage, next_task) = pair[1];
            if next_start < prev_end {
                violations.push(AuditViolation {
                    rule: "slot-exclusivity",
                    detail: format!(
                        "slot {slot}: '{next_stage}' task {next_task} started at {next_start} \
                         while '{prev_stage}' task {prev_task} was still running (until {prev_end})"
                    ),
                });
            }
        }
    }

    // Rule 3: flush barriers. A task of stage S strictly containing the
    // `shuffle-flush/S` instant would span the map/reduce barrier.
    for mark in snapshot.marks() {
        let Some(stage) = mark.name.strip_prefix("shuffle-flush/") else {
            continue;
        };
        for t in snapshot.tasks() {
            if &*t.stage == stage && t.started_ns < mark.at_ns && mark.at_ns < t.finished_ns {
                violations.push(AuditViolation {
                    rule: "flush-barrier",
                    detail: format!(
                        "stage '{stage}' task {} (slot {}) spans the shuffle flush at {} \
                         (started={} finished={})",
                        t.task, t.slot, mark.at_ns, t.started_ns, t.finished_ns
                    ),
                });
            }
        }
    }

    violations
}

/// A bounded, reproducible schedule set for exploration: the three fixed
/// adversaries (natural, reversed, stragglers-first) followed by
/// `n − 3` seeded permutations derived from `seed`. Asking for fewer than
/// three returns a prefix of the fixed set.
pub fn schedule_matrix(n: usize, seed: u64) -> Vec<Schedule> {
    let mut schedules = vec![
        Schedule::Natural,
        Schedule::Reversed,
        Schedule::StragglersFirst,
    ];
    schedules.truncate(n);
    for i in 0..n.saturating_sub(schedules.len()) as u64 {
        // Spread the user seed so adjacent i never collide with small seeds.
        schedules.push(Schedule::Seeded(
            seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        ));
    }
    schedules
}

/// Why a [`check_determinism`] exploration failed. Every variant names the
/// run (slot count + schedule, `None` = the default thread pool) that
/// exposed the problem.
#[derive(Debug, Clone)]
pub enum CheckFailure {
    /// A run's trace violated the executor's happens-before contract.
    Audit {
        /// Task-slot count of the failing run.
        slots: usize,
        /// Schedule of the failing run (`None` = thread pool).
        schedule: Option<Schedule>,
        /// The violations [`audit_snapshot`] found.
        violations: Vec<AuditViolation>,
    },
    /// A run's result differed from the reference run's result.
    Nondeterminism {
        /// Task-slot count of the failing run.
        slots: usize,
        /// Schedule of the failing run (`None` = thread pool).
        schedule: Option<Schedule>,
        /// Truncated `Debug` of the reference result.
        reference: String,
        /// Truncated `Debug` of the divergent result.
        divergent: String,
    },
    /// A run's stage-metrics fingerprint (stage names, task counts, record
    /// and shuffle counts) differed from the reference run's.
    MetricsDrift {
        /// Task-slot count of the failing run.
        slots: usize,
        /// Schedule of the failing run (`None` = thread pool).
        schedule: Option<Schedule>,
        /// Description of the first fingerprint difference.
        detail: String,
    },
}

fn describe_run(slots: usize, schedule: Option<Schedule>) -> String {
    match schedule {
        Some(s) => format!("{slots} slots, schedule {}", s.describe()),
        None => format!("{slots} slots, thread pool"),
    }
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckFailure::Audit {
                slots,
                schedule,
                violations,
            } => {
                writeln!(
                    f,
                    "trace audit failed under {} ({} violations):",
                    describe_run(*slots, *schedule),
                    violations.len()
                )?;
                for v in violations {
                    writeln!(f, "  {v}")?;
                }
                Ok(())
            }
            CheckFailure::Nondeterminism {
                slots,
                schedule,
                reference,
                divergent,
            } => write!(
                f,
                "schedule-dependent result under {}:\n  reference: {}\n  divergent: {}",
                describe_run(*slots, *schedule),
                reference,
                divergent
            ),
            CheckFailure::MetricsDrift {
                slots,
                schedule,
                detail,
            } => write!(
                f,
                "stage-metrics fingerprint drifted under {}: {}",
                describe_run(*slots, *schedule),
                detail
            ),
        }
    }
}

impl std::error::Error for CheckFailure {}

/// Summary of a successful [`check_determinism`] exploration.
#[derive(Debug)]
pub struct ExplorationOutcome<R> {
    /// Number of runs executed (thread pool + schedules, per slot count).
    pub runs: usize,
    /// The agreed-upon result (from the reference run).
    pub reference: R,
}

/// Truncated `Debug` rendering for failure reports.
fn brief(value: &impl fmt::Debug) -> String {
    let s = format!("{value:?}");
    if s.len() > 300 {
        let cut = s
            .char_indices()
            .take_while(|&(i, _)| i < 300)
            .last()
            .map_or(0, |(i, c)| i + c.len_utf8());
        format!("{}… ({} chars)", &s[..cut], s.len())
    } else {
        s
    }
}

/// One stage's worth of [`metrics_fingerprint`]: stage name, task count,
/// input/output/shuffle record counts and spilled runs.
type StageFingerprint = (String, usize, usize, usize, usize, usize);

/// Per-stage fingerprint that must be identical across schedules and slot
/// counts: everything in the metrics that describes *what* was computed
/// rather than *how fast* (names, task/record/shuffle/spill counts — not
/// wall or busy times).
fn metrics_fingerprint(cluster: &Cluster) -> Vec<StageFingerprint> {
    cluster
        .metrics()
        .stages
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.num_tasks,
                s.input_records,
                s.output_records,
                s.shuffle_records,
                s.spilled_runs,
            )
        })
        .collect()
}

/// Runs `run` once per (slot count × {thread pool + schedule}) combination
/// and asserts that every run agrees: the trace audits clean
/// ([`audit_snapshot`]), the returned result equals the reference run's
/// result (`PartialEq`), and the stage-metrics fingerprint is stable.
///
/// `base` supplies everything but parallelism (partitions, spill budget,
/// …); each exploration run overrides it to a single node with
/// `slots` cores. The first combination (first slot count, thread pool) is
/// the reference. The closure receives a freshly booted, trace-enabled
/// [`Cluster`] per run and must build its whole pipeline on it; returning a
/// canonical (sorted) result is the caller's job — the checker compares
/// with `==`.
///
/// # Errors
///
/// The first disagreement or audit violation aborts the exploration with a
/// [`CheckFailure`] naming the run that exposed it.
pub fn check_determinism<R, F>(
    base: &ClusterConfig,
    slot_counts: &[usize],
    schedules: &[Schedule],
    mut run: F,
) -> Result<ExplorationOutcome<R>, CheckFailure>
where
    R: PartialEq + fmt::Debug,
    F: FnMut(&Cluster) -> R,
{
    let mut reference: Option<(R, Vec<StageFingerprint>)> = None;
    let mut runs = 0usize;
    for &slots in slot_counts {
        // Thread pool first (the production path), then each schedule.
        let modes = std::iter::once(None).chain(schedules.iter().copied().map(Some));
        for schedule in modes {
            let mut config = base.clone();
            config.nodes = 1;
            config.executors_per_node = 1;
            config.cores_per_executor = slots.max(1);
            config.schedule = schedule;
            let cluster = Cluster::with_trace(config, TraceCollector::enabled());
            let result = run(&cluster);
            runs += 1;

            let violations = audit_snapshot(&cluster.trace().snapshot());
            if !violations.is_empty() {
                return Err(CheckFailure::Audit {
                    slots,
                    schedule,
                    violations,
                });
            }

            let fingerprint = metrics_fingerprint(&cluster);
            match &reference {
                None => reference = Some((result, fingerprint)),
                Some((expected, expected_fp)) => {
                    if result != *expected {
                        return Err(CheckFailure::Nondeterminism {
                            slots,
                            schedule,
                            reference: brief(expected),
                            divergent: brief(&result),
                        });
                    }
                    if fingerprint != *expected_fp {
                        let detail = fingerprint
                            .iter()
                            .zip(expected_fp)
                            .find(|(got, want)| got != want)
                            .map_or_else(
                                || {
                                    format!(
                                        "stage count changed: {} vs {}",
                                        fingerprint.len(),
                                        expected_fp.len()
                                    )
                                },
                                |(got, want)| format!("stage {got:?}, expected {want:?}"),
                            );
                        return Err(CheckFailure::MetricsDrift {
                            slots,
                            schedule,
                            detail,
                        });
                    }
                }
            }
        }
    }
    let (reference, _) = reference.expect("check_determinism needs at least one slot count");
    Ok(ExplorationOutcome { runs, reference })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MarkEvent, TaskEvent, TraceEvent};
    use std::sync::Arc;

    fn task(stage: &str, task: usize, slot: usize, span: (u64, u64, u64)) -> TraceEvent {
        TraceEvent::Task(TaskEvent {
            stage_id: 0,
            stage: Arc::from(stage),
            task,
            slot,
            queued_ns: span.0,
            started_ns: span.1,
            finished_ns: span.2,
        })
    }

    #[test]
    fn audit_accepts_a_real_run() {
        let cluster = Cluster::with_trace(ClusterConfig::local(4), TraceCollector::enabled());
        let pairs: Vec<(u32, u32)> = (0..200).map(|n| (n % 7, n)).collect();
        cluster.parallelize(pairs, 8).group_by_key("group", 4);
        let violations = audit_snapshot(&cluster.trace().snapshot());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn audit_flags_non_monotone_task_instants() {
        let snapshot = TraceSnapshot {
            events: vec![task("s", 0, 0, (50, 40, 60))],
        };
        let violations = audit_snapshot(&snapshot);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "task-monotonicity");
    }

    #[test]
    fn audit_flags_overlapping_tasks_on_one_slot() {
        let snapshot = TraceSnapshot {
            events: vec![
                task("s", 0, 2, (0, 10, 30)),
                task("s", 1, 2, (0, 20, 40)), // starts while task 0 runs
                task("s", 2, 3, (0, 20, 40)), // different slot: fine
            ],
        };
        let violations = audit_snapshot(&snapshot);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "slot-exclusivity");
        assert!(violations[0].detail.contains("slot 2"));
    }

    #[test]
    fn audit_flags_a_task_spanning_the_flush_barrier() {
        let snapshot = TraceSnapshot {
            events: vec![
                task("wide", 0, 0, (0, 10, 20)),
                task("wide", 1, 1, (0, 40, 60)), // strictly contains the mark
                task("other", 0, 2, (0, 40, 60)), // different stage: fine
                TraceEvent::Mark(MarkEvent {
                    name: "shuffle-flush/wide".to_string(),
                    at_ns: 50,
                    value: 2,
                }),
            ],
        };
        let violations = audit_snapshot(&snapshot);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "flush-barrier");
    }

    #[test]
    fn schedule_matrix_is_reproducible_and_sized() {
        assert_eq!(schedule_matrix(2, 1).len(), 2);
        let eight = schedule_matrix(8, 99);
        assert_eq!(eight.len(), 8);
        assert_eq!(eight[0], Schedule::Natural);
        assert_eq!(eight[2], Schedule::StragglersFirst);
        assert!(matches!(eight[3], Schedule::Seeded(_)));
        assert_eq!(eight, schedule_matrix(8, 99), "same seed, same matrix");
        assert_ne!(eight[3..], schedule_matrix(8, 100)[3..]);
    }

    #[test]
    fn determinism_check_passes_for_a_deterministic_pipeline() {
        let outcome = check_determinism(
            &ClusterConfig::default(),
            &[1, 3],
            &schedule_matrix(4, 7),
            |cluster| {
                let pairs: Vec<(u32, u64)> = (0..300u64).map(|n| ((n % 11) as u32, n)).collect();
                let mut sums = cluster
                    .parallelize(pairs, 6)
                    .reduce_by_key("sum", 4, |a, b| a + b)
                    .collect();
                sums.sort_unstable();
                sums
            },
        )
        .expect("a sorted reduce_by_key result is schedule-independent");
        // 2 slot counts × (thread pool + 4 schedules).
        assert_eq!(outcome.runs, 10);
        assert_eq!(outcome.reference.len(), 11);
    }

    #[test]
    fn determinism_check_catches_slot_dependent_results() {
        let failure = check_determinism(
            &ClusterConfig::default(),
            &[1, 2],
            &[Schedule::Natural],
            |cluster| cluster.config().task_slots(),
        )
        .expect_err("a slot-dependent result must fail");
        match failure {
            CheckFailure::Nondeterminism {
                slots, reference, ..
            } => {
                assert_eq!(slots, 2);
                assert_eq!(reference, "1");
            }
            other => panic!("expected Nondeterminism, got {other}"),
        }
    }

    #[test]
    fn determinism_check_catches_metrics_drift() {
        let mut call = 0usize;
        let failure = check_determinism(
            &ClusterConfig::default(),
            &[2],
            &[Schedule::Natural],
            |cluster| {
                call += 1;
                let ds = cluster.parallelize((0..10u32).collect::<Vec<_>>(), 2);
                // Same result, but the second run sneaks in an extra stage —
                // the fingerprint must notice.
                let ds = if call > 1 {
                    ds.map("extra", |&n| n)
                } else {
                    ds
                };
                let mut out = ds.collect();
                out.sort_unstable();
                out
            },
        )
        .expect_err("a run with extra stages must fail the fingerprint");
        assert!(
            matches!(failure, CheckFailure::MetricsDrift { .. }),
            "{failure}"
        );
    }

    #[test]
    fn failure_display_names_the_run() {
        let f = CheckFailure::Nondeterminism {
            slots: 4,
            schedule: Some(Schedule::Seeded(5)),
            reference: "a".into(),
            divergent: "b".into(),
        };
        let text = f.to_string();
        assert!(text.contains("4 slots"), "{text}");
        assert!(text.contains("seeded(5)"), "{text}");
    }
}
