//! The task executor: runs one stage's tasks on a bounded pool of worker
//! threads, emulating a cluster with a fixed number of executor cores.
//!
//! Tasks are claimed dynamically (work stealing via an atomic cursor), which
//! matches Spark's behaviour of assigning tasks to whichever core frees up —
//! important for skewed workloads where one oversized partition dominates
//! (the exact effect the paper's CL-P repartitioning attacks).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::config::ClusterConfig;
use crate::sched::{self, lock_order, Schedule};
use crate::telemetry::ExecutorProbe;

/// Scheduling trace of one executed task: which slot ran it and the
/// queued → started → finished instants. `queued` is the stage submission
/// time (all tasks of a stage become runnable together), so
/// `started − queued` is the task's queue wait and `finished − started` its
/// busy time. Consumed by [`crate::trace::TraceCollector::record_stage_tasks`].
#[derive(Debug, Clone, Copy)]
pub struct TaskSpan {
    /// Task index within the stage.
    pub task: usize,
    /// Worker slot (0-based) the task executed on.
    pub slot: usize,
    /// When the task became runnable.
    pub queued: Instant,
    /// When a worker picked it up.
    pub started: Instant,
    /// When it finished.
    pub finished: Instant,
}

/// Timing of one executed stage: the summed busy time plus the per-task
/// durations (the input to the cluster-simulation makespan, see
/// [`crate::metrics::StageMetrics::simulated_wall`]).
#[derive(Debug, Clone, Default)]
pub struct TaskTimes {
    /// Sum of all task durations.
    pub total: Duration,
    /// Duration of each task, in task order.
    pub per_task: Vec<Duration>,
    /// Scheduling trace of each task, in task order. Built from instants the
    /// executor takes anyway, so the cost is independent of whether a
    /// [`crate::trace::TraceCollector`] consumes it.
    pub spans: Vec<TaskSpan>,
}

/// Runs `f(task_index, input)` for every input, using at most `slots`
/// concurrent worker threads. Returns the outputs in input order along with
/// the task timings.
///
/// Panics in a task propagate to the caller (the stage fails), mirroring a
/// failed Spark job.
pub fn run_tasks<I, O, F>(slots: usize, inputs: Vec<I>, f: F) -> (Vec<O>, TaskTimes)
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let slots = slots.max(1);
    let num_tasks = inputs.len();
    if num_tasks == 0 {
        // alloc(empty Vec never allocates)
        return (Vec::new(), TaskTimes::default());
    }
    sched::arm_from_env();
    // Stage submission time: every task of the stage is runnable from here,
    // so `started − queued` measures the wait for a free slot.
    let queued = Instant::now();

    if slots == 1 || num_tasks == 1 {
        // Fast sequential path (also keeps single-slot runs deterministic in
        // their scheduling for tests).
        // alloc(per-stage output/timing buffers, sized once — not per task)
        let mut outputs = Vec::with_capacity(num_tasks);
        let mut per_task = Vec::with_capacity(num_tasks);
        let mut spans = Vec::with_capacity(num_tasks);
        for (idx, input) in inputs.into_iter().enumerate() {
            let start = Instant::now();
            outputs.push(f(idx, input));
            let elapsed = start.elapsed();
            per_task.push(elapsed);
            spans.push(TaskSpan {
                task: idx,
                slot: 0,
                queued,
                started: start,
                finished: start + elapsed,
            });
        }
        let total = per_task.iter().sum();
        return (
            outputs,
            TaskTimes {
                total,
                per_task,
                spans,
            },
        );
    }

    // alloc(per-stage task-slot tables, built once before the workers start)
    let pending: Vec<Mutex<Option<I>>> = inputs.into_iter().map(|i| Mutex::new(Some(i))).collect();
    // Per-task result slot: output, busy duration, start instant, worker slot.
    type TaskResult<O> = Mutex<Option<(O, Duration, Instant, usize)>>;
    // alloc(per-stage task-slot tables, built once before the workers start)
    let results: Vec<TaskResult<O>> = (0..num_tasks).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let busy_nanos = AtomicU64::new(0);

    let workers = slots.min(num_tasks);
    std::thread::scope(|scope| {
        let pending = &pending;
        let results = &results;
        let cursor = &cursor;
        let busy_nanos = &busy_nanos;
        let f = &f;
        for slot in 0..workers {
            scope.spawn(move || loop {
                sched::yield_point("executor/claim");
                // relaxed(cursor): the fetch_add's atomicity alone guarantees
                // unique task indices; the per-slot mutexes order the data
                // accesses.
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= num_tasks {
                    break;
                }
                let input = {
                    let _held = lock_order::acquire(lock_order::Family::Pending, idx);
                    // panics(idx < num_tasks checked above; pending has num_tasks slots)
                    pending[idx]
                        .lock()
                        .take()
                        .expect("task input claimed twice")
                };
                let start = Instant::now();
                let output = f(idx, input);
                let elapsed = start.elapsed();
                // relaxed(counter): an independent duration counter, only
                // read after the scope below joins every worker.
                // cast(task durations are far below u64::MAX ns ≈ 584 years)
                busy_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                let _held = lock_order::acquire(lock_order::Family::Results, idx);
                // panics(idx < num_tasks checked above; results has num_tasks slots)
                *results[idx].lock() = Some((output, elapsed, start, slot));
            });
        }
    });

    // alloc(per-stage output/timing buffers, sized once — not per task)
    let mut outputs = Vec::with_capacity(num_tasks);
    let mut per_task = Vec::with_capacity(num_tasks);
    let mut spans = Vec::with_capacity(num_tasks);
    for (idx, cell) in results.into_iter().enumerate() {
        let (output, elapsed, started, slot) = cell.into_inner().expect("task produced no output");
        outputs.push(output);
        per_task.push(elapsed);
        spans.push(TaskSpan {
            task: idx,
            slot,
            queued,
            started,
            finished: started + elapsed,
        });
    }
    debug_assert_eq!(
        outputs.len(),
        num_tasks,
        "executor invariant: exactly one output per task"
    );
    debug_assert_eq!(
        per_task.len(),
        num_tasks,
        "executor invariant: exactly one timing per task"
    );
    (
        outputs,
        TaskTimes {
            // relaxed(read-after-join): torn-read tolerant, joined-before-load
            // — the scope joined all workers above, so every fetch_add to
            // busy_nanos happens-before this load; no writer can tear it.
            total: Duration::from_nanos(busy_nanos.load(Ordering::Relaxed)),
            per_task,
            spans,
        },
    )
}

/// Runs `f(task_index, input)` for every input under a deterministic
/// [`Schedule`]: tasks execute one at a time on the calling thread, in the
/// schedule's claim order, labelled with the schedule's slot assignment.
/// Returns outputs in **input order** (like [`run_tasks`]) plus timings
/// whose spans reflect the scheduled order.
///
/// This is the executor's concurrency-checking mode — same contract as
/// [`run_tasks`], different (replayable) interleaving. Installed engine-wide
/// via [`ClusterConfig::with_schedule`]; driven by [`crate::check`].
pub fn run_tasks_scheduled<I, O, F>(
    schedule: Schedule,
    slots: usize,
    inputs: Vec<I>,
    f: F,
) -> (Vec<O>, TaskTimes)
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let slots = slots.max(1);
    let num_tasks = inputs.len();
    if num_tasks == 0 {
        // alloc(empty Vec never allocates)
        return (Vec::new(), TaskTimes::default());
    }
    sched::arm_from_env();
    let queued = Instant::now();
    let order = schedule.claim_order(num_tasks);
    debug_assert_eq!(order.len(), num_tasks, "claim order must be a permutation");
    // Fault injection for the checker's negative test: place outputs by
    // *claim position* instead of task index — the classic "forgot to map
    // the dynamic claim order back to submission order" bug. Only looked at
    // in scheduled mode; the checker proves it makes results
    // schedule-dependent.
    let inject_claim_order =
        std::env::var_os("MINISPARK_SCHED_INJECT").is_some_and(|v| v == "claim-order");

    // alloc(per-stage task state, built once before the replay loop)
    let mut pending: Vec<Option<I>> = inputs.into_iter().map(Some).collect();
    let mut outputs: Vec<Option<O>> = (0..num_tasks).map(|_| None).collect();
    let mut per_task = vec![Duration::ZERO; num_tasks];
    // alloc(per-stage task state, built once before the replay loop)
    let mut spans: Vec<Option<TaskSpan>> = vec![None; num_tasks];
    for (position, &idx) in order.iter().enumerate() {
        sched::yield_point("executor/claim");
        let slot = schedule.slot_of(position, num_tasks, slots);
        // panics(order is a permutation of 0..num_tasks — idx is in range)
        let input = pending[idx].take().expect("task input claimed twice");
        let start = Instant::now();
        let output = f(idx, input);
        let elapsed = start.elapsed();
        let dest = if inject_claim_order { position } else { idx };
        // panics(dest and idx are both < num_tasks — all three vectors are that long)
        outputs[dest] = Some(output);
        per_task[idx] = elapsed;
        spans[idx] = Some(TaskSpan {
            task: idx,
            slot,
            queued,
            started: start,
            finished: start + elapsed,
        });
    }
    let outputs: Vec<O> = outputs
        .into_iter()
        .map(|o| o.expect("task produced no output"))
        // alloc(per-stage unwrap of the option table into the output Vec)
        .collect();
    let spans: Vec<TaskSpan> = spans
        .into_iter()
        .map(|s| s.expect("task produced no span"))
        // alloc(per-stage unwrap of the option table into the span Vec)
        .collect();
    let total = per_task.iter().sum();
    (
        outputs,
        TaskTimes {
            total,
            per_task,
            spans,
        },
    )
}

/// Number of tasks in `spans` that were **stolen**: executed on a different
/// slot than the static round-robin assignment `task % workers` would use,
/// where `workers = min(slots, tasks)` is the number of workers the stage
/// could occupy.
///
/// The executor claims tasks dynamically (atomic cursor), so a fast slot
/// that runs dry backfills itself with tasks a static scheduler would have
/// queued behind a straggler on another slot — that deviation is exactly
/// what this counts. Zero means the stage degenerated to the static plan
/// (always true for one slot or one task); a high count on a split-join
/// stage means the skew sub-partitions really did migrate to idle slots.
pub fn steal_count(spans: &[TaskSpan], slots: usize) -> usize {
    // alloc(post-stage diagnostics, one pair Vec per analyzed stage)
    let pairs: Vec<(usize, usize)> = spans.iter().map(|s| (s.task, s.slot)).collect();
    steal_count_indexed(&pairs, slots)
}

/// [`steal_count`] over raw `(task_index, slot)` pairs, in recording order.
///
/// Handles concatenated task waves (a wide stage records its map and reduce
/// waves back to back, each restarting task indices at 0): waves are
/// recovered at the task-index resets and counted separately, so one wave's
/// indices never judge another wave's slots. Used by the trace analytics,
/// whose [`crate::trace::TaskEvent`]s carry indices but not `Instant`s.
pub fn steal_count_indexed(pairs: &[(usize, usize)], slots: usize) -> usize {
    let mut total = 0;
    let mut wave_start = 0;
    for idx in 1..=pairs.len() {
        // panics(short-circuit guards idx < pairs.len(); idx ≥ 1 from the range)
        let resets = idx == pairs.len() || pairs[idx].0 <= pairs[idx - 1].0;
        if resets {
            // panics(wave_start ≤ idx ≤ pairs.len() — the wave is a valid subslice)
            let wave = &pairs[wave_start..idx];
            let workers = slots.max(1).min(wave.len());
            if workers > 1 {
                total += wave
                    .iter()
                    // panics(workers > 1 guarded just above — the modulus is non-zero)
                    .filter(|(task, slot)| *slot != task % workers)
                    .count();
            }
            wave_start = idx;
        }
    }
    total
}

/// [`steal_count_indexed`] over [`TaskSpan`]s — the form the wide-stage
/// recorder holds after merging its map- and reduce-wave timings.
pub fn steal_count_concat(spans: &[TaskSpan], slots: usize) -> usize {
    // alloc(post-stage diagnostics, one pair Vec per analyzed stage)
    let pairs: Vec<(usize, usize)> = spans.iter().map(|s| (s.task, s.slot)).collect();
    steal_count_indexed(&pairs, slots)
}

/// Stage entry point used by the engine's operators: dispatches to the
/// deterministic scheduled path when the cluster config installs a
/// [`Schedule`], and to the [`run_tasks`] thread pool otherwise.
///
/// The [`ExecutorProbe`] sees every task: queue depth rises by the stage's
/// task count on submission and falls per claim, claim/complete counters
/// tick around the task body, and busy durations land in the probe's
/// histogram after the stage joins. With a disabled probe each touch is a
/// single `None` branch.
pub(crate) fn run_stage_tasks<I, O, F>(
    config: &ClusterConfig,
    probe: &ExecutorProbe,
    inputs: Vec<I>,
    f: F,
) -> (Vec<O>, TaskTimes)
where
    I: Send,
    O: Send,
    F: Fn(usize, I) -> O + Sync,
{
    let slots = config.task_slots();
    probe.queue_depth.add_usize(inputs.len());
    let wrapped = |idx: usize, input: I| {
        probe.tasks_claimed.inc();
        probe.queue_depth.dec();
        let output = f(idx, input);
        probe.tasks_completed.inc();
        output
    };
    let (outputs, times) = match config.schedule {
        Some(schedule) => run_tasks_scheduled(schedule, slots, inputs, wrapped),
        None => run_tasks(slots, inputs, wrapped),
    };
    if probe.is_enabled() {
        for d in &times.per_task {
            probe.task_ns.record_duration(*d);
        }
    }
    (outputs, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn outputs_preserve_input_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let (out, _) = run_tasks(8, inputs, |idx, input| {
            assert_eq!(idx, input);
            input * 2
        });
        assert_eq!(out, (0..100).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (out, times) = run_tasks::<u32, u32, _>(4, vec![], |_, i| i);
        assert!(out.is_empty());
        assert_eq!(times.total, Duration::ZERO);
        assert!(times.per_task.is_empty());
    }

    #[test]
    fn sequential_path_matches_parallel_path() {
        let inputs: Vec<u64> = (0..50).collect();
        let (seq, _) = run_tasks(1, inputs.clone(), |_, n| n * n);
        let (par, _) = run_tasks(16, inputs, |_, n| n * n);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..200).collect();
        let (out, _) = run_tasks(7, inputs, |_, input| {
            counter.fetch_add(1, Ordering::SeqCst);
            input
        });
        assert_eq!(counter.load(Ordering::SeqCst), 200);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 200);
    }

    #[test]
    fn uses_at_most_the_requested_slots() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let inputs: Vec<usize> = (0..64).collect();
        run_tasks(3, inputs, |_, input| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
            input
        });
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn spans_carry_slots_and_ordered_instants() {
        let inputs = vec![(); 16];
        let (_, times) = run_tasks(4, inputs, |_, ()| {
            std::thread::sleep(Duration::from_micros(100));
        });
        assert_eq!(times.spans.len(), 16);
        for (idx, s) in times.spans.iter().enumerate() {
            assert_eq!(s.task, idx);
            assert!(s.slot < 4);
            assert!(s.queued <= s.started);
            assert!(s.started <= s.finished);
        }
        // The sequential path pins everything on slot 0.
        let (_, seq) = run_tasks(1, vec![(); 3], |_, ()| ());
        assert_eq!(seq.spans.len(), 3);
        assert!(seq.spans.iter().all(|s| s.slot == 0));
    }

    #[test]
    fn scheduled_path_matches_thread_pool_outputs() {
        let inputs: Vec<u64> = (0..40).collect();
        let (reference, _) = run_tasks(4, inputs.clone(), |idx, n| (idx as u64) * 100 + n);
        for schedule in [
            Schedule::Natural,
            Schedule::Reversed,
            Schedule::Seeded(11),
            Schedule::StragglersFirst,
        ] {
            let (out, times) =
                run_tasks_scheduled(schedule, 4, inputs.clone(), |idx, n| (idx as u64) * 100 + n);
            assert_eq!(out, reference, "{schedule:?} must preserve input order");
            assert_eq!(times.spans.len(), 40);
            for (idx, s) in times.spans.iter().enumerate() {
                assert_eq!(s.task, idx);
                assert!(s.slot < 4, "{schedule:?} produced slot {}", s.slot);
                assert!(s.queued <= s.started && s.started <= s.finished);
            }
        }
    }

    #[test]
    fn scheduled_path_executes_in_claim_order() {
        let seen = Mutex::new(Vec::new());
        let inputs = vec![(); 6];
        run_tasks_scheduled(Schedule::Reversed, 2, inputs, |idx, ()| {
            seen.lock().push(idx);
        });
        assert_eq!(*seen.lock(), vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn run_stage_tasks_dispatches_on_config() {
        let probe = ExecutorProbe::disabled();
        let inputs: Vec<u32> = (0..10).collect();
        let pooled = ClusterConfig::local(3);
        let (a, _) = run_stage_tasks(&pooled, &probe, inputs.clone(), |_, n| n + 1);
        let scheduled = ClusterConfig::local(3).with_schedule(Schedule::StragglersFirst);
        let (b, _) = run_stage_tasks(&scheduled, &probe, inputs, |_, n| n + 1);
        assert_eq!(a, b);
    }

    #[test]
    fn run_stage_tasks_feeds_a_live_probe() {
        let registry = crate::telemetry::TelemetryRegistry::enabled();
        let probe = ExecutorProbe::register(&registry);
        let inputs: Vec<u32> = (0..12).collect();
        let (out, _) = run_stage_tasks(&ClusterConfig::local(3), &probe, inputs, |_, n| n);
        assert_eq!(out.len(), 12);
        assert_eq!(probe.tasks_claimed.get(), 12);
        assert_eq!(probe.tasks_completed.get(), 12);
        assert_eq!(probe.queue_depth.get(), 0, "depth returns to zero");
        assert_eq!(probe.task_ns.data().count, 12);
    }

    #[test]
    fn steal_count_is_zero_for_static_assignments() {
        let queued = Instant::now();
        let span = |task: usize, slot: usize| TaskSpan {
            task,
            slot,
            queued,
            started: queued,
            finished: queued,
        };
        // Perfect round-robin over 2 workers: nothing stolen.
        let spans: Vec<TaskSpan> = (0..6).map(|t| span(t, t % 2)).collect();
        assert_eq!(steal_count(&spans, 2), 0);
        // Sequential path: everything on slot 0, one worker — never a steal.
        let seq: Vec<TaskSpan> = (0..5).map(|t| span(t, 0)).collect();
        assert_eq!(steal_count(&seq, 1), 0);
        assert_eq!(steal_count(&[], 4), 0);
    }

    #[test]
    fn steal_count_counts_deviations_from_round_robin() {
        let queued = Instant::now();
        let span = |task: usize, slot: usize| TaskSpan {
            task,
            slot,
            queued,
            started: queued,
            finished: queued,
        };
        // 4 tasks, 2 workers; tasks 1 and 3 ran on slot 0 instead of 1.
        let spans = vec![span(0, 0), span(1, 0), span(2, 0), span(3, 0)];
        assert_eq!(steal_count(&spans, 2), 2);
        // Workers are capped by the task count: 2 tasks on 8 slots means
        // round-robin over 2 workers, so slot 1 running task 1 is home.
        let spans = vec![span(0, 0), span(1, 1)];
        assert_eq!(steal_count(&spans, 8), 0);
        let spans = vec![span(0, 1), span(1, 0)];
        assert_eq!(steal_count(&spans, 8), 2);
    }

    #[test]
    fn steal_count_concat_splits_waves_at_task_resets() {
        let queued = Instant::now();
        let span = |task: usize, slot: usize| TaskSpan {
            task,
            slot,
            queued,
            started: queued,
            finished: queued,
        };
        // Two clean round-robin waves of 4 tasks on 2 slots: no steals, and
        // the reset at the second task-0 must not be misread as a deviation.
        let spans = vec![
            span(0, 0),
            span(1, 1),
            span(2, 0),
            span(3, 1),
            span(0, 0),
            span(1, 1),
            span(2, 0),
            span(3, 1),
        ];
        assert_eq!(steal_count_concat(&spans, 2), 0);
        // Second wave fully on slot 0 → tasks 1 and 3 are stolen there.
        let spans = vec![
            span(0, 0),
            span(1, 1),
            span(0, 0),
            span(1, 0),
            span(2, 0),
            span(3, 0),
        ];
        assert_eq!(steal_count_concat(&spans, 2), 2);
        assert_eq!(steal_count_concat(&[], 4), 0);
    }

    #[test]
    fn stragglers_backfill_produces_steals() {
        // One long task 0 plus many short ones on 2 slots: while slot 0 (or
        // whichever slot claims task 0) grinds, the other slot must claim
        // tasks that round-robin would have parked behind the straggler.
        let mut inputs = vec![50u64];
        inputs.extend(std::iter::repeat_n(1u64, 15));
        let (_, times) = run_tasks(2, inputs, |_, ms| {
            std::thread::sleep(Duration::from_millis(ms));
        });
        assert!(
            steal_count(&times.spans, 2) > 0,
            "straggler stage showed no dynamic backfill: {:?}",
            times
                .spans
                .iter()
                .map(|s| (s.task, s.slot))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let inputs = vec![(); 8];
        let (_, times) = run_tasks(4, inputs, |_, ()| {
            std::thread::sleep(Duration::from_millis(2));
        });
        assert!(
            times.total >= Duration::from_millis(8),
            "busy = {:?}",
            times.total
        );
        assert_eq!(times.per_task.len(), 8);
        assert!(times
            .per_task
            .iter()
            .all(|d| *d >= Duration::from_millis(2)));
    }
}
