//! Additional dataset operators beyond the core set used by the joins:
//! outer joins, per-key counting, sorting, sampling, coalescing and
//! key-wise aggregation — the rest of the RDD vocabulary a downstream user
//! expects from the substrate.

use std::collections::HashMap;
use std::hash::Hash;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

impl<K, V> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Left outer hash join: every `(k, v)` is paired with each `(k, w)` of
    /// `other`, or with `None` if the key is absent there.
    pub fn left_outer_join<W>(
        &self,
        name: &str,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Dataset<(K, (V, Option<W>))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let cogrouped = self.cogroup(name, other, partitions);
        cogrouped.flat_map(&format!("{name}/emit"), |(k, (vs, ws))| {
            let mut out = Vec::new();
            for v in vs {
                if ws.is_empty() {
                    out.push((k.clone(), (v.clone(), None)));
                } else {
                    for w in ws {
                        out.push((k.clone(), (v.clone(), Some(w.clone()))));
                    }
                }
            }
            out
        })
    }

    /// Number of records per key (Spark's `countByKey`, as a dataset).
    pub fn count_by_key(&self, name: &str, partitions: usize) -> Dataset<(K, u64)> {
        self.map_values(&format!("{name}/ones"), |_| 1u64)
            .reduce_by_key(name, partitions, |a, b| a + b)
    }

    /// Key-wise aggregation with a zero value, a per-record fold and a
    /// cross-partition combine (Spark's `aggregateByKey`).
    pub fn aggregate_by_key<A, FF, FC>(
        &self,
        name: &str,
        partitions: usize,
        zero: A,
        fold: FF,
        combine: FC,
    ) -> Dataset<(K, A)>
    where
        A: Clone + Send + Sync + 'static,
        FF: Fn(A, &V) -> A + Sync,
        FC: Fn(A, A) -> A + Sync,
    {
        // Map-side fold per partition…
        let folded = self.map_partitions(&format!("{name}/fold"), move |_, part| {
            let mut acc: HashMap<K, A> = HashMap::new();
            for (k, v) in part {
                let entry = acc.remove(k).unwrap_or_else(|| zero.clone());
                acc.insert(k.clone(), fold(entry, v));
            }
            acc.into_iter().collect::<Vec<(K, A)>>()
        });
        // …then a combine-only reduce.
        folded.reduce_by_key(name, partitions, combine)
    }

    /// Globally sorts by key onto a single partition (small results only —
    /// driver-side sorts of join outputs, top-N reports). Recorded as a
    /// full-shuffle stage: every record moves to the driver.
    pub fn sort_by_key(&self, name: &str) -> Dataset<(K, V)>
    where
        K: Ord,
    {
        let start = std::time::Instant::now();
        let mut all = self.collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let records = all.len();
        let out = Dataset::from_partitions(self.cluster().clone(), vec![all]);
        self.cluster()
            .record_driver_stage(name, start, records, records);
        out
    }
}

impl<T> Dataset<T>
where
    T: Clone + Send + Sync + 'static,
{
    /// Merges partitions down to at most `n` without a shuffle (adjacent
    /// partitions are concatenated), Spark's `coalesce`.
    pub fn coalesce(&self, name: &str, n: usize) -> Dataset<T> {
        let n = n.max(1);
        let current = self.num_partitions();
        if current <= n {
            return self.clone();
        }
        let start = std::time::Instant::now();
        let per_target = current.div_ceil(n);
        let merged: Vec<Vec<T>> = (0..n)
            .map(|t| {
                let mut part = Vec::new();
                for idx in (t * per_target)..((t + 1) * per_target).min(current) {
                    part.extend(self.partition(idx).iter().cloned());
                }
                part
            })
            .collect();
        let records: usize = merged.iter().map(Vec::len).sum();
        // Coalescing merges adjacent partitions without a shuffle.
        self.cluster().record_driver_stage(name, start, records, 0);
        Dataset::from_partitions(self.cluster().clone(), merged)
    }

    /// The first `per_partition` records of every partition, gathered on
    /// the driver — a deterministic prefix scan, the cheap sampling pass the
    /// skew estimator ([`crate::skew`]) runs before deciding whether to
    /// split groups. Unlike [`Dataset::sample`] it needs no RNG and touches
    /// at most `per_partition × partitions` records. Recorded as a driver
    /// stage under `name`.
    pub fn sample_prefix(&self, name: &str, per_partition: usize) -> Vec<T> {
        let start = std::time::Instant::now();
        let mut out = Vec::new();
        for part in &self.partitions {
            out.extend(part.iter().take(per_partition).cloned());
        }
        self.cluster()
            .record_driver_stage(name, start, out.len(), 0);
        out
    }

    /// Bernoulli sample with the given per-record probability, seeded
    /// per-partition for determinism.
    pub fn sample(&self, name: &str, fraction: f64, seed: u64) -> Dataset<T> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sample fraction must be a probability"
        );
        self.map_partitions(name, move |idx, part| {
            // cast(partition index — usize → u64 is value-preserving on 64-bit targets)
            let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
            part.iter()
                .filter(|_| rng.gen_bool(fraction))
                .cloned()
                .collect()
        })
    }

    /// Folds every record into an accumulator, then combines across
    /// partitions (Spark's `aggregate`). Driver-side result.
    pub fn aggregate<A, FF, FC>(&self, name: &str, zero: A, fold: FF, combine: FC) -> A
    where
        A: Clone + Send + Sync + 'static,
        FF: Fn(A, &T) -> A + Sync,
        FC: Fn(A, A) -> A,
    {
        let partials =
            self.map_partitions(name, |_, part| vec![part.iter().fold(zero.clone(), &fold)]);
        partials.collect().into_iter().fold(zero, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::dataset::Cluster;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4))
    }

    #[test]
    fn left_outer_join_keeps_unmatched_left_rows() {
        let c = cluster();
        let left = c.parallelize(vec![(1u32, 'a'), (2, 'b'), (2, 'c')], 2);
        let right = c.parallelize(vec![(2u32, 9u8)], 1);
        let mut all = left.left_outer_join("loj", &right, 4).collect();
        all.sort();
        assert_eq!(
            all,
            vec![(1, ('a', None)), (2, ('b', Some(9))), (2, ('c', Some(9))),]
        );
    }

    #[test]
    fn count_by_key_counts() {
        let c = cluster();
        let ds = c.parallelize((0..100u32).map(|n| (n % 3, ())).collect(), 8);
        let mut counts = ds.count_by_key("cbk", 4).collect();
        counts.sort();
        assert_eq!(counts, vec![(0, 34), (1, 33), (2, 33)]);
    }

    #[test]
    fn aggregate_by_key_matches_manual_fold() {
        let c = cluster();
        let ds = c.parallelize((0..50u64).map(|n| ((n % 4) as u32, n)).collect(), 6);
        // Per key: (count, sum).
        let mut got = ds
            .aggregate_by_key(
                "abk",
                4,
                (0u64, 0u64),
                |(c, s), v| (c + 1, s + v),
                |(c1, s1), (c2, s2)| (c1 + c2, s1 + s2),
            )
            .collect();
        got.sort();
        let mut expected: HashMap<u32, (u64, u64)> = HashMap::new();
        for n in 0..50u64 {
            let e = expected.entry((n % 4) as u32).or_insert((0, 0));
            e.0 += 1;
            e.1 += n;
        }
        let mut expected: Vec<(u32, (u64, u64))> = expected.into_iter().collect();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn sort_by_key_orders_globally() {
        let c = cluster();
        let ds = c.parallelize(vec![(3u32, 'c'), (1, 'a'), (2, 'b')], 3);
        let sorted = ds.sort_by_key("sort");
        assert_eq!(sorted.num_partitions(), 1);
        assert_eq!(sorted.collect(), vec![(1, 'a'), (2, 'b'), (3, 'c')]);
    }

    #[test]
    fn coalesce_reduces_partitions_losslessly() {
        let c = cluster();
        let ds = c.parallelize((0..100u32).collect(), 16);
        let co = ds.coalesce("co", 3);
        assert_eq!(co.num_partitions(), 3);
        let mut all = co.collect();
        all.sort();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // Coalescing to more partitions than exist is a no-op.
        assert_eq!(ds.coalesce("co2", 99).num_partitions(), 16);
    }

    #[test]
    fn sample_prefix_takes_partition_heads() {
        let c = cluster();
        let ds = c.parallelize((0..40u32).collect(), 4); // partitions of 10
        let got = ds.sample_prefix("peek", 3);
        assert_eq!(got, vec![0, 1, 2, 10, 11, 12, 20, 21, 22, 30, 31, 32]);
        // Capped by partition size; recorded as a stage.
        assert_eq!(ds.sample_prefix("peek-all", 100).len(), 40);
        assert_eq!(c.metrics().stages_named("peek").len(), 2);
    }

    #[test]
    fn sample_is_deterministic_and_roughly_sized() {
        let c = cluster();
        let ds = c.parallelize((0..10_000u32).collect(), 8);
        let s1 = ds.sample("s", 0.1, 42).collect();
        let s2 = ds.sample("s", 0.1, 42).collect();
        assert_eq!(s1, s2);
        assert!((700..1300).contains(&s1.len()), "sampled {}", s1.len());
        assert!(ds.sample("s0", 0.0, 1).collect().is_empty());
        assert_eq!(ds.sample("s1", 1.0, 1).count(), 10_000);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn sample_rejects_bad_fraction() {
        let c = cluster();
        let _ = c.parallelize(vec![1u32], 1).sample("bad", 1.5, 0);
    }

    #[test]
    fn aggregate_folds_and_combines() {
        let c = cluster();
        let ds = c.parallelize((1..=100u64).collect(), 7);
        let sum = ds.aggregate("agg", 0u64, |acc, n| acc + n, |a, b| a + b);
        assert_eq!(sum, 5050);
        let max = ds.aggregate("max", 0u64, |acc, n| acc.max(*n), std::cmp::Ord::max);
        assert_eq!(max, 100);
    }
}
