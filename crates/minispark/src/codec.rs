//! Compact binary encoding for spill files.
//!
//! Spill runs are written as length-prefixed entries; each entry is a
//! [`Codec`]-encoded `(key, values)` group. The encoding is deliberately
//! simple (fixed-width little-endian integers, length-prefixed sequences):
//! spill files are process-private temporaries, so there is no versioning or
//! cross-platform concern, only round-trip fidelity — which the tests and a
//! property test pin down.

/// A type that can encode itself into a byte buffer and decode itself back.
///
/// `decode` consumes bytes from the front of `input` and must return `None`
/// (leaving `input` in an unspecified state) if the bytes are malformed or
/// truncated.
pub trait Codec: Sized {
    /// Appends the encoded form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

macro_rules! impl_codec_for_int {
    ($($ty:ty),*) => {
        $(
            impl Codec for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }

                fn decode(input: &mut &[u8]) -> Option<Self> {
                    const N: usize = std::mem::size_of::<$ty>();
                    if input.len() < N {
                        return None;
                    }
                    let (head, tail) = input.split_at(N);
                    *input = tail;
                    Some(<$ty>::from_le_bytes(head.try_into().ok()?))
                }
            }
        )*
    };
}

impl_codec_for_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        // cast(usize → u64 is value-preserving — the workspace supports 64-bit targets only)
        (*self as u64).encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        u64::decode(input).and_then(|v| usize::try_from(v).ok())
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = u64::decode(input)?;
        let len = usize::try_from(len).ok()?;
        // Guard against corrupt lengths: each element needs ≥ 1 byte.
        if len > input.len() {
            return None;
        }
        // alloc(decode materializes the owned value — the codec's contract)
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Some(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(u64::decode(input)?).ok()?;
        if input.len() < len {
            return None;
        }
        let (head, tail) = input.split_at(len);
        *input = tail;
        // alloc(decode materializes the owned value — the codec's contract)
        String::from_utf8(head.to_vec()).ok()
    }
}

/// Encodes a value into a fresh buffer (convenience for tests and spills).
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    // alloc(fresh buffer is this convenience helper's whole point)
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value that must consume the entire buffer.
pub fn decode_exact<T: Codec>(mut input: &[u8]) -> Option<T> {
    let value = T::decode(&mut input)?;
    input.is_empty().then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let encoded = encode_to_vec(&value);
        let decoded: T = decode_exact(&encoded).expect("round trip failed");
        assert_eq!(decoded, value);
    }

    #[test]
    fn integers_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(-1i32);
        round_trip(usize::MAX);
    }

    #[test]
    fn composites_round_trip() {
        round_trip((1u32, 2u64));
        round_trip((1u8, 2u16, 3u32));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(true);
        round_trip(String::from("top-k rankings"));
        round_trip(String::new());
        round_trip(vec![(1u64, vec![2u32, 3]), (4, vec![])]);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let encoded = encode_to_vec(&(1u32, 2u64));
        for cut in 0..encoded.len() {
            assert!(
                decode_exact::<(u32, u64)>(&encoded[..cut]).is_none(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn corrupt_length_is_rejected() {
        // A Vec claiming u64::MAX elements.
        let encoded = encode_to_vec(&u64::MAX);
        assert!(decode_exact::<Vec<u32>>(&encoded).is_none());
    }

    #[test]
    fn trailing_bytes_are_rejected_by_decode_exact() {
        let mut encoded = encode_to_vec(&3u32);
        encoded.push(0xFF);
        assert!(decode_exact::<u32>(&encoded).is_none());
    }

    #[test]
    fn invalid_bool_and_option_tags() {
        assert!(decode_exact::<bool>(&[2]).is_none());
        assert!(decode_exact::<Option<u8>>(&[9, 1]).is_none());
    }

    #[test]
    fn decode_advances_the_slice() {
        let mut buf = Vec::new();
        1u16.encode(&mut buf);
        2u16.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(u16::decode(&mut slice), Some(1));
        assert_eq!(u16::decode(&mut slice), Some(2));
        assert!(slice.is_empty());
    }
}
