//! Partitioners — the policy side of a shuffle.
//!
//! A [`Partitioner`] maps keys to target partitions. [`HashPartitioner`] is
//! the default (Spark's `HashPartitioner`); [`CompositePartitioner`] spreads
//! composite `(primary, secondary)` keys so that records sharing a primary
//! key land on *different* partitions — the mechanism §6 of the paper uses to
//! break up oversized posting lists ("we partition by both the item id and
//! the randomly assigned number and increase the number of partitions").

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Maps keys to one of `num_partitions()` target partitions.
pub trait Partitioner<K: ?Sized>: Send + Sync {
    /// The target partition of `key`, in `0..num_partitions()`.
    fn partition(&self, key: &K) -> usize;
    /// The number of target partitions.
    fn num_partitions(&self) -> usize;
}

/// Deterministic hash of a value with the std `DefaultHasher` (SipHash with
/// fixed keys when constructed directly, so results are stable within and
/// across runs of the same binary).
pub(crate) fn stable_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// Reduces a 64-bit hash to a target in `0..n` with Lemire's multiply-shift
/// (`(hash × n) >> 64`), which weighs **all 64 hash bits** equally.
///
/// The previous `hash % n` reduction only consumed the low `log2(n)` bits
/// (exactly, whenever `n` is a power of two — the common small partition
/// counts 2/4/8/16). Any low-bit structure in the hash then maps straight
/// into partition imbalance; multiply-shift folds the high bits in and also
/// replaces the division with a multiply.
pub(crate) fn spread(hash: u64, n: usize) -> usize {
    // cast((hash · n) >> 64 < n ≤ usize::MAX — the reduction is its own bound)
    ((u128::from(hash) * n as u128) >> 64) as usize
}

/// Spark-style hash partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// Creates a partitioner with `partitions ≥ 1` targets.
    pub fn new(partitions: usize) -> Self {
        Self {
            partitions: partitions.max(1),
        }
    }
}

impl<K: Hash + ?Sized> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K) -> usize {
        spread(stable_hash(key), self.partitions)
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }
}

/// Partitions composite `(primary, secondary)` keys by hashing **both**
/// components, so that the sub-partitions of one oversized primary key are
/// distributed across the cluster instead of hammering a single reducer.
///
/// Functionally this equals `HashPartitioner` over the tuple, but it exists
/// as a named type because the repartitioning join (Algorithm 3) is defined
/// in terms of it, and because it lets tests assert the spreading property
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositePartitioner {
    partitions: usize,
}

impl CompositePartitioner {
    /// Creates a composite partitioner with `partitions ≥ 1` targets.
    pub fn new(partitions: usize) -> Self {
        Self {
            partitions: partitions.max(1),
        }
    }
}

impl<K1: Hash, K2: Hash> Partitioner<(K1, K2)> for CompositePartitioner {
    fn partition(&self, key: &(K1, K2)) -> usize {
        let mut hasher = DefaultHasher::new();
        key.0.hash(&mut hasher);
        key.1.hash(&mut hasher);
        spread(hasher.finish(), self.partitions)
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }
}

impl<K1: Hash, K2: Hash, K3: Hash> Partitioner<(K1, K2, K3)> for CompositePartitioner {
    fn partition(&self, key: &(K1, K2, K3)) -> usize {
        let mut hasher = DefaultHasher::new();
        key.0.hash(&mut hasher);
        key.1.hash(&mut hasher);
        key.2.hash(&mut hasher);
        spread(hasher.finish(), self.partitions)
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for key in 0u64..1000 {
            let target = p.partition(&key);
            assert!(target < 7);
            assert_eq!(target, p.partition(&key));
        }
    }

    #[test]
    fn hash_partitioner_clamps_zero_partitions() {
        let p = HashPartitioner::new(0);
        assert_eq!(Partitioner::<u64>::num_partitions(&p), 1);
        assert_eq!(p.partition(&123u64), 0);
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner::new(16);
        let used: HashSet<usize> = (0u64..10_000).map(|k| p.partition(&k)).collect();
        assert_eq!(used.len(), 16, "10k keys should hit all 16 partitions");
    }

    #[test]
    fn composite_partitioner_spreads_same_primary_key() {
        // The whole point: one hot primary key must land on many partitions
        // when paired with different secondary keys.
        let p = CompositePartitioner::new(16);
        let hot_item = 42u32;
        let used: HashSet<usize> = (0u32..200)
            .map(|sub| p.partition(&(hot_item, sub)))
            .collect();
        assert!(
            used.len() >= 12,
            "hot key only reached {} partitions",
            used.len()
        );
    }

    #[test]
    fn composite_partitioner_is_deterministic() {
        let p = CompositePartitioner::new(8);
        assert_eq!(p.partition(&(1u32, 2u32)), p.partition(&(1u32, 2u32)));
    }

    #[test]
    fn spread_stays_in_range_and_uses_high_bits() {
        for n in [1usize, 2, 3, 7, 8, 16, 1000] {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..1000 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                assert!(spread(state, n) < n);
            }
        }
        // Multiply-shift is driven by the *high* bits: two hashes differing
        // only in low bits map to the same target, while flipping a high bit
        // moves the target — the opposite of `% n`, which ignores high bits.
        assert_eq!(spread(1 << 20, 16), spread(2 << 20, 16));
        assert_ne!(spread(0, 16), spread(u64::MAX, 16));
    }

    /// xorshift64* — a tiny deterministic RNG for the distribution tests
    /// (minispark tests must not depend on the datagen crate — layering).
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn next_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Inverse-CDF Zipf sampler over `1..=vocab` with exponent `s`.
    struct Zipf {
        cdf: Vec<f64>,
    }

    impl Zipf {
        fn new(vocab: usize, s: f64) -> Self {
            let mut cdf = Vec::with_capacity(vocab);
            let mut acc = 0.0;
            for rank in 1..=vocab {
                acc += 1.0 / (rank as f64).powf(s);
                cdf.push(acc);
            }
            let total = acc;
            for c in &mut cdf {
                *c /= total;
            }
            Self { cdf }
        }

        fn sample(&self, rng: &mut XorShift) -> u64 {
            let u = rng.next_f64();
            (self.cdf.partition_point(|&c| c < u) + 1) as u64
        }
    }

    #[test]
    fn hash_partitioner_chi_squared_over_distinct_keys() {
        // Regression for the `hash % n` reduction: with a power-of-two
        // partition count only the low hash bits decided the target. The
        // multiply-shift reduction must keep sequential keys statistically
        // uniform across partitions.
        let n = 16usize;
        let p = HashPartitioner::new(n);
        let draws = 20_000u64;
        let mut counts = vec![0f64; n];
        for key in 0..draws {
            counts[p.partition(&key)] += 1.0;
        }
        let expected = draws as f64 / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|c| (c - expected) * (c - expected) / expected)
            .sum();
        // χ²₀.₉₉₉ at 15 degrees of freedom ≈ 37.7 — a deterministic test,
        // so this either always passes or flags a real distribution defect.
        assert!(chi2 < 37.7, "χ² = {chi2:.1} over {n} partitions");
    }

    #[test]
    fn hash_partitioner_covers_all_partitions_under_zipf_keys() {
        // Zipf-weighted key stream (the shape the joins actually shuffle):
        // for n ≫ partitions every partition must receive records, and the
        // partition weights must follow the key weights, not hash artifacts.
        for parts in [4usize, 7, 16] {
            let p = HashPartitioner::new(parts);
            let zipf = Zipf::new(1000, 1.1);
            let mut rng = XorShift(0x5EED_CAFE);
            let mut counts = vec![0usize; parts];
            for _ in 0..50_000 {
                counts[p.partition(&zipf.sample(&mut rng))] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "empty partition with {parts} targets: {counts:?}"
            );
        }
    }

    #[test]
    fn composite_partitioner_chi_squared_over_hot_key_subs() {
        // The CL-P spread path: one hot primary key, sequential sub-ids.
        // Sub-partitions of the hot key must land uniformly.
        let n = 16usize;
        let p = CompositePartitioner::new(n);
        let subs = 8_000u32;
        let mut counts = vec![0f64; n];
        for sub in 0..subs {
            counts[p.partition(&(42u64, sub))] += 1.0;
        }
        let expected = f64::from(subs) / n as f64;
        let chi2: f64 = counts
            .iter()
            .map(|c| (c - expected) * (c - expected) / expected)
            .sum();
        assert!(chi2 < 37.7, "χ² = {chi2:.1} over {n} partitions");
    }
}
