//! Partitioners — the policy side of a shuffle.
//!
//! A [`Partitioner`] maps keys to target partitions. [`HashPartitioner`] is
//! the default (Spark's `HashPartitioner`); [`CompositePartitioner`] spreads
//! composite `(primary, secondary)` keys so that records sharing a primary
//! key land on *different* partitions — the mechanism §6 of the paper uses to
//! break up oversized posting lists ("we partition by both the item id and
//! the randomly assigned number and increase the number of partitions").

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Maps keys to one of `num_partitions()` target partitions.
pub trait Partitioner<K: ?Sized>: Send + Sync {
    /// The target partition of `key`, in `0..num_partitions()`.
    fn partition(&self, key: &K) -> usize;
    /// The number of target partitions.
    fn num_partitions(&self) -> usize;
}

/// Deterministic hash of a value with the std `DefaultHasher` (SipHash with
/// fixed keys when constructed directly, so results are stable within and
/// across runs of the same binary).
pub(crate) fn stable_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// Spark-style hash partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    partitions: usize,
}

impl HashPartitioner {
    /// Creates a partitioner with `partitions ≥ 1` targets.
    pub fn new(partitions: usize) -> Self {
        Self {
            partitions: partitions.max(1),
        }
    }
}

impl<K: Hash + ?Sized> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K) -> usize {
        (stable_hash(key) % self.partitions as u64) as usize
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }
}

/// Partitions composite `(primary, secondary)` keys by hashing **both**
/// components, so that the sub-partitions of one oversized primary key are
/// distributed across the cluster instead of hammering a single reducer.
///
/// Functionally this equals `HashPartitioner` over the tuple, but it exists
/// as a named type because the repartitioning join (Algorithm 3) is defined
/// in terms of it, and because it lets tests assert the spreading property
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositePartitioner {
    partitions: usize,
}

impl CompositePartitioner {
    /// Creates a composite partitioner with `partitions ≥ 1` targets.
    pub fn new(partitions: usize) -> Self {
        Self {
            partitions: partitions.max(1),
        }
    }
}

impl<K1: Hash, K2: Hash> Partitioner<(K1, K2)> for CompositePartitioner {
    fn partition(&self, key: &(K1, K2)) -> usize {
        let mut hasher = DefaultHasher::new();
        key.0.hash(&mut hasher);
        key.1.hash(&mut hasher);
        (hasher.finish() % self.partitions as u64) as usize
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }
}

impl<K1: Hash, K2: Hash, K3: Hash> Partitioner<(K1, K2, K3)> for CompositePartitioner {
    fn partition(&self, key: &(K1, K2, K3)) -> usize {
        let mut hasher = DefaultHasher::new();
        key.0.hash(&mut hasher);
        key.1.hash(&mut hasher);
        key.2.hash(&mut hasher);
        (hasher.finish() % self.partitions as u64) as usize
    }

    fn num_partitions(&self) -> usize {
        self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        let p = HashPartitioner::new(7);
        for key in 0u64..1000 {
            let target = p.partition(&key);
            assert!(target < 7);
            assert_eq!(target, p.partition(&key));
        }
    }

    #[test]
    fn hash_partitioner_clamps_zero_partitions() {
        let p = HashPartitioner::new(0);
        assert_eq!(Partitioner::<u64>::num_partitions(&p), 1);
        assert_eq!(p.partition(&123u64), 0);
    }

    #[test]
    fn hash_partitioner_spreads_keys() {
        let p = HashPartitioner::new(16);
        let used: HashSet<usize> = (0u64..10_000).map(|k| p.partition(&k)).collect();
        assert_eq!(used.len(), 16, "10k keys should hit all 16 partitions");
    }

    #[test]
    fn composite_partitioner_spreads_same_primary_key() {
        // The whole point: one hot primary key must land on many partitions
        // when paired with different secondary keys.
        let p = CompositePartitioner::new(16);
        let hot_item = 42u32;
        let used: HashSet<usize> = (0u32..200)
            .map(|sub| p.partition(&(hot_item, sub)))
            .collect();
        assert!(
            used.len() >= 12,
            "hot key only reached {} partitions",
            used.len()
        );
    }

    #[test]
    fn composite_partitioner_is_deterministic() {
        let p = CompositePartitioner::new(8);
        assert_eq!(p.partition(&(1u32, 2u32)), p.partition(&(1u32, 2u32)));
    }
}
