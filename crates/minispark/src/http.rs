//! Minimal zero-dependency blocking HTTP server for the live metrics plane.
//!
//! [`LiveServer`] binds a loopback TCP listener and serves two read-only
//! endpoints while a job runs:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   current [`TelemetrySnapshot`](crate::telemetry::TelemetrySnapshot);
//! * `GET /snapshot` — the `minispark/telemetry-snapshot/v1` JSON document.
//!
//! One connection is handled at a time (a scrape is a few kilobytes; a
//! metrics endpoint does not need concurrency) and every request gets a
//! fresh snapshot, so the server holds no locks while the engine records.
//!
//! The registry being served is held behind a swappable [`TelemetrySource`]:
//! a cluster-owned server serves its own registry for its whole lifetime,
//! while a long-lived server (the bench harness's `--live-port`) re-points
//! the source at each new run's cluster without rebinding the port — which
//! also sidesteps `TIME_WAIT` rebind failures, since `std` exposes no
//! `SO_REUSEADDR`.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::telemetry::TelemetryRegistry;

/// Swappable handle to the registry a [`LiveServer`] serves. Cloning shares
/// the slot; [`TelemetrySource::set`] re-points every clone at once.
#[derive(Clone)]
pub struct TelemetrySource {
    registry: Arc<Mutex<TelemetryRegistry>>,
}

impl TelemetrySource {
    /// A source serving `registry` until re-pointed.
    pub fn new(registry: TelemetryRegistry) -> Self {
        Self {
            registry: Arc::new(Mutex::new(registry)),
        }
    }

    /// Re-points the source (and every server holding a clone) at
    /// `registry`.
    pub fn set(&self, registry: TelemetryRegistry) {
        *self.registry.lock() = registry;
    }

    fn current(&self) -> TelemetryRegistry {
        self.registry.lock().clone()
    }
}

impl std::fmt::Debug for TelemetrySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySource")
            .field("enabled", &self.current().is_enabled())
            .finish()
    }
}

/// The blocking metrics endpoint. Binds on construction, serves on a
/// background thread, shuts down (and joins) on drop.
pub struct LiveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl LiveServer {
    /// Binds `127.0.0.1:port` (`port = 0` picks an ephemeral port, exposed
    /// via [`LiveServer::addr`]) and starts serving `source`.
    ///
    /// # Errors
    ///
    /// Returns the bind error (port in use, permission) — callers treat a
    /// failed endpoint as non-fatal and run without one.
    pub fn start(port: u16, source: TelemetrySource) -> std::io::Result<Self> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("minispark-live".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // errors(a failed scrape is the scraper's problem; keep serving)
                    let _ = handle_connection(stream, &source);
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with `port = 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // errors(self-connection only unblocks the accept loop; on failure the timeout covers us)
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.handle.take() {
            // errors(Err means the server thread panicked; Drop must not double-panic)
            let _ = handle.join();
        }
    }
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, source: &TelemetrySource) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (or the 4 KiB cap — both
    // endpoints are body-less GETs, anything longer is not for us).
    let mut buf = [0u8; 4096];
    let mut len = 0usize;
    loop {
        if len == buf.len() {
            break;
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    if method != "GET" {
        return respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n",
        );
    }
    match path {
        "/metrics" => {
            let body = source.current().snapshot().prometheus();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/snapshot" => {
            let body = source.current().snapshot().to_json().render();
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "try /metrics or /snapshot\n",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_snapshot() {
        let reg = TelemetryRegistry::enabled();
        reg.counter("up_total").add(3);
        let server =
            LiveServer::start(0, TelemetrySource::new(reg.clone())).expect("ephemeral bind");
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("# TYPE up_total counter"), "{body}");
        assert!(body.contains("up_total 3"), "{body}");

        reg.counter("up_total").add(2);
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("up_total 5"), "scrapes are live: {body}");

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let doc = crate::json::Json::parse(&body).expect("valid JSON body");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("minispark/telemetry-snapshot/v1")
        );

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn source_can_be_repointed_between_runs() {
        let first = TelemetryRegistry::enabled();
        first.counter("runs_total").add(1);
        let source = TelemetrySource::new(first);
        let server = LiveServer::start(0, source.clone()).expect("ephemeral bind");

        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("runs_total 1"), "{body}");

        let second = TelemetryRegistry::enabled();
        second.counter("runs_total").add(42);
        source.set(second);
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("runs_total 42"), "{body}");
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let server = LiveServer::start(0, TelemetrySource::new(TelemetryRegistry::disabled()))
            .expect("ephemeral bind");
        let addr = server.addr();
        drop(server);
        // The port is released: either connect fails or the read sees EOF
        // with no HTTP response.
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            let mut out = String::new();
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = stream.read_to_string(&mut out);
            assert!(!out.contains("HTTP/1.1 200"), "server still answering");
        }
    }
}
