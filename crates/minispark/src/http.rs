//! Minimal zero-dependency blocking HTTP server: a small router with a
//! fixed-size worker pool.
//!
//! Two server frontends share the plumbing:
//!
//! * [`HttpServer`] — the general router: `GET`/`POST`/`DELETE` with
//!   `Content-Length` body reads, `{param}` path captures and query-string
//!   access, behind a fixed pool of worker threads so one slow client can
//!   never serialize all traffic. The ranking-similarity serving layer
//!   (`topk_simjoin::serving`) runs on it.
//! * [`LiveServer`] — the read-only live metrics plane used by the bench
//!   harness: `GET /metrics` (Prometheus text exposition 0.0.4) and
//!   `GET /snapshot` (the `minispark/telemetry-snapshot/v1` JSON document),
//!   served from a swappable [`TelemetrySource`].
//!
//! Request reading is strict about malformed input: a head that exceeds the
//! 4 KiB cap without terminating answers `431`, a head that ends (EOF or
//! read timeout) before `\r\n\r\n` or fails to parse answers `400`, and a
//! declared `Content-Length` beyond the body cap answers `413` — the server
//! never routes a request parsed from a truncated head.
//!
//! The registry served by [`LiveServer`] is held behind a swappable
//! [`TelemetrySource`]: a cluster-owned server serves its own registry for
//! its whole lifetime, while a long-lived server (the bench harness's
//! `--live-port`) re-points the source at each new run's cluster without
//! rebinding the port — which also sidesteps `TIME_WAIT` rebind failures,
//! since `std` exposes no `SO_REUSEADDR`.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use parking_lot::Mutex;

use crate::json::Json;
use crate::telemetry::TelemetryRegistry;

/// Request heads (request line + headers) beyond this never route: the
/// server answers `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 4096;

/// Declared request bodies beyond this answer `413 Content Too Large`.
/// Large enough for a few thousand upserted rankings per batch, small
/// enough that a hostile `Content-Length` cannot balloon a worker.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Per-connection socket timeout: a client that stalls longer mid-request
/// gets `400`/is dropped instead of pinning a worker forever.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

// ---------------------------------------------------------------------------
// Request / Response
// ---------------------------------------------------------------------------

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    /// `{param}` captures, filled in by the router on match.
    params: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    /// The request method (`GET`, `POST`, `DELETE`, …), uppercase as sent.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The request path without the query string.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// First query-string value for `key` (`?theta=0.2&n=5`).
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A `{param}` path capture by name (see [`Router::route`]).
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The raw request body (empty unless the client sent `Content-Length`).
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// One HTTP response: status, content type, body.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    content_type: String,
    body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain".to_string(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response rendering `doc`.
    pub fn json(status: u16, doc: &Json) -> Self {
        Self {
            status,
            content_type: "application/json".to_string(),
            body: doc.render().into_bytes(),
        }
    }

    /// A response with an explicit content type (e.g. the Prometheus text
    /// exposition's versioned `text/plain`).
    pub fn with_content_type(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The response body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Content Too Large",
            422 => "Unprocessable Content",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

enum Segment {
    Literal(String),
    Param(String),
}

struct Route {
    method: String,
    segments: Vec<Segment>,
    handler: Handler,
}

/// Method + path-pattern dispatch table.
///
/// Patterns are `/`-separated literals with `{name}` capture segments:
/// `/rankings/{id}` matches `/rankings/42` and exposes `id = "42"` via
/// [`Request::param`]. Unknown paths answer `404`; a known path hit with
/// the wrong method answers `405`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` for `method` + `pattern`.
    pub fn route(
        &mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                if let Some(name) = s.strip_prefix('{').and_then(|s| s.strip_suffix('}')) {
                    Segment::Param(name.to_string())
                } else {
                    Segment::Literal(s.to_string())
                }
            })
            .collect();
        self.routes.push(Route {
            method: method.to_uppercase(),
            segments,
            handler: Arc::new(handler),
        });
    }

    /// Matches a path against a route's segments, returning captures.
    fn match_segments(route: &Route, path: &str) -> Option<Vec<(String, String)>> {
        let parts: Vec<&str> = path
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        if parts.len() != route.segments.len() {
            return None;
        }
        let mut params = Vec::new();
        for (seg, part) in route.segments.iter().zip(&parts) {
            match seg {
                Segment::Literal(lit) => {
                    if lit != part {
                        return None;
                    }
                }
                Segment::Param(name) => params.push((name.clone(), (*part).to_string())),
            }
        }
        Some(params)
    }

    /// Routes one request: fills `{param}` captures and runs the handler;
    /// `405` when only the method mismatches, `404` otherwise.
    pub fn dispatch(&self, request: &mut Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            let Some(params) = Self::match_segments(route, &request.path) else {
                continue;
            };
            if route.method != request.method {
                path_matched = true;
                continue;
            }
            request.params = params;
            return (route.handler)(request);
        }
        if path_matched {
            Response::text(405, "method not allowed for this path\n")
        } else {
            Response::text(404, "no such endpoint\n")
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Request reading
// ---------------------------------------------------------------------------

/// Why a connection could not produce a routable request.
enum ReadFailure {
    /// The head never terminated within [`MAX_HEAD_BYTES`] → `431`.
    HeadTooLarge,
    /// EOF/timeout mid-head, or the head failed to parse → `400`.
    Malformed(&'static str),
    /// Declared `Content-Length` beyond [`MAX_BODY_BYTES`] → `413`.
    BodyTooLarge,
    /// The client connected and went away without sending anything; no
    /// response can reach it, drop silently.
    Disconnected,
}

/// Reads and parses one request. Never routes a truncated head: anything
/// short of a complete, well-formed `head + declared body` is a
/// [`ReadFailure`].
fn read_request(stream: &mut TcpStream) -> Result<Request, ReadFailure> {
    let mut buf = vec![0u8; MAX_HEAD_BYTES];
    let mut len = 0usize;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf[..len]) {
            break pos;
        }
        if len == buf.len() {
            return Err(ReadFailure::HeadTooLarge);
        }
        match stream.read(&mut buf[len..]) {
            Ok(0) if len == 0 => return Err(ReadFailure::Disconnected),
            Ok(0) => return Err(ReadFailure::Malformed("connection closed mid-head")),
            Ok(n) => len += n,
            Err(_) if len == 0 => return Err(ReadFailure::Disconnected),
            Err(_) => return Err(ReadFailure::Malformed("read failed mid-head")),
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadFailure::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadFailure::Malformed("bad request line"));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadFailure::Malformed("bad request line"));
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(ReadFailure::Malformed("bad method"));
    }
    if !target.starts_with('/') {
        return Err(ReadFailure::Malformed("bad request target"));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ReadFailure::Malformed("bad Content-Length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadFailure::BodyTooLarge);
    }

    // Body: bytes already read past the head, then the remainder exactly.
    let mut body = buf[head_end + 4..len].to_vec();
    if body.len() > content_length {
        return Err(ReadFailure::Malformed("body longer than Content-Length"));
    }
    let already = body.len();
    body.resize(content_length, 0);
    if content_length > already && stream.read_exact(&mut body[already..]).is_err() {
        return Err(ReadFailure::Malformed("connection closed mid-body"));
    }

    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_string
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
        params: Vec::new(),
        body,
    })
}

/// Position of `\r\n\r\n` in `buf`, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, router: &Router) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let response = match read_request(&mut stream) {
        Ok(mut request) => router.dispatch(&mut request),
        Err(ReadFailure::HeadTooLarge) => Response::text(431, "request head exceeds 4 KiB\n"),
        Err(ReadFailure::BodyTooLarge) => Response::text(413, "request body too large\n"),
        Err(ReadFailure::Malformed(why)) => Response::text(400, format!("bad request: {why}\n")),
        Err(ReadFailure::Disconnected) => return Ok(()),
    };
    response.write_to(&mut stream)
}

// ---------------------------------------------------------------------------
// HttpServer: acceptor + fixed worker pool
// ---------------------------------------------------------------------------

/// A blocking HTTP server: one acceptor thread feeding a fixed-size pool of
/// worker threads over a channel. Binds on construction, serves until drop
/// (which joins every thread).
///
/// The pool is the concurrency cap: `workers` requests are in flight at
/// most, further connections queue in the channel (and the listen backlog)
/// — so a slow or stalled client occupies one worker, not the server.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `127.0.0.1:port` (`port = 0` picks an ephemeral port, exposed
    /// via [`HttpServer::addr`]) and starts `workers` worker threads
    /// (minimum 1) serving `router`.
    ///
    /// # Errors
    ///
    /// Returns the bind error (port in use, permission) — callers treat a
    /// failed endpoint as non-fatal and run without one.
    pub fn start(port: u16, router: Router, workers: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));

        let mut worker_handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let receiver = Arc::clone(&receiver);
            let router = Arc::clone(&router);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("minispark-http-{i}"))
                    .spawn(move || loop {
                        // locks(one idle worker blocks in recv while holding the receiver mutex — the guard IS the queue discipline, not contention)
                        let next = receiver.lock().recv();
                        match next {
                            Ok(stream) => {
                                // errors(a failed request/response is the client's problem; the worker keeps serving)
                                let _ = handle_connection(stream, &router);
                            }
                            // Acceptor gone: the server is shutting down.
                            Err(_) => break,
                        }
                    })?,
            );
        }

        let thread_stop = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("minispark-http-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                // Dropping the sender here disconnects every worker's recv.
            })?;

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (useful with `port = 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // errors(self-connection only unblocks the accept loop; on failure the timeout covers us)
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.acceptor.take() {
            // errors(Err means the acceptor thread panicked; Drop must not double-panic)
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            // errors(Err means a worker thread panicked; Drop must not double-panic)
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// LiveServer: the read-only metrics plane on top of the router
// ---------------------------------------------------------------------------

/// Swappable handle to the registry a [`LiveServer`] serves. Cloning shares
/// the slot; [`TelemetrySource::set`] re-points every clone at once.
#[derive(Clone)]
pub struct TelemetrySource {
    registry: Arc<Mutex<TelemetryRegistry>>,
}

impl TelemetrySource {
    /// A source serving `registry` until re-pointed.
    pub fn new(registry: TelemetryRegistry) -> Self {
        Self {
            registry: Arc::new(Mutex::new(registry)),
        }
    }

    /// Re-points the source (and every server holding a clone) at
    /// `registry`.
    pub fn set(&self, registry: TelemetryRegistry) {
        *self.registry.lock() = registry;
    }

    fn current(&self) -> TelemetryRegistry {
        self.registry.lock().clone()
    }
}

impl std::fmt::Debug for TelemetrySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySource")
            .field("enabled", &self.current().is_enabled())
            .finish()
    }
}

/// The blocking metrics endpoint. Binds on construction, serves on
/// background threads, shuts down (and joins) on drop.
pub struct LiveServer {
    inner: HttpServer,
}

impl LiveServer {
    /// Binds `127.0.0.1:port` (`port = 0` picks an ephemeral port, exposed
    /// via [`LiveServer::addr`]) and starts serving `source`.
    ///
    /// # Errors
    ///
    /// Returns the bind error (port in use, permission) — callers treat a
    /// failed endpoint as non-fatal and run without one.
    pub fn start(port: u16, source: TelemetrySource) -> std::io::Result<Self> {
        let mut router = Router::new();
        let metrics_source = source.clone();
        router.route("GET", "/metrics", move |_| {
            Response::with_content_type(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                metrics_source.current().snapshot().prometheus(),
            )
        });
        router.route("GET", "/snapshot", move |_| {
            Response::json(200, &source.current().snapshot().to_json())
        });
        // Two workers: a scrape is a few kilobytes, but a stalled scraper
        // must not freeze the plane for the next one.
        let inner = HttpServer::start(port, router, 2)?;
        Ok(Self { inner })
    }

    /// The bound address (useful with `port = 0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }
}

impl std::fmt::Debug for LiveServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveServer")
            .field("addr", &self.addr())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let raw = raw_request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"));
        split_response(&raw)
    }

    fn raw_request(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        response
    }

    fn split_response(response: &str) -> (String, String) {
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has a head/body split");
        (head.to_string(), body.to_string())
    }

    fn echo_router() -> Router {
        let mut router = Router::new();
        router.route("GET", "/ping", |_| Response::text(200, "pong\n"));
        router.route("POST", "/echo", |req: &Request| {
            Response::with_content_type(200, "application/octet-stream", req.body().to_vec())
        });
        router.route("DELETE", "/items/{id}", |req: &Request| {
            Response::text(200, format!("deleted {}\n", req.param("id").unwrap_or("?")))
        });
        router.route("GET", "/search", |req: &Request| {
            Response::text(
                200,
                format!(
                    "q={} n={}\n",
                    req.query("q").unwrap_or(""),
                    req.query("n").unwrap_or("-")
                ),
            )
        });
        router
    }

    #[test]
    fn serves_metrics_and_snapshot() {
        let reg = TelemetryRegistry::enabled();
        reg.counter("up_total").add(3);
        let server =
            LiveServer::start(0, TelemetrySource::new(reg.clone())).expect("ephemeral bind");
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("# TYPE up_total counter"), "{body}");
        assert!(body.contains("up_total 3"), "{body}");

        reg.counter("up_total").add(2);
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("up_total 5"), "scrapes are live: {body}");

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let doc = crate::json::Json::parse(&body).expect("valid JSON body");
        assert_eq!(
            doc.get("schema").and_then(crate::json::Json::as_str),
            Some("minispark/telemetry-snapshot/v1")
        );

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Known path, wrong method.
        let raw = raw_request(addr, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    }

    #[test]
    fn source_can_be_repointed_between_runs() {
        let first = TelemetryRegistry::enabled();
        first.counter("runs_total").add(1);
        let source = TelemetrySource::new(first);
        let server = LiveServer::start(0, source.clone()).expect("ephemeral bind");

        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("runs_total 1"), "{body}");

        let second = TelemetryRegistry::enabled();
        second.counter("runs_total").add(42);
        source.set(second);
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("runs_total 42"), "{body}");
    }

    #[test]
    fn drop_shuts_the_listener_down() {
        let server = LiveServer::start(0, TelemetrySource::new(TelemetryRegistry::disabled()))
            .expect("ephemeral bind");
        let addr = server.addr();
        drop(server);
        // The port is released: either connect fails or the read sees EOF
        // with no HTTP response.
        if let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            let mut out = String::new();
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = stream.read_to_string(&mut out);
            assert!(!out.contains("HTTP/1.1 200"), "server still answering");
        }
    }

    #[test]
    fn post_bodies_round_trip_and_params_capture() {
        let server = HttpServer::start(0, echo_router(), 2).expect("ephemeral bind");
        let addr = server.addr();

        let body = "a ranking payload";
        let raw = raw_request(
            addr,
            &format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
        let (head, got) = split_response(&raw);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(got, body);

        let raw = raw_request(addr, "DELETE /items/42 HTTP/1.1\r\nHost: x\r\n\r\n");
        let (head, got) = split_response(&raw);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(got, "deleted 42\n");

        let (head, got) = get(addr, "/search?q=abc&n=5");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(got, "q=abc n=5\n");

        // Missing query keys are None, empty query strings parse.
        let (_, got) = get(addr, "/search");
        assert_eq!(got, "q= n=-\n");
    }

    #[test]
    fn oversized_head_is_431_not_misrouted() {
        // Regression: the old reader parsed whatever fit in its 4 KiB
        // buffer, routing a request from a *truncated* head. A head that
        // never terminates within the cap must answer 431.
        let server = HttpServer::start(0, echo_router(), 1).expect("ephemeral bind");
        let huge = format!(
            "GET /ping HTTP/1.1\r\nHost: x\r\nX-Padding: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        // The server answers (and closes) as soon as the cap is exceeded —
        // possibly before the client finishes writing — so both the write
        // and the read tail are best-effort here.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let _ = stream.write_all(huge.as_bytes());
        let mut out = Vec::new();
        let mut chunk = [0u8; 1024];
        while let Ok(n) = stream.read(&mut chunk) {
            if n == 0 {
                break;
            }
            out.extend_from_slice(&chunk[..n]);
        }
        let raw = String::from_utf8_lossy(&out);
        assert!(raw.starts_with("HTTP/1.1 431"), "{raw}");
    }

    #[test]
    fn garbage_and_truncated_requests_are_400() {
        let server = HttpServer::start(0, echo_router(), 1).expect("ephemeral bind");
        let addr = server.addr();

        // Garbage bytes: no valid request line.
        let raw = raw_request(addr, "\x01\x02\x03garbage\r\n\r\n");
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        // A head cut off mid-line (EOF before \r\n\r\n).
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nHost: trunca")
            .expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown write half");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");

        // Bad Content-Length.
        let raw = raw_request(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
        );
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

        // An empty connection (connect, close) gets no response and, more
        // importantly, does not wedge the worker for the next client.
        drop(TcpStream::connect(addr).expect("connect"));
        let (head, _) = get(addr, "/ping");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn oversized_body_is_413() {
        let server = HttpServer::start(0, echo_router(), 1).expect("ephemeral bind");
        let raw = raw_request(
            server.addr(),
            &format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            ),
        );
        assert!(raw.starts_with("HTTP/1.1 413"), "{raw}");
    }

    #[test]
    fn slow_client_does_not_serialize_the_pool() {
        let server = HttpServer::start(0, echo_router(), 2).expect("ephemeral bind");
        let addr = server.addr();
        // A stalled client: connects, sends half a head, never finishes.
        let mut stalled = TcpStream::connect(addr).expect("connect");
        stalled
            .write_all(b"GET /ping HTTP/1.1\r\nHost:")
            .expect("write partial head");
        // With 2 workers the second one must answer immediately.
        let start = std::time::Instant::now();
        let (head, body) = get(addr, "/ping");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "pong\n");
        assert!(
            start.elapsed() < IO_TIMEOUT,
            "fast client waited on the stalled one: {:?}",
            start.elapsed()
        );
    }
}
