//! [`Cluster`] and [`Dataset`]: the engine's RDD analogue.
//!
//! A [`Dataset<T>`] is an immutable collection split into partitions.
//! Transformations are **eager** (each call runs one stage on the cluster's
//! bounded task pool and records metrics) but otherwise mirror the RDD API:
//! narrow transformations here, key-based wide transformations in
//! [`crate::pair`].

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use crate::broadcast::Broadcast;
use crate::config::ClusterConfig;
use crate::executor::{run_stage_tasks, steal_count, TaskSpan, TaskTimes};
use crate::http::{LiveServer, TelemetrySource};
use crate::json::Json;
use crate::metrics::{MetricsRegistry, MetricsReport, StageMetrics};
use crate::telemetry::{EngineTelemetry, Heartbeat, TelemetryRegistry};
use crate::trace::TraceCollector;

pub(crate) struct ClusterInner {
    pub(crate) config: ClusterConfig,
    pub(crate) metrics: MetricsRegistry,
    pub(crate) trace: TraceCollector,
    pub(crate) telemetry: TelemetryRegistry,
    pub(crate) engine: EngineTelemetry,
    pub(crate) heartbeat: Option<Heartbeat>,
    pub(crate) server: Option<LiveServer>,
}

/// Handle to the simulated cluster: owns the configuration and the metrics
/// registry. Cheap to clone (it is an `Arc` handle), like a `SparkContext`
/// reference.
#[derive(Clone)]
pub struct Cluster {
    pub(crate) inner: Arc<ClusterInner>,
}

impl Cluster {
    /// Boots a cluster with the given configuration. Tracing is disabled
    /// (the collector is a no-op); use [`Cluster::with_trace`] to observe a
    /// run.
    pub fn new(config: ClusterConfig) -> Self {
        Self::with_trace(config, TraceCollector::disabled())
    }

    /// Boots a cluster whose stages report into `trace` (pass
    /// [`TraceCollector::enabled`] to record per-task spans, phase spans and
    /// shuffle/spill events).
    pub fn with_trace(config: ClusterConfig, trace: TraceCollector) -> Self {
        let telemetry = if config.telemetry {
            TelemetryRegistry::enabled()
        } else {
            TelemetryRegistry::disabled()
        };
        let engine = EngineTelemetry::register(&telemetry);
        let heartbeat = config
            .heartbeat_interval
            .map(|interval| Heartbeat::start(telemetry.clone(), interval));
        let server = config.live_port.and_then(|port| {
            match LiveServer::start(port, TelemetrySource::new(telemetry.clone())) {
                Ok(server) => Some(server),
                Err(err) => {
                    // A dead endpoint is a lost observer, not a lost run.
                    eprintln!("minispark: live endpoint bind on port {port} failed: {err}");
                    None
                }
            }
        });
        Self {
            inner: Arc::new(ClusterInner {
                config,
                metrics: MetricsRegistry::default(),
                trace,
                telemetry,
                engine,
                heartbeat,
                server,
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// The cluster's live telemetry registry (disabled — a no-op — unless
    /// the configuration opted in via [`ClusterConfig::with_telemetry`],
    /// [`ClusterConfig::with_heartbeat`] or [`ClusterConfig::with_live_port`]).
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.inner.telemetry
    }

    /// Address of the live `/metrics` endpoint, when one is serving (set
    /// [`ClusterConfig::with_live_port`]; port 0 binds an ephemeral port and
    /// this reports the one chosen).
    pub fn live_addr(&self) -> Option<SocketAddr> {
        self.inner.server.as_ref().map(LiveServer::addr)
    }

    /// The `minispark/heartbeat/v1` time series collected so far (`None`
    /// unless [`ClusterConfig::with_heartbeat`] started a sampler).
    pub fn heartbeat_document(&self) -> Option<Json> {
        self.inner.heartbeat.as_ref().map(Heartbeat::document)
    }

    /// The cluster's trace collector (a no-op unless the cluster was built
    /// with [`Cluster::with_trace`]).
    pub fn trace(&self) -> &TraceCollector {
        &self.inner.trace
    }

    /// Snapshot of all stage metrics recorded so far. The report's simulated
    /// wall column uses this cluster's slot count.
    pub fn metrics(&self) -> MetricsReport {
        let mut report = self.inner.metrics.report();
        report.slots = self.inner.config.task_slots();
        report
    }

    /// Clears recorded metrics, live telemetry and trace state (between
    /// benchmark iterations) so back-to-back runs on one cluster never mix.
    pub fn reset_metrics(&self) {
        self.inner.metrics.reset();
        self.inner.telemetry.reset();
        self.inner.trace.clear();
    }

    /// Broadcasts a read-only value to all tasks.
    pub fn broadcast<T>(&self, value: T) -> Broadcast<T> {
        Broadcast::new(value)
    }

    /// Distributes `data` into `partitions` chunks (contiguous split, like
    /// Spark's `parallelize`).
    pub fn parallelize<T: Send + Sync + 'static>(
        &self,
        data: Vec<T>,
        partitions: usize,
    ) -> Dataset<T> {
        let partitions = partitions.max(1);
        let total = data.len();
        let chunk = total.div_ceil(partitions).max(1);
        let mut parts: Vec<Vec<T>> = Vec::with_capacity(partitions);
        let mut iter = data.into_iter();
        for _ in 0..partitions {
            let part: Vec<T> = iter.by_ref().take(chunk).collect();
            parts.push(part);
        }
        // Any remainder (can only happen if chunk*partitions < total, which
        // div_ceil prevents) would be dropped; assert the invariant instead.
        debug_assert_eq!(iter.count(), 0);
        Dataset::from_partitions(self.clone(), parts)
    }

    /// An empty dataset with one empty partition.
    pub fn empty<T: Send + Sync + 'static>(&self) -> Dataset<T> {
        Dataset::from_partitions(self.clone(), vec![Vec::new()])
    }

    /// Records a driver-side stage (operations that gather or rearrange
    /// data on the driver rather than on executor tasks), so they appear in
    /// the metrics report like every other data movement.
    pub(crate) fn record_driver_stage(
        &self,
        name: &str,
        start: Instant,
        records: usize,
        shuffled: usize,
    ) {
        let wall = start.elapsed();
        let id = self.inner.metrics.record(StageMetrics {
            stage_id: 0,
            name: name.to_string(),
            wall,
            task_time: wall,
            task_durations: vec![wall],
            num_tasks: 1,
            input_records: records,
            output_records: records,
            shuffle_records: shuffled,
            shuffle_bytes: shuffled * std::mem::size_of::<usize>(),
            max_partition_records: records,
            spilled_runs: 0,
            stolen_tasks: 0,
        });
        // Driver stages occupy no executor slot; trace them as one slot-0
        // task so the timeline stays gap-free.
        self.inner.trace.record_stage_tasks(
            id,
            name,
            &[TaskSpan {
                task: 0,
                slot: 0,
                queued: start,
                started: start,
                finished: start + wall,
            }],
        );
    }

    /// Runs one narrow stage: `f(partition_index, partition) → new partition`
    /// per input partition, bounded by the cluster's task slots. Records
    /// metrics under `name`.
    pub(crate) fn run_narrow_stage<T, U>(
        &self,
        name: &str,
        input: &Dataset<T>,
        f: impl Fn(usize, &[T]) -> Vec<U> + Sync,
    ) -> Dataset<U>
    where
        T: Send + Sync + 'static,
        U: Send + Sync + 'static,
    {
        let start = Instant::now();
        let inputs: Vec<Arc<Vec<T>>> = input.partitions.clone();
        let input_records: usize = inputs.iter().map(|p| p.len()).sum();
        let (outputs, times) = run_stage_tasks(
            self.config(),
            &self.inner.engine.executor,
            inputs,
            |idx, part| f(idx, &part),
        );
        let output_records: usize = outputs.iter().map(std::vec::Vec::len).sum();
        let max_partition_records = outputs.iter().map(std::vec::Vec::len).max().unwrap_or(0);
        let TaskTimes {
            total,
            per_task,
            spans,
        } = times;
        let id = self.inner.metrics.record(StageMetrics {
            stage_id: 0,
            name: name.to_string(),
            wall: start.elapsed(),
            task_time: total,
            task_durations: per_task,
            num_tasks: outputs.len(),
            input_records,
            output_records,
            shuffle_records: 0,
            shuffle_bytes: 0,
            max_partition_records,
            spilled_runs: 0,
            stolen_tasks: steal_count(&spans, self.config().task_slots()),
        });
        self.inner.trace.record_stage_tasks(id, name, &spans);
        Dataset::from_partitions(self.clone(), outputs)
    }
}

/// An immutable, partitioned collection — the engine's RDD.
///
/// Cloning a `Dataset` is cheap: partitions are shared `Arc`s, matching RDD
/// immutability (a transformation never mutates its input).
#[derive(Clone)]
pub struct Dataset<T> {
    pub(crate) cluster: Cluster,
    pub(crate) partitions: Vec<Arc<Vec<T>>>,
}

impl<T: Send + Sync + 'static> Dataset<T> {
    /// Builds a dataset from explicit partitions.
    pub fn from_partitions(cluster: Cluster, parts: Vec<Vec<T>>) -> Self {
        let partitions = if parts.is_empty() {
            vec![Arc::new(Vec::new())]
        } else {
            parts.into_iter().map(Arc::new).collect()
        };
        Self {
            cluster,
            partitions,
        }
    }

    /// The owning cluster handle.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of records (driver-side, no stage).
    pub fn count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// Record count per partition (for skew inspection in tests/benches).
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(|p| p.len()).collect()
    }

    /// Borrowing access to a partition's records.
    pub fn partition(&self, idx: usize) -> &[T] {
        &self.partitions[idx]
    }

    /// One-to-one transformation.
    pub fn map<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        F: Fn(&T) -> U + Sync,
    {
        self.cluster
            .clone()
            .run_narrow_stage(name, self, |_, part| part.iter().map(&f).collect())
    }

    /// Keeps records satisfying the predicate.
    pub fn filter<F>(&self, name: &str, f: F) -> Dataset<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        self.cluster
            .clone()
            .run_narrow_stage(name, self, |_, part| {
                part.iter().filter(|t| f(t)).cloned().collect()
            })
    }

    /// One-to-many transformation.
    pub fn flat_map<U, I, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        I: IntoIterator<Item = U>,
        F: Fn(&T) -> I + Sync,
    {
        self.cluster
            .clone()
            .run_narrow_stage(name, self, |_, part| part.iter().flat_map(&f).collect())
    }

    /// Whole-partition transformation (the engine's `mapPartitions`): `f`
    /// receives the partition index and its records.
    pub fn map_partitions<U, F>(&self, name: &str, f: F) -> Dataset<U>
    where
        U: Send + Sync + 'static,
        F: Fn(usize, &[T]) -> Vec<U> + Sync,
    {
        self.cluster.clone().run_narrow_stage(name, self, f)
    }

    /// Concatenates two datasets partition-wise (no data movement).
    pub fn union(&self, other: &Dataset<T>) -> Dataset<T> {
        let mut partitions = self.partitions.clone();
        partitions.extend(other.partitions.iter().cloned());
        Dataset {
            cluster: self.cluster.clone(),
            partitions,
        }
    }

    /// Redistributes records round-robin into `n` partitions (a full
    /// shuffle; used to rebalance after skewed stages).
    pub fn repartition(&self, name: &str, n: usize) -> Dataset<T>
    where
        T: Clone,
    {
        let n = n.max(1);
        let start = Instant::now();
        let mut targets: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
        let mut next = 0usize;
        for part in &self.partitions {
            for record in part.iter() {
                targets[next].push(record.clone());
                next = (next + 1) % n;
            }
        }
        let moved: usize = targets.iter().map(std::vec::Vec::len).sum();
        let max_partition_records = targets.iter().map(std::vec::Vec::len).max().unwrap_or(0);
        let wall = start.elapsed();
        let engine = &self.cluster.inner.engine;
        engine.shuffle_records.add_usize(moved);
        engine
            .shuffle_bytes
            .add_usize(moved * std::mem::size_of::<T>());
        let id = self.cluster.inner.metrics.record(StageMetrics {
            stage_id: 0,
            name: name.to_string(),
            wall,
            task_time: wall,
            task_durations: vec![wall],
            num_tasks: n,
            input_records: moved,
            output_records: moved,
            shuffle_records: moved,
            shuffle_bytes: moved * std::mem::size_of::<T>(),
            max_partition_records,
            spilled_runs: 0,
            stolen_tasks: 0,
        });
        self.cluster.inner.trace.record_stage_tasks(
            id,
            name,
            &[TaskSpan {
                task: 0,
                slot: 0,
                queued: start,
                started: start,
                finished: start + wall,
            }],
        );
        if self.cluster.inner.trace.is_enabled() && moved > 0 {
            self.cluster
                .inner
                .trace
                .mark(&format!("shuffle-flush/{name}"), moved as u64);
        }
        Dataset::from_partitions(self.cluster.clone(), targets)
    }

    /// Materializes all records on the driver.
    pub fn collect(&self) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(self.count());
        for part in &self.partitions {
            out.extend(part.iter().cloned());
        }
        out
    }

    /// The first `n` records in partition order.
    pub fn take(&self, n: usize) -> Vec<T>
    where
        T: Clone,
    {
        let mut out = Vec::with_capacity(n);
        for part in &self.partitions {
            for record in part.iter() {
                if out.len() == n {
                    return out;
                }
                out.push(record.clone());
            }
        }
        out
    }

    /// Keys every record: `t → (f(t), t)`.
    pub fn key_by<K, F>(&self, name: &str, f: F) -> Dataset<(K, T)>
    where
        T: Clone,
        K: Send + Sync + 'static,
        F: Fn(&T) -> K + Sync,
    {
        self.map(name, |t| (f(t), t.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4))
    }

    #[test]
    fn parallelize_splits_evenly_and_loses_nothing() {
        let ds = cluster().parallelize((0..103u32).collect(), 10);
        assert_eq!(ds.num_partitions(), 10);
        assert_eq!(ds.count(), 103);
        let mut all = ds.collect();
        all.sort();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Contiguous chunking: each partition holds ≤ ceil(103/10) = 11.
        assert!(ds.partition_sizes().iter().all(|&s| s <= 11));
    }

    #[test]
    fn parallelize_more_partitions_than_records() {
        let ds = cluster().parallelize(vec![1u8, 2], 8);
        assert_eq!(ds.count(), 2);
        assert_eq!(ds.num_partitions(), 8);
    }

    #[test]
    fn empty_dataset() {
        let ds = cluster().empty::<u32>();
        assert_eq!(ds.count(), 0);
        assert_eq!(ds.num_partitions(), 1);
        assert!(ds.collect().is_empty());
    }

    #[test]
    fn map_filter_flat_map_pipeline() {
        let c = cluster();
        let ds = c.parallelize((1..=10u32).collect(), 3);
        let result = ds
            .map("double", |n| n * 2)
            .filter("gt-five", |n| *n > 5)
            .flat_map("twice", |n| vec![*n, *n]);
        let mut all = result.collect();
        all.sort();
        let mut expected: Vec<u32> = (1..=10)
            .map(|n| n * 2)
            .filter(|n| *n > 5)
            .flat_map(|n| vec![n, n])
            .collect();
        expected.sort();
        assert_eq!(all, expected);
        // Three stages were recorded.
        assert_eq!(c.metrics().stages.len(), 3);
        assert_eq!(c.metrics().stages[0].name, "double");
    }

    #[test]
    fn map_partitions_sees_the_partition_index() {
        let c = cluster();
        let ds = c.parallelize(vec![(); 8], 4);
        let tagged = ds.map_partitions("tag", |idx, part| vec![idx; part.len()]);
        let mut all = tagged.collect();
        all.sort();
        assert_eq!(all, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn union_concatenates_partitions() {
        let c = cluster();
        let a = c.parallelize(vec![1, 2], 2);
        let b = c.parallelize(vec![3], 1);
        let u = a.union(&b);
        assert_eq!(u.num_partitions(), 3);
        let mut all = u.collect();
        all.sort();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn repartition_rebalances() {
        let c = cluster();
        // Everything in one partition, then spread over 5.
        let ds = c.parallelize((0..50u32).collect(), 1);
        let re = ds.repartition("rebalance", 5);
        assert_eq!(re.num_partitions(), 5);
        assert!(re.partition_sizes().iter().all(|&s| s == 10));
        let metrics = c.metrics();
        let stage = metrics.stages_named("rebalance")[0];
        assert_eq!(stage.shuffle_records, 50);
        assert!(stage.shuffle_bytes > 0);
    }

    #[test]
    fn take_respects_order_and_bound() {
        let ds = cluster().parallelize((0..10u32).collect(), 2);
        assert_eq!(ds.take(3), vec![0, 1, 2]);
        assert_eq!(ds.take(0), Vec::<u32>::new());
        assert_eq!(ds.take(99).len(), 10);
    }

    #[test]
    fn key_by_attaches_keys() {
        let ds = cluster().parallelize(vec!["aa".to_string(), "b".to_string()], 1);
        let keyed = ds.key_by("by-len", std::string::String::len);
        let mut all = keyed.collect();
        all.sort();
        assert_eq!(all, vec![(1, "b".to_string()), (2, "aa".to_string())]);
    }

    #[test]
    fn metrics_capture_record_counts() {
        let c = cluster();
        let ds = c.parallelize((0..100u32).collect(), 4);
        ds.filter("keep-even", |n| n % 2 == 0);
        let m = c.metrics();
        let stage = &m.stages[0];
        assert_eq!(stage.input_records, 100);
        assert_eq!(stage.output_records, 50);
        assert_eq!(stage.num_tasks, 4);
        c.reset_metrics();
        assert!(c.metrics().stages.is_empty());
    }

    #[test]
    fn dataset_clone_shares_partitions() {
        let ds = cluster().parallelize(vec![1u32, 2, 3], 1);
        let clone = ds.clone();
        assert!(Arc::ptr_eq(&ds.partitions[0], &clone.partitions[0]));
    }
}
