//! Skew-aware group splitting — the paper's δ-repartitioning (§6,
//! Algorithm 3) promoted from a CL-P special case into a reusable subsystem
//! that any grouped join can opt into.
//!
//! Per-key group sizes of a prefix-filtering join follow the corpus's Zipf
//! skew: one hot token's posting list can hold a whole stage hostage while
//! every other slot idles. The pieces here attack that in three steps:
//!
//! 1. **Measure** ([`estimate_group_sizes`]): a cheap deterministic prefix
//!    scan over the keyed dataset ([`crate::dataset::Dataset::sample_prefix`])
//!    estimates the per-key group-size distribution (p95 and max, scaled up
//!    by the sampling fraction) without running the shuffle.
//! 2. **Decide** ([`SkewBudget`]): an opt-in policy — off, a fixed budget, or
//!    an automatic budget derived from the slot count and the sampled p95
//!    group size ([`SkewEstimate::auto_budget`]).
//! 3. **Split** ([`SplitPlan`], [`split_grouped_join`]): groups over the
//!    budget are broken into balanced sub-partitions of at most `budget`
//!    members, spread across the cluster with the composite `(key, sub)`
//!    partitioner, self-joined chunk by chunk and R-S-joined for every chunk
//!    pair — exactly the CL-P mechanics, with the join kernels injected as
//!    closures so the engine stays algorithm-agnostic.
//!
//! The executor's dynamic task claiming (the atomic cursor in
//! [`crate::executor::run_tasks`]) is what makes the split pay off: chunk
//! tasks backfill idle slots instead of queueing behind their siblings on a
//! static assignment. [`SplitStats::stolen_tasks`] reports how often that
//! backfill actually happened (see [`crate::executor::steal_count`]).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::dataset::Dataset;
use crate::shuffle::CompositePartitioner;

/// Default number of records the estimator reads from the head of each
/// partition. Enough for stable p95/max estimates on realistic partition
/// counts while keeping the scan O(partitions × constant).
pub const DEFAULT_SAMPLE_PER_PARTITION: usize = 4096;

/// The skew-handling policy of a join: whether (and at what budget) oversized
/// key groups are split into sub-partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkewBudget {
    /// No splitting (the default): every key group is joined as one task.
    #[default]
    Off,
    /// Sample the keyed dataset first and derive the budget from the slot
    /// count and the estimated group-size distribution
    /// ([`SkewEstimate::auto_budget`]); skip splitting entirely when the
    /// estimated maximum group already fits the budget.
    Auto,
    /// Split every group larger than the given budget (the paper's explicit
    /// δ; clamped to ≥ 1).
    Fixed(usize),
}

impl SkewBudget {
    /// Resolves the policy against a keyed dataset: the chunk budget to
    /// split with, or `None` to run unsplit.
    ///
    /// `Auto` runs the sampling pass (recorded as a `{label}/skew-sample`
    /// driver stage) and backs off to `None` when the estimated maximum
    /// group size does not exceed the derived budget — a no-skew join keeps
    /// its exact unsplit stage structure.
    pub fn resolve<K, V>(&self, keyed: &Dataset<(K, V)>, label: &str) -> Option<usize>
    where
        K: Hash + Eq + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
    {
        match *self {
            SkewBudget::Off => None,
            SkewBudget::Fixed(budget) => Some(budget.max(1)),
            SkewBudget::Auto => {
                let estimate = estimate_group_sizes(keyed, DEFAULT_SAMPLE_PER_PARTITION, label);
                let slots = keyed.cluster().config().task_slots();
                let budget = estimate.auto_budget(slots);
                (estimate.max_group_size > budget).then_some(budget)
            }
        }
    }
}

/// Group-size estimates from a prefix scan of a keyed dataset, scaled from
/// the sample to the full dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewEstimate {
    /// Records the prefix scan actually read.
    pub sampled_records: usize,
    /// Records in the full dataset.
    pub total_records: usize,
    /// Distinct keys observed in the sample.
    pub groups_seen: usize,
    /// Estimated 95th-percentile group size (nearest rank over the sampled
    /// keys, scaled by `total/sampled`).
    pub p95_group_size: usize,
    /// Estimated size of the largest group (scaled like the p95).
    pub max_group_size: usize,
}

impl SkewEstimate {
    /// The automatic chunk budget for a cluster with `slots` task slots:
    ///
    /// ```text
    /// budget = max(p95, ⌈max / (2·slots)⌉)
    /// ```
    ///
    /// The p95 floor keeps typical groups unsplit (splitting them buys no
    /// balance and costs chunk-pair joins); the `max / (2·slots)` term caps
    /// the hottest group at about `2·slots` chunks, enough self-join tasks
    /// to occupy every slot without exploding the quadratic number of
    /// chunk-pair R-S tasks.
    pub fn auto_budget(&self, slots: usize) -> usize {
        let slots = slots.max(1);
        let p95 = self.p95_group_size.max(1);
        let cap = self.max_group_size.div_ceil(2 * slots).max(1);
        p95.max(cap)
    }
}

/// Estimates per-key group sizes from the first `per_partition` records of
/// each partition of `keyed` — the cheap pre-shuffle sampling pass. The scan
/// is deterministic (no RNG) and is recorded as a `{label}/skew-sample`
/// driver stage.
///
/// Keys are spread hash-uniformly across partitions, so the per-partition
/// prefixes form an unbiased slice of the key stream; per-key sample counts
/// are scaled by `total/sampled` to estimate true group sizes.
pub fn estimate_group_sizes<K, V>(
    keyed: &Dataset<(K, V)>,
    per_partition: usize,
    label: &str,
) -> SkewEstimate
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    let total_records = keyed.count();
    // alloc(one sampling pass per join — bounded by per_partition, not data size)
    let sample = keyed.sample_prefix(&format!("{label}/skew-sample"), per_partition);
    let sampled_records = sample.len();
    // alloc(sample-sized count table, once per estimate)
    let mut counts: HashMap<K, usize> = HashMap::new();
    for (key, _) in sample {
        *counts.entry(key).or_default() += 1;
    }
    let scale = if sampled_records == 0 {
        1.0
    } else {
        // cast(record counts are far below 2^53 — exact in f64)
        total_records as f64 / sampled_records as f64
    };
    let mut sizes: Vec<usize> = counts
        .values()
        // cast(estimated group size — a non-negative float estimate, ceil fits usize)
        // alloc(sample-sized size list, once per estimate)
        .map(|&c| (c as f64 * scale).ceil() as usize)
        .collect();
    sizes.sort_unstable();
    let p95_group_size = if sizes.is_empty() {
        0
    } else {
        let rank = (95 * sizes.len()).div_ceil(100).max(1);
        // panics(1 ≤ rank.min(len) ≤ len — sizes is non-empty in this branch)
        sizes[rank.min(sizes.len()) - 1]
    };
    SkewEstimate {
        sampled_records,
        total_records,
        groups_seen: sizes.len(),
        p95_group_size,
        max_group_size: sizes.last().copied().unwrap_or(0),
    }
}

/// How one group of `len` members is split into chunks of at most `budget`
/// members.
///
/// Unlike a greedy `chunks(budget)` split (full chunks plus one remainder),
/// the plan balances: with `c = ⌈len / budget⌉` chunks, every chunk holds
/// `⌊len/c⌋` or `⌈len/c⌉` members. Both sizes are ≤ `budget` (if
/// `⌊len/c⌋ = budget` and a remainder existed, `len` would exceed
/// `c·budget`, contradicting `c = ⌈len/budget⌉`), the chunk *count* equals
/// the greedy split's, and no tiny remainder chunk wastes a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitPlan {
    len: usize,
    budget: usize,
}

impl SplitPlan {
    /// Plans the split of a group of `len` members under `budget` (≥ 1).
    pub fn new(len: usize, budget: usize) -> Self {
        Self {
            len,
            budget: budget.max(1),
        }
    }

    /// The group size this plan covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for the empty group (which yields no chunks).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The effective chunk budget (≥ 1).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of chunks: `⌈len / budget⌉` (0 for an empty group).
    pub fn num_chunks(&self) -> usize {
        self.len.div_ceil(self.budget)
    }

    /// Whether the group actually splits (more than one chunk).
    pub fn is_split(&self) -> bool {
        self.num_chunks() > 1
    }

    /// The half-open index ranges `[start, end)` of the chunks, in order.
    /// They tile `0..len` exactly; every range spans ≤ `budget` indices.
    pub fn chunk_bounds(&self) -> Vec<(usize, usize)> {
        let chunks = self.num_chunks();
        if chunks == 0 {
            // alloc(empty Vec never allocates)
            return Vec::new();
        }
        // panics(chunks == 0 returned early — both divisors are non-zero)
        let base = self.len / chunks;
        let extra = self.len % chunks;
        // alloc(one bounds Vec per split group — split groups are rare by design)
        let mut out = Vec::with_capacity(chunks);
        let mut at = 0;
        for idx in 0..chunks {
            let size = base + usize::from(idx < extra);
            debug_assert!(
                (1..=self.budget).contains(&size),
                "chunk size {size} outside 1..={}",
                self.budget
            );
            out.push((at, at + size));
            at += size;
        }
        debug_assert_eq!(at, self.len, "chunks must tile the group exactly");
        out
    }

    /// Splits a slice according to the plan. `items.len()` must equal the
    /// planned `len`.
    pub fn chunks<'a, T>(&self, items: &'a [T]) -> Vec<&'a [T]> {
        debug_assert_eq!(items.len(), self.len, "plan was made for another group");
        self.chunk_bounds()
            .into_iter()
            // panics(chunk bounds tile 0..len exactly; items.len() == len is asserted above)
            // alloc(one slice Vec per split group — borrows, no member copies)
            .map(|(start, end)| &items[start..end])
            .collect()
    }

    /// All unordered chunk pairs `(i, j)` with `i < j` — the R-S joins that
    /// recover the pairs a chunked self-join misses. Every cross-chunk
    /// member pair appears in exactly one of these.
    pub fn chunk_pairs(&self) -> Vec<(u32, u32)> {
        // cast(split plans make at most a few hundred chunks — fits u32)
        let chunks = self.num_chunks() as u32;
        // alloc(one pair list per split group, sized up front)
        let mut out = Vec::with_capacity((chunks as usize * chunks.saturating_sub(1) as usize) / 2);
        for i in 0..chunks {
            for j in (i + 1)..chunks {
                out.push((i, j));
            }
        }
        out
    }
}

/// Counters describing one [`split_grouped_join`] run, for the caller's
/// stats pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitStats {
    /// Groups that exceeded the budget and were split.
    pub groups_split: u64,
    /// Sub-partitions (chunks) those groups produced.
    pub chunks: u64,
    /// Chunk-pair R-S joins executed.
    pub rs_joins: u64,
    /// Tasks of the chunk self-join and chunk-pair R-S stages that the
    /// dynamic claim placed on a non-home slot (work stealing; see
    /// [`crate::executor::steal_count`]).
    pub stolen_tasks: u64,
}

/// Joins a key-grouped dataset with bounded per-task group sizes: groups of
/// ≤ `budget` members run `self_join` directly; larger groups are split by a
/// [`SplitPlan`], spread across `2 × partitions` targets with the composite
/// `(key, sub)` partitioner, self-joined per chunk and `cross_join`ed for
/// every chunk pair — Algorithm 3 of the paper with the kernels injected.
///
/// `self_join(key, members)` must emit every qualifying pair within
/// `members`; `cross_join(key, left, right)` every qualifying pair with one
/// side in each. Together with the chunk-pair coverage of
/// [`SplitPlan::chunk_pairs`] this makes the union of all stage outputs
/// contain exactly the unsplit join's pairs (pairs found via several keys or
/// chunks still need the caller's usual deduplication).
///
/// Stage names mirror the original CL-P pipeline (`{label}/join-small-groups`,
/// `…/split-large-groups`, `…/spread-chunks`, `…/join-chunks`,
/// `…/key-chunks`, `…/pair-chunks`, `…/emit-chunk-pairs`,
/// `…/spread-chunk-pairs`, `…/rs-join-chunks`), so traces and metrics stay
/// comparable.
pub fn split_grouped_join<K, M, O, SJ, CJ>(
    grouped: &Dataset<(K, Vec<M>)>,
    budget: usize,
    partitions: usize,
    label: &str,
    self_join: SJ,
    cross_join: CJ,
) -> (Dataset<O>, SplitStats)
where
    K: Hash + Eq + Copy + Send + Sync + 'static,
    M: Clone + Send + Sync + 'static,
    O: Clone + Send + Sync + 'static,
    SJ: Fn(K, &[M]) -> Vec<O> + Sync,
    CJ: Fn(K, &[M], &[M]) -> Vec<O> + Sync,
{
    let budget = budget.max(1);
    let cluster = grouped.cluster();
    let stages_before = cluster.inner.metrics.stage_count();
    let groups_split = AtomicU64::new(0);
    let chunks_created = AtomicU64::new(0);
    let rs_joins = AtomicU64::new(0);

    // Small groups join as usual.
    // alloc(stage label String, once per split join)
    let small = grouped.flat_map(&format!("{label}/join-small-groups"), |(key, members)| {
        if members.len() <= budget {
            self_join(*key, members)
        } else {
            // alloc(empty Vec never allocates)
            Vec::new()
        }
    });
    // Large groups are split into balanced chunks of ≤ budget members with a
    // secondary key.
    // alloc(stage label String, once per split join)
    let chunks = grouped.flat_map(&format!("{label}/split-large-groups"), |(key, members)| {
        if members.len() <= budget {
            // alloc(empty Vec never allocates)
            return Vec::new();
        }
        let plan = SplitPlan::new(members.len(), budget);
        // relaxed(counter): independent statistics counters, read only after
        // the eager stage (and the whole splitter) completes.
        groups_split.fetch_add(1, Ordering::Relaxed);
        chunks_created.fetch_add(plan.num_chunks() as u64, Ordering::Relaxed);
        plan.chunks(members)
            .into_iter()
            .enumerate()
            // cast(sub < num_chunks, which fits u32 — see chunk_pairs)
            // alloc(chunk replicas must own their members to re-shuffle; split groups only)
            .map(|(sub, chunk)| ((*key, sub as u32), chunk.to_vec()))
            .collect::<Vec<_>>()
    });
    // Self-join each chunk after spreading chunks across the cluster by
    // (key, sub-key) — the composite partitioner of §6.
    let spread = chunks.partition_by(
        // alloc(stage label String, once per split join)
        &format!("{label}/spread-chunks"),
        &CompositePartitioner::new(partitions.saturating_mul(2).max(1)),
    );
    // alloc(stage label String, once per split join)
    let self_hits = spread.flat_map(&format!("{label}/join-chunks"), |((key, _), chunk)| {
        self_join(*key, chunk)
    });
    // Every ordered pair of chunks of one key is R-S joined. (The paper
    // realizes this as a Spark self-join of the chunk RDD keyed by token,
    // keeping pairs with sub₁ < sub₂ — the pairing below moves exactly the
    // same chunk replicas.)
    let chunk_pairs = chunks
        .map(
            // alloc(stage label String, once per split join)
            &format!("{label}/key-chunks"),
            |((key, sub), chunk): &((K, u32), Vec<M>)| (*key, (*sub, chunk.clone())),
        )
        // alloc(stage label Strings, once per split join)
        .group_by_key(&format!("{label}/pair-chunks"), partitions)
        .flat_map(&format!("{label}/emit-chunk-pairs"), |(key, subs)| {
            // alloc(per split key: sorted chunk refs + the pair list for R-S joins)
            let mut sorted: Vec<&(u32, Vec<M>)> = subs.iter().collect();
            sorted.sort_by_key(|(sub, _)| *sub);
            let mut out = Vec::new();
            for i in 0..sorted.len() {
                for j in (i + 1)..sorted.len() {
                    out.push((
                        // panics(loop bounds: i < j < sorted.len())
                        (*key, sorted[i].0, sorted[j].0),
                        (sorted[i].1.clone(), sorted[j].1.clone()),
                    ));
                }
            }
            out
        });
    let spread_pairs = chunk_pairs.partition_by(
        // alloc(stage label String, once per split join)
        &format!("{label}/spread-chunk-pairs"),
        &CompositePartitioner::new(partitions.saturating_mul(2).max(1)),
    );
    let rs_results = spread_pairs.flat_map(
        // alloc(stage label String, once per split join)
        &format!("{label}/rs-join-chunks"),
        |((key, _, _), (left, right))| {
            // relaxed(counter): independent statistics counter, read only
            // after the eager stage completes.
            rs_joins.fetch_add(1, Ordering::Relaxed);
            cross_join(*key, left, right)
        },
    );
    let hits = small.union(&self_hits).union(&rs_results);

    // Steal accounting: sum the stolen-task counts of the chunk-bearing
    // stages this call just recorded (the before/after slice keeps repeated
    // joins on one cluster from double counting).
    // alloc(two stage-name keys for steal accounting, once per split join)
    let join_chunks = format!("{label}/join-chunks");
    let rs_join_chunks = format!("{label}/rs-join-chunks");
    let stolen_tasks: u64 = cluster
        .metrics()
        .stages
        .iter()
        .skip(stages_before)
        .filter(|s| s.name == join_chunks || s.name == rs_join_chunks)
        .map(|s| s.stolen_tasks as u64)
        .sum();

    let stats = SplitStats {
        // relaxed(read-after-join): the eager stages finished — no writers remain.
        groups_split: groups_split.load(Ordering::Relaxed),
        chunks: chunks_created.load(Ordering::Relaxed),
        rs_joins: rs_joins.load(Ordering::Relaxed),
        stolen_tasks,
    };
    let engine = &cluster.inner.engine;
    engine.skew_groups_split.add(stats.groups_split);
    engine.skew_chunks.add(stats.chunks);
    engine.skew_rs_joins.add(stats.rs_joins);
    engine.skew_steals.add(stats.stolen_tasks);
    (hits, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::dataset::Cluster;
    use std::collections::HashSet;

    #[test]
    fn split_plan_balances_and_tiles() {
        let plan = SplitPlan::new(10, 3);
        assert_eq!(plan.num_chunks(), 4);
        assert!(plan.is_split());
        // Balanced: sizes 3,3,2,2 — never the greedy 3,3,3,1.
        assert_eq!(plan.chunk_bounds(), vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        let items: Vec<u32> = (0..10).collect();
        let chunks = plan.chunks(&items);
        let flat: Vec<u32> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
        assert_eq!(flat, items);
    }

    #[test]
    fn split_plan_edge_cases() {
        assert_eq!(SplitPlan::new(0, 5).num_chunks(), 0);
        assert!(SplitPlan::new(0, 5).chunk_bounds().is_empty());
        assert!(SplitPlan::new(0, 5).chunk_pairs().is_empty());
        assert_eq!(SplitPlan::new(5, 5).num_chunks(), 1);
        assert!(!SplitPlan::new(5, 5).is_split());
        // Budget 0 clamps to 1: one chunk per member.
        assert_eq!(SplitPlan::new(3, 0).budget(), 1);
        assert_eq!(SplitPlan::new(3, 0).num_chunks(), 3);
    }

    #[test]
    fn chunk_pairs_enumerate_upper_triangle() {
        let plan = SplitPlan::new(10, 3); // 4 chunks
        assert_eq!(
            plan.chunk_pairs(),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
    }

    /// Property sweep (ISSUE 5, satellite 4): for every (len, budget) shape
    /// up to 48×9, the plan tiles the member range gaplessly with every
    /// chunk within budget, and the chunk pairs enumerate each unordered
    /// pair of distinct chunks exactly once — so self-joining every chunk
    /// and R-S-joining every chunk pair examines each member pair once.
    #[test]
    fn split_plan_covers_every_member_pair_exactly_once() {
        for len in 0..=48usize {
            for budget in 1..=9usize {
                let plan = SplitPlan::new(len, budget);
                let bounds = plan.chunk_bounds();
                // Gapless tiling, each chunk non-empty and within budget.
                let mut cursor = 0;
                for &(start, end) in &bounds {
                    assert_eq!(start, cursor, "len {len} budget {budget}");
                    assert!(end > start && end - start <= budget);
                    cursor = end;
                }
                assert_eq!(cursor, len, "len {len} budget {budget}");
                // Every member pair is covered exactly once: same-chunk
                // pairs by the self-join, cross-chunk by chunk pairs.
                let chunk_of = |m: usize| {
                    bounds
                        .iter()
                        .position(|&(s, e)| m >= s && m < e)
                        .expect("tiling covers every member")
                };
                let pairs: HashSet<(u32, u32)> = plan.chunk_pairs().into_iter().collect();
                assert_eq!(pairs.len(), plan.chunk_pairs().len(), "no duplicate pairs");
                for x in 0..len {
                    for y in (x + 1)..len {
                        let (cx, cy) = (chunk_of(x) as u32, chunk_of(y) as u32);
                        let covered = cx == cy || pairs.contains(&(cx, cy));
                        assert!(covered, "pair ({x},{y}) len {len} budget {budget}");
                        assert!(
                            !pairs.contains(&(cy, cx)),
                            "reverse pair would double-join ({cx},{cy})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn estimate_is_exact_when_the_sample_covers_everything() {
        let c = Cluster::new(ClusterConfig::local(2));
        // 40 records of key 7, 5 each of keys 0..4.
        let mut records: Vec<(u32, u8)> = (0..40).map(|_| (7u32, 0u8)).collect();
        for key in 0..4 {
            records.extend(std::iter::repeat_n((key, 0u8), 5));
        }
        let keyed = c.parallelize(records, 4);
        let est = estimate_group_sizes(&keyed, usize::MAX, "test");
        assert_eq!(est.sampled_records, 60);
        assert_eq!(est.total_records, 60);
        assert_eq!(est.groups_seen, 5);
        assert_eq!(est.max_group_size, 40);
        assert_eq!(est.p95_group_size, 40); // nearest rank over 5 sizes
    }

    #[test]
    fn estimate_scales_up_partial_samples() {
        let c = Cluster::new(ClusterConfig::local(2));
        let records: Vec<(u32, u8)> = (0..400).map(|n| (n % 4, 0u8)).collect();
        let keyed = c.parallelize(records, 4); // contiguous chunks of 100
        let est = estimate_group_sizes(&keyed, 10, "test");
        assert_eq!(est.sampled_records, 40);
        assert_eq!(est.total_records, 400);
        // Each key shows ~10× its sampled count after scaling.
        assert!(est.max_group_size >= 90, "max = {}", est.max_group_size);
    }

    #[test]
    fn auto_budget_floors_at_p95_and_caps_chunk_count() {
        let est = SkewEstimate {
            sampled_records: 100,
            total_records: 100,
            groups_seen: 20,
            p95_group_size: 8,
            max_group_size: 640,
        };
        // max/(2·4) = 80 dominates the p95 floor.
        assert_eq!(est.auto_budget(4), 80);
        // Flat distribution: the p95 floor wins.
        let flat = SkewEstimate {
            p95_group_size: 8,
            max_group_size: 10,
            ..est
        };
        assert_eq!(flat.auto_budget(4), 8);
        // Degenerate inputs stay ≥ 1.
        let empty = SkewEstimate {
            sampled_records: 0,
            total_records: 0,
            groups_seen: 0,
            p95_group_size: 0,
            max_group_size: 0,
        };
        assert_eq!(empty.auto_budget(0), 1);
    }

    #[test]
    fn budget_resolution_policies() {
        let c = Cluster::new(ClusterConfig::local(2));
        // One hot key (60 records) plus a hundred singletons: the p95 sits at
        // the singleton size, far below the hot group.
        let mut records: Vec<(u32, u8)> = (0..60).map(|_| (9u32, 0u8)).collect();
        records.extend((100..200).map(|k| (k, 0u8)));
        let keyed = c.parallelize(records, 4);
        assert_eq!(SkewBudget::Off.resolve(&keyed, "t"), None);
        assert_eq!(SkewBudget::Fixed(7).resolve(&keyed, "t"), Some(7));
        assert_eq!(SkewBudget::Fixed(0).resolve(&keyed, "t"), Some(1));
        // Auto sees max ≈ 60 ≫ budget and opts in with a sensible budget.
        let auto = SkewBudget::Auto
            .resolve(&keyed, "t")
            .expect("skew detected");
        assert!(auto < 60, "budget {auto} would never split the hot group");
        // A flat dataset opts out.
        let flat = c.parallelize((0..100u32).map(|k| (k, 0u8)).collect::<Vec<_>>(), 4);
        assert_eq!(SkewBudget::Auto.resolve(&flat, "t"), None);
    }

    /// Reference join: all unordered value pairs (by value, dedup'd), which
    /// a split join must reproduce exactly.
    fn brute_pairs(groups: &[(u32, Vec<u32>)]) -> HashSet<(u32, u32)> {
        let mut out = HashSet::new();
        for (_, members) in groups {
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (a, b) = (members[i].min(members[j]), members[i].max(members[j]));
                    if a != b {
                        out.insert((a, b));
                    }
                }
            }
        }
        out
    }

    fn run_split(groups: Vec<(u32, Vec<u32>)>, budget: usize) -> (HashSet<(u32, u32)>, SplitStats) {
        let c = Cluster::new(ClusterConfig::local(4));
        let grouped = c.parallelize(groups, 3);
        let (hits, stats) = split_grouped_join(
            &grouped,
            budget,
            4,
            "t",
            |_, members: &[u32]| {
                let mut out = Vec::new();
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        let (a, b) = (members[i].min(members[j]), members[i].max(members[j]));
                        if a != b {
                            out.push((a, b));
                        }
                    }
                }
                out
            },
            |_, left: &[u32], right: &[u32]| {
                let mut out = Vec::new();
                for &l in left {
                    for &r in right {
                        let (a, b) = (l.min(r), l.max(r));
                        if a != b {
                            out.push((a, b));
                        }
                    }
                }
                out
            },
        );
        (hits.collect().into_iter().collect(), stats)
    }

    #[test]
    fn split_join_matches_unsplit_pairs() {
        let groups = vec![
            (1u32, (0..13).collect::<Vec<u32>>()),
            (2, vec![100, 101]),
            (3, (20..25).collect()),
            (4, vec![7]),
        ];
        let expected = brute_pairs(&groups);
        for budget in [1usize, 2, 3, 5, 100] {
            let (got, stats) = run_split(groups.clone(), budget);
            assert_eq!(got, expected, "budget {budget}");
            if budget >= 13 {
                assert_eq!(stats.groups_split, 0);
                assert_eq!(stats.chunks, 0);
                assert_eq!(stats.rs_joins, 0);
            } else {
                assert!(stats.groups_split > 0, "budget {budget}");
                assert!(stats.chunks > stats.groups_split);
                assert!(stats.rs_joins > 0);
            }
        }
    }

    #[test]
    fn split_join_counts_chunks_and_rs_joins_exactly() {
        // One group of 10 at budget 3 → 4 chunks, C(4,2) = 6 R-S joins.
        let groups = vec![(1u32, (0..10).collect::<Vec<u32>>())];
        let (_, stats) = run_split(groups, 3);
        assert_eq!(stats.groups_split, 1);
        assert_eq!(stats.chunks, 4);
        assert_eq!(stats.rs_joins, 6);
    }
}
