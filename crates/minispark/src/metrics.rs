//! Per-stage execution metrics.
//!
//! The paper's analysis leans on runtime *mechanisms* — shuffle volume,
//! partition skew, spill behaviour — so the engine records them for every
//! stage. The report is what the benchmark harness prints next to wall-clock
//! times.

use std::fmt;
use std::time::Duration;

use parking_lot::Mutex;

/// Metrics of a single executed stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Sequence number of the stage within its cluster's lifetime.
    pub stage_id: usize,
    /// Operator name supplied by the caller (e.g. `"group-by-token"`).
    pub name: String,
    /// Wall-clock duration of the stage (including scheduling).
    pub wall: Duration,
    /// Sum of the per-task busy durations.
    pub task_time: Duration,
    /// Duration of each individual task (the input to the cluster-simulation
    /// makespan, [`StageMetrics::simulated_wall`]).
    pub task_durations: Vec<Duration>,
    /// Number of tasks (usually the partition count).
    pub num_tasks: usize,
    /// Records read by the stage.
    pub input_records: usize,
    /// Records produced by the stage.
    pub output_records: usize,
    /// Records moved across the shuffle boundary (0 for narrow stages).
    pub shuffle_records: usize,
    /// Estimated bytes moved across the shuffle boundary.
    pub shuffle_bytes: usize,
    /// Size of the largest output partition in records (skew indicator).
    pub max_partition_records: usize,
    /// Number of run files spilled to disk by memory-aware operators.
    pub spilled_runs: usize,
    /// Tasks that executed on a different slot than a static round-robin
    /// assignment would use ([`crate::executor::steal_count`]): how much the
    /// dynamic claim backfilled idle slots. 0 for driver-side stages and
    /// single-slot runs.
    pub stolen_tasks: usize,
}

impl StageMetrics {
    /// Simulated wall-clock time of this stage on a cluster with `slots`
    /// concurrently usable cores: the makespan of an LPT (longest processing
    /// time first) schedule of the measured task durations onto `slots`
    /// machines.
    ///
    /// This is what makes scalability experiments meaningful on hosts with
    /// fewer physical cores than the simulated cluster: per-task compute
    /// times are measured for real, only their overlap is simulated. LPT is
    /// within 4/3 of the optimal makespan and mirrors Spark's
    /// first-free-core task assignment.
    pub fn simulated_wall(&self, slots: usize) -> Duration {
        let slots = slots.max(1);
        if self.task_durations.is_empty() {
            return self.wall;
        }
        let mut sorted: Vec<Duration> = self.task_durations.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut loads = vec![Duration::ZERO; slots.min(sorted.len()).max(1)];
        for task in sorted {
            // Assign to the least-loaded slot.
            let min = loads.iter_mut().min().expect("at least one slot");
            *min += task;
        }
        loads.into_iter().max().unwrap_or(Duration::ZERO)
    }

    /// Skew ratio: largest partition share relative to the perfectly
    /// balanced share (1.0 = balanced; the paper's skewed posting lists show
    /// up as ≫ 1 here).
    pub fn skew(&self) -> f64 {
        if self.output_records == 0 || self.num_tasks == 0 {
            return 1.0;
        }
        // cast(observability ratio — f64 rounding beyond 2^53 records is irrelevant)
        let balanced = self.output_records as f64 / self.num_tasks as f64;
        if balanced == 0.0 {
            1.0
        } else {
            // cast(observability ratio — f64 rounding beyond 2^53 records is irrelevant)
            self.max_partition_records as f64 / balanced
        }
    }
}

/// Collector shared by all datasets of one [`crate::Cluster`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stages: Mutex<Vec<StageMetrics>>,
}

impl MetricsRegistry {
    /// Records one finished stage and assigns its id.
    pub fn record(&self, mut stage: StageMetrics) -> usize {
        let mut stages = self.stages.lock();
        stage.stage_id = stages.len();
        let id = stage.stage_id;
        stages.push(stage);
        id
    }

    /// Snapshot of everything recorded so far. The registry does not know
    /// the cluster's slot count; `Cluster::metrics` fills
    /// [`MetricsReport::slots`] in.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            slots: 1,
            stages: self.stages.lock().clone(),
        }
    }

    /// Number of stages recorded so far — a cheap peek that avoids cloning a
    /// full [`MetricsReport`] when a caller only needs a high-water mark
    /// (e.g. [`crate::skew::split_grouped_join`]'s steal accounting).
    pub fn stage_count(&self) -> usize {
        self.stages.lock().len()
    }

    /// Drops all recorded stages (used between benchmark iterations).
    pub fn reset(&self) {
        self.stages.lock().clear();
    }
}

/// An immutable snapshot of all stage metrics of a cluster.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// The task-slot count of the cluster the report came from; the
    /// `sim(ms)` column of the [`fmt::Display`] table is
    /// [`StageMetrics::simulated_wall`] for this many slots (0 is treated
    /// as 1).
    pub slots: usize,
    /// The recorded stages in execution order.
    pub stages: Vec<StageMetrics>,
}

impl MetricsReport {
    /// Total wall time across stages (stages run sequentially, so this sums).
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Total simulated wall time on a cluster with `slots` cores (see
    /// [`StageMetrics::simulated_wall`]).
    pub fn simulated_total(&self, slots: usize) -> Duration {
        self.stages.iter().map(|s| s.simulated_wall(slots)).sum()
    }

    /// Total records moved through shuffles.
    pub fn total_shuffle_records(&self) -> usize {
        self.stages.iter().map(|s| s.shuffle_records).sum()
    }

    /// Total estimated shuffle bytes.
    pub fn total_shuffle_bytes(&self) -> usize {
        self.stages.iter().map(|s| s.shuffle_bytes).sum()
    }

    /// Total spilled run files.
    pub fn total_spilled_runs(&self) -> usize {
        self.stages.iter().map(|s| s.spilled_runs).sum()
    }

    /// Total stolen tasks across stages (see [`StageMetrics::stolen_tasks`]).
    pub fn total_stolen_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.stolen_tasks).sum()
    }

    /// The worst skew ratio observed in any stage.
    pub fn max_skew(&self) -> f64 {
        self.stages
            .iter()
            .map(StageMetrics::skew)
            .fold(1.0, f64::max)
    }

    /// Stages whose name contains `needle` (metrics for one logical phase).
    pub fn stages_named(&self, needle: &str) -> Vec<&StageMetrics> {
        self.stages
            .iter()
            .filter(|s| s.name.contains(needle))
            .collect()
    }

    /// Wall time per logical phase, grouping stages by the prefix of their
    /// name up to the second `/` (e.g. `"cl/cluster/..."` → `"cl/cluster"`).
    /// Preserves first-seen order — for the joins this reproduces the
    /// Ordering → Clustering → Joining → Expansion breakdown of the paper's
    /// Figure 2.
    pub fn phase_wall_times(&self) -> Vec<(String, Duration)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, Duration> =
            std::collections::HashMap::new();
        for stage in &self.stages {
            let phase = match stage.name.match_indices('/').nth(1) {
                Some((idx, _)) => stage.name[..idx].to_string(),
                None => stage.name.clone(),
            };
            if !totals.contains_key(&phase) {
                order.push(phase.clone());
            }
            *totals.entry(phase).or_insert(Duration::ZERO) += stage.wall;
        }
        order
            .into_iter()
            .map(|phase| {
                let total = totals[&phase];
                (phase, total)
            })
            .collect()
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let slots = self.slots.max(1);
        writeln!(
            f,
            "{:>4} {:<32} {:>9} {:>9} {:>6} {:>10} {:>10} {:>10} {:>12} {:>6} {:>6} {:>6}",
            "id",
            "stage",
            "wall(ms)",
            "sim(ms)",
            "tasks",
            "in",
            "out",
            "shuf.rec",
            "shuf.bytes",
            "skew",
            "spill",
            "steal"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:>4} {:<32} {:>9.1} {:>9.1} {:>6} {:>10} {:>10} {:>10} {:>12} {:>6.2} {:>6} {:>6}",
                s.stage_id,
                s.name,
                s.wall.as_secs_f64() * 1e3,
                s.simulated_wall(slots).as_secs_f64() * 1e3,
                s.num_tasks,
                s.input_records,
                s.output_records,
                s.shuffle_records,
                s.shuffle_bytes,
                s.skew(),
                s.spilled_runs,
                s.stolen_tasks,
            )?;
        }
        writeln!(
            f,
            "total wall: {:.1} ms, simulated @ {} slots: {:.1} ms, shuffle: {} records / {} bytes, max skew {:.2}",
            self.total_wall().as_secs_f64() * 1e3,
            slots,
            self.simulated_total(slots).as_secs_f64() * 1e3,
            self.total_shuffle_records(),
            self.total_shuffle_bytes(),
            self.max_skew(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(out: usize, max_part: usize, tasks: usize) -> StageMetrics {
        StageMetrics {
            name: "test".into(),
            num_tasks: tasks,
            output_records: out,
            max_partition_records: max_part,
            ..StageMetrics::default()
        }
    }

    #[test]
    fn registry_assigns_sequential_ids() {
        let reg = MetricsRegistry::default();
        assert_eq!(reg.record(stage(1, 1, 1)), 0);
        assert_eq!(reg.record(stage(1, 1, 1)), 1);
        let report = reg.report();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.stages[1].stage_id, 1);
        reg.reset();
        assert!(reg.report().stages.is_empty());
    }

    #[test]
    fn skew_of_balanced_stage_is_one() {
        assert_eq!(stage(100, 25, 4).skew(), 1.0);
    }

    #[test]
    fn skew_detects_hot_partition() {
        // 100 records, 4 tasks, largest holds 70 → skew 2.8.
        assert!((stage(100, 70, 4).skew() - 2.8).abs() < 1e-9);
    }

    #[test]
    fn skew_of_empty_stage_is_one() {
        assert_eq!(stage(0, 0, 4).skew(), 1.0);
        assert_eq!(stage(10, 10, 0).skew(), 1.0);
    }

    #[test]
    fn report_totals() {
        let reg = MetricsRegistry::default();
        let mut s1 = stage(10, 10, 1);
        s1.shuffle_records = 5;
        s1.shuffle_bytes = 100;
        s1.wall = Duration::from_millis(3);
        let mut s2 = stage(20, 15, 4);
        s2.shuffle_records = 7;
        s2.shuffle_bytes = 50;
        s2.wall = Duration::from_millis(4);
        s2.spilled_runs = 2;
        reg.record(s1);
        reg.record(s2);
        let r = reg.report();
        assert_eq!(r.total_shuffle_records(), 12);
        assert_eq!(r.total_shuffle_bytes(), 150);
        assert_eq!(r.total_wall(), Duration::from_millis(7));
        assert_eq!(r.total_spilled_runs(), 2);
        assert!(r.max_skew() > 1.0);
        // Display renders without panicking and contains the stage name.
        let text = r.to_string();
        assert!(text.contains("test"));
    }

    #[test]
    fn display_reports_simulated_wall_for_the_slot_count() {
        let reg = MetricsRegistry::default();
        let mut s = stage(1, 1, 4);
        s.task_durations = vec![Duration::from_millis(8); 4];
        reg.record(s);
        let mut report = reg.report();
        report.slots = 2;
        let text = report.to_string();
        assert!(text.contains("sim(ms)"));
        // 4 × 8 ms on 2 slots → 16 ms simulated.
        assert!(text.contains("16.0"));
        assert!(text.contains("simulated @ 2 slots"));
    }

    #[test]
    fn simulated_wall_models_slot_counts() {
        let mut s = stage(0, 0, 4);
        s.task_durations = vec![
            Duration::from_millis(8),
            Duration::from_millis(4),
            Duration::from_millis(4),
            Duration::from_millis(4),
        ];
        // 1 slot: everything serializes → 20 ms.
        assert_eq!(s.simulated_wall(1), Duration::from_millis(20));
        // 2 slots, LPT: {8, 4} and {4, 4} → 12 ms.
        assert_eq!(s.simulated_wall(2), Duration::from_millis(12));
        // 4 slots: bounded by the longest task.
        assert_eq!(s.simulated_wall(4), Duration::from_millis(8));
        assert_eq!(s.simulated_wall(100), Duration::from_millis(8));
    }

    #[test]
    fn simulated_wall_falls_back_to_wall_without_tasks() {
        let mut s = stage(0, 0, 0);
        s.wall = Duration::from_millis(3);
        assert_eq!(s.simulated_wall(8), Duration::from_millis(3));
    }

    #[test]
    fn simulated_total_sums_stages() {
        let reg = MetricsRegistry::default();
        let mut s1 = stage(1, 1, 1);
        s1.task_durations = vec![Duration::from_millis(2); 4];
        let mut s2 = stage(1, 1, 1);
        s2.task_durations = vec![Duration::from_millis(6)];
        reg.record(s1);
        reg.record(s2);
        assert_eq!(reg.report().simulated_total(2), Duration::from_millis(10));
        assert_eq!(reg.report().simulated_total(1), Duration::from_millis(14));
    }

    #[test]
    fn phase_wall_times_group_by_prefix() {
        let reg = MetricsRegistry::default();
        for (name, ms) in [
            ("cl/cluster/emit", 2u64),
            ("cl/cluster/group", 3),
            ("cl/join/emit", 5),
            ("cl/expand/direct", 7),
            ("final-distinct", 1),
        ] {
            let mut s = stage(1, 1, 1);
            s.name = name.into();
            s.wall = Duration::from_millis(ms);
            reg.record(s);
        }
        let phases = reg.report().phase_wall_times();
        assert_eq!(
            phases,
            vec![
                ("cl/cluster".to_string(), Duration::from_millis(5)),
                ("cl/join".to_string(), Duration::from_millis(5)),
                ("cl/expand".to_string(), Duration::from_millis(7)),
                ("final-distinct".to_string(), Duration::from_millis(1)),
            ]
        );
    }

    #[test]
    fn stages_named_filters() {
        let reg = MetricsRegistry::default();
        let mut s = stage(1, 1, 1);
        s.name = "vj/group-by-token".into();
        reg.record(s);
        let mut s = stage(1, 1, 1);
        s.name = "cl/expand".into();
        reg.record(s);
        let r = reg.report();
        assert_eq!(r.stages_named("vj/").len(), 1);
        assert_eq!(r.stages_named("cl/").len(), 1);
        assert_eq!(r.stages_named("nothing").len(), 0);
    }
}
