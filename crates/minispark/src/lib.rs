//! `minispark` — a small, self-contained distributed-dataflow engine in the
//! style of Apache Spark's RDD API, built as the execution substrate for the
//! EDBT 2020 top-k ranking similarity-join reproduction.
//!
//! The engine reproduces the mechanisms the paper's evaluation depends on:
//!
//! * **Partitioned datasets** ([`Dataset`]) with narrow transformations
//!   (`map`, `filter`, `flat_map`, `map_partitions`, …) executed one task per
//!   partition,
//! * **Wide transformations** (`group_by_key`, `reduce_by_key`, `join`,
//!   `cogroup`, `distinct`, `partition_by`) implemented as hash **shuffles**
//!   with pluggable [`Partitioner`]s — including the composite
//!   `(key, random sub-key)` partitioning that CL-P's repartitioning uses,
//! * a **simulated cluster** ([`ClusterConfig`]): `nodes × executors × cores`
//!   bounded task slots scheduled over real threads, so varying the node
//!   count scales usable parallelism exactly like adding machines does for a
//!   CPU-bound Spark job,
//! * **broadcast variables** ([`Broadcast`]) mirroring Spark's cached
//!   per-node read-only values,
//! * **metrics** ([`MetricsReport`]): per-stage wall time, task counts,
//!   shuffle records/bytes and partition skew — the quantities the paper
//!   reasons about (posting-list skew, shuffle overhead of repartition
//!   joins),
//! * **spill-to-disk** ([`spill`]): an external group-by that encodes
//!   overflowing groups to temporary run files and merges them, reproducing
//!   Spark's ability to spill shuffle data that iterator-style (VJ-NL)
//!   processing preserves and materialized indexes defeat,
//! * **skew handling** ([`skew`]): a prefix-scan group-size estimator, split
//!   budgets ([`SkewBudget`]) and a generic splitter that breaks oversized
//!   key groups into balanced ≤-budget chunks joined per chunk and per chunk
//!   pair — the paper's δ-repartitioning (§6) as a reusable subsystem,
//! * **tracing** ([`trace`]): an opt-in per-task span/event collector
//!   (queue-wait vs. busy split, slot ids, phase spans, shuffle-flush and
//!   spill-run events) with executor-utilization analytics
//!   ([`ExecutorAnalytics`]) and a Chrome `trace_event` exporter
//!   (Perfetto-loadable); a hand-rolled [`json`] value type backs the
//!   exporters without adding dependencies,
//! * **concurrency checking** ([`sched`], [`check`]): a deterministic,
//!   seed-driven [`Schedule`] mode for the executor (installed via
//!   [`ClusterConfig::with_schedule`]), yield-point hooks at claim / flush /
//!   spill boundaries, and a schedule-exploration harness that audits
//!   traces (happens-before, slot exclusivity, flush barriers) and asserts
//!   that results are schedule- and slot-count-independent.
//!
//! Everything runs in one OS process; "distribution" means bounded
//! parallelism plus explicit shuffle boundaries with accounted data movement.
//! That preserves the paper's *relative* comparisons (which algorithm
//! shuffles/verifies less, how skew hurts, how node counts scale) while
//! absolute times naturally differ from an 8-node YARN cluster.
//!
//! # Example
//!
//! ```
//! use minispark::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::local(4));
//! let numbers = cluster.parallelize((0..1000).collect::<Vec<u32>>(), 8);
//! let evens = numbers.filter("evens", |n| n % 2 == 0);
//! let by_mod = evens
//!     .map("key-by-mod", |&n| (n % 10, n))
//!     .reduce_by_key("sum-per-mod", 4, |a, b| a + b);
//! let mut sums = by_mod.collect();
//! sums.sort();
//! assert_eq!(sums.len(), 5); // keys 0,2,4,6,8
//! ```

#![warn(missing_docs)]

pub mod broadcast;
pub mod check;
pub mod codec;
pub mod config;
pub mod dataset;
pub mod executor;
pub mod http;
pub mod json;
pub mod metrics;
pub mod ops;
pub mod pair;
pub mod sched;
pub mod shuffle;
pub mod skew;
pub mod spill;
pub mod telemetry;
pub mod trace;

pub use broadcast::Broadcast;
pub use check::{audit_snapshot, check_determinism, schedule_matrix, AuditViolation, CheckFailure};
pub use codec::Codec;
pub use config::ClusterConfig;
pub use dataset::{Cluster, Dataset};
pub use http::{HttpServer, LiveServer, Request, Response, Router, TelemetrySource};
pub use json::Json;
pub use metrics::{MetricsReport, StageMetrics};
pub use sched::Schedule;
pub use shuffle::{CompositePartitioner, HashPartitioner, Partitioner};
pub use skew::{SkewBudget, SkewEstimate, SplitPlan, SplitStats};
pub use telemetry::{
    Counter, Gauge, Heartbeat, HistogramData, LiveHistogram, TelemetryRegistry, TelemetrySnapshot,
};
pub use trace::{ExecutorAnalytics, TraceCollector, TraceSnapshot};
