//! Live metrics plane: a lock-light telemetry registry sampled *while* a
//! job runs, complementing the post-hoc [`crate::metrics`] /
//! [`crate::trace`] layers.
//!
//! Three instrument kinds, all readable concurrently with writers:
//!
//! * [`Counter`] — a monotonic `AtomicU64` (tasks claimed, shuffle bytes);
//! * [`Gauge`] — a signed `AtomicI64` level (queue depth, records in
//!   flight);
//! * [`LiveHistogram`] — a fixed-size log-linear bucket array with bounded
//!   relative error (task durations), mergeable and quantile-queryable via
//!   its [`HistogramData`] snapshots.
//!
//! The record path is one `Option` check plus one atomic RMW — no locks, no
//! allocation. A handle from a *disabled* registry holds `None` and its
//! record calls compile to a single branch, so instrumented code pays
//! nothing when telemetry is off (the same idiom as
//! [`crate::trace::TraceCollector`]).
//!
//! [`TelemetrySnapshot`] renders the registry either as Prometheus text
//! exposition (served by [`crate::http::LiveServer`]) or as a
//! `minispark/telemetry-snapshot/v1` JSON document. The [`Heartbeat`]
//! sampler snapshots the registry on a background thread at a fixed
//! interval into an in-memory `minispark/heartbeat/v1` time series.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::json::Json;

/// Schema identifier of [`TelemetrySnapshot::to_json`] documents.
pub const SNAPSHOT_SCHEMA: &str = "minispark/telemetry-snapshot/v1";
/// Schema identifier of [`Heartbeat::document`] time series.
pub const HEARTBEAT_SCHEMA: &str = "minispark/heartbeat/v1";

// ---------------------------------------------------------------------------
// Log-linear bucket scheme
// ---------------------------------------------------------------------------

/// Values below this are their own bucket (exact region).
pub const EXACT_LIMIT: usize = 32;
/// Sub-buckets per power of two above the exact region.
pub const SUB_BUCKETS: usize = 16;
/// Total bucket count: 32 exact + 59 exponent rows (2^5 … 2^63) × 16.
pub const NUM_BUCKETS: usize = EXACT_LIMIT + 59 * SUB_BUCKETS;

/// Bucket index of `v`: identity below [`EXACT_LIMIT`], then 16 log-linear
/// sub-buckets per power of two — relative bucket width ≤ 1/16.
pub fn bucket_index(v: u64) -> usize {
    if v < EXACT_LIMIT as u64 {
        return v as usize;
    }
    // v ≥ 32 ⇒ exp ∈ [5, 63]. cast(leading_zeros is at most 64 — fits usize)
    let exp = 63 - v.leading_zeros() as usize;
    // cast(masked to 4 bits — fits every usize)
    let sub = ((v >> (exp - 4)) & 15) as usize;
    EXACT_LIMIT + (exp - 5) * SUB_BUCKETS + sub
}

/// Smallest value mapped to `index` (inverse of [`bucket_index`]).
pub fn bucket_lower(index: usize) -> u64 {
    if index < EXACT_LIMIT {
        return index as u64;
    }
    // panics(SUB_BUCKETS is a non-zero constant)
    let row = (index - EXACT_LIMIT) / SUB_BUCKETS;
    let sub = (index - EXACT_LIMIT) % SUB_BUCKETS;
    ((SUB_BUCKETS + sub) as u64) << (row + 1)
}

/// Largest value mapped to `index`.
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

/// Midpoint representative of `index` — what quantile queries report.
/// Exact for the identity region, within half a bucket width (≤ 1/32
/// relative) above it.
pub fn bucket_representative(index: usize) -> u64 {
    let lo = bucket_lower(index);
    lo + (bucket_upper(index) - lo) / 2
}

// ---------------------------------------------------------------------------
// Cells (shared atomic state behind the handles)
// ---------------------------------------------------------------------------

/// Atomic bucket array of one live histogram. Preallocated at registration
/// so the record path never allocates.
struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = bucket_index(v);
        // relaxed(counter): independent statistic cells; concurrent samplers
        // tolerate torn cross-cell totals (count may briefly lead buckets).
        // panics(bucket_index < NUM_BUCKETS by construction; buckets has NUM_BUCKETS cells)
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        // relaxed(counter): same independent-statistic argument as above.
        self.count.fetch_add(1, Ordering::Relaxed);
        // relaxed(counter): same independent-statistic argument as above.
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Cold path (sampler / endpoint): Acquire loads, no tags needed.
    fn data(&self) -> HistogramData {
        let mut buckets = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Acquire);
            if n > 0 {
                buckets.push((idx, n));
            }
        }
        HistogramData {
            buckets,
            count: self.count.load(Ordering::Acquire),
            sum: self.sum.load(Ordering::Acquire),
        }
    }

    /// Cold path (epoch reset): stronger-than-needed stores, no tags needed.
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::SeqCst);
        }
        self.count.store(0, Ordering::SeqCst);
        self.sum.store(0, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// Monotonic counter handle. `None` cell = disabled (no-op, no allocation).
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A permanently disabled counter (the no-op path).
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// Whether records actually land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            // relaxed(counter): monotonic statistic; concurrent samplers
            // tolerate torn cross-counter totals.
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds a `usize` amount (saturating into the `u64` domain).
    #[inline]
    pub fn add_usize(&self, n: usize) {
        self.add(u64::try_from(n).unwrap_or(u64::MAX));
    }

    /// Current value (0 when disabled). Cold path, Acquire load.
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Acquire))
    }
}

/// Signed level gauge handle (queue depth, in-flight records).
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A permanently disabled gauge (the no-op path).
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// Whether records actually land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(cell) = &self.cell {
            // relaxed(counter): independent level statistic; samplers
            // tolerate momentarily torn levels.
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the level by a `usize` amount (saturating).
    #[inline]
    pub fn add_usize(&self, n: usize) {
        self.add(i64::try_from(n).unwrap_or(i64::MAX));
    }

    /// Lowers the level by a `usize` amount (saturating).
    #[inline]
    pub fn sub_usize(&self, n: usize) {
        self.add(-i64::try_from(n).unwrap_or(i64::MAX));
    }

    /// Lowers the level by 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level (0 when disabled). Cold path, Acquire load.
    pub fn get(&self) -> i64 {
        self.cell
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Acquire))
    }
}

/// Live histogram handle over the fixed log-linear bucket array.
#[derive(Clone, Default)]
pub struct LiveHistogram {
    cell: Option<Arc<HistogramCell>>,
}

impl LiveHistogram {
    /// A permanently disabled histogram (the no-op path).
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// Whether records actually land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.record(v);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Snapshot of the current bucket contents (empty when disabled).
    pub fn data(&self) -> HistogramData {
        self.cell
            .as_ref()
            .map_or_else(HistogramData::default, |cell| cell.data())
    }
}

// ---------------------------------------------------------------------------
// Histogram snapshots: merge, quantiles, JSON
// ---------------------------------------------------------------------------

/// Immutable snapshot of one histogram: sparse `(bucket index, count)`
/// pairs sorted by index, plus total count and sum of raw values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramData {
    /// Non-empty buckets, sorted by bucket index.
    pub buckets: Vec<(usize, u64)>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramData {
    /// Element-wise merge of another snapshot into this one (bucket counts
    /// add; quantiles of the merge bracket the pooled data).
    pub fn merge(&mut self, other: &HistogramData) {
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na.saturating_add(nb)));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count = self.count.saturating_add(other.count);
        // Wrapping, not saturating: the live cell accumulates `sum` with
        // atomic fetch_add (mod 2^64), so merging two snapshots must agree
        // with having recorded the pooled values into one cell.
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Nearest-rank quantile (`q` clamped to `[0, 1]`): the representative
    /// value of the bucket holding the rank-⌈q·count⌉ element. `None` when
    /// empty. Bounded error: the true element lies within the returned
    /// bucket, whose relative width is ≤ 1/16.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // cast(count < 2^53 and q ∈ [0,1]; nearest-rank tolerates f64 rounding)
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bucket_representative(idx));
            }
        }
        // count is the sum of bucket counts, so the walk always returns.
        self.buckets
            .last()
            .map(|&(idx, _)| bucket_representative(idx))
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            // cast(ns-scale sums stay below 2^53; f64 rounding is fine for a mean)
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// JSON encoding: `{"count": …, "sum": …, "buckets": [[index, n], …]}`.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .buckets
            .iter()
            .map(|&(idx, n)| Json::Arr(vec![Json::num_usize(idx), Json::num_u64(n)]))
            .collect();
        Json::obj()
            .with("count", Json::num_u64(self.count))
            .with("sum", Json::num_u64(self.sum))
            .with("buckets", Json::Arr(buckets))
    }

    /// Inverse of [`Self::to_json`]; `None` on shape mismatch.
    pub fn from_json(doc: &Json) -> Option<HistogramData> {
        let count = doc.get("count")?.as_u64()?;
        let sum = doc.get("sum")?.as_u64()?;
        let mut buckets = Vec::new();
        for pair in doc.get("buckets")?.as_arr()? {
            let [index_doc, count_doc] = pair.as_arr()? else {
                return None;
            };
            let idx = usize::try_from(index_doc.as_u64()?).ok()?;
            if idx >= NUM_BUCKETS {
                return None;
            }
            buckets.push((idx, count_doc.as_u64()?));
        }
        let sorted = buckets
            .iter()
            .zip(buckets.iter().skip(1))
            .all(|(a, b)| a.0 < b.0);
        if !sorted {
            return None;
        }
        Some(HistogramData {
            buckets,
            count,
            sum,
        })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum CellRef {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

struct MetricEntry {
    name: String,
    labels: Vec<(String, String)>,
    cell: CellRef,
}

struct RegistryInner {
    epoch: AtomicU64,
    entries: Mutex<Vec<MetricEntry>>,
}

/// The live metrics registry: hands out [`Counter`]/[`Gauge`]/
/// [`LiveHistogram`] handles keyed by `(name, labels)`, snapshots them all
/// at once, and resets them between runs (bumping an epoch so samplers can
/// tell run boundaries apart).
///
/// Cloning shares the registry (an `Arc` inside). A registry created with
/// [`TelemetryRegistry::disabled`] hands out no-op handles and snapshots
/// empty — instrumented code needs no `if`s.
#[derive(Clone)]
pub struct TelemetryRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl TelemetryRegistry {
    /// A live registry.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner {
                epoch: AtomicU64::new(0),
                entries: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op registry: every handle it hands out is disabled.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current reset epoch (0 when disabled or never reset).
    pub fn epoch(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.epoch.load(Ordering::Acquire))
    }

    fn entry<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        find: impl Fn(&CellRef) -> Option<T>,
        make: impl Fn() -> (CellRef, T),
    ) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let mut entries = inner.entries.lock();
        for entry in entries.iter() {
            if entry.name == name
                && entry.labels.len() == labels.len()
                && entry
                    .labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
            {
                if let Some(found) = find(&entry.cell) {
                    return Some(found);
                }
            }
        }
        let (cell, handle) = make();
        entries.push(MetricEntry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell,
        });
        Some(handle)
    }

    /// Counter handle for `name` with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Counter handle for `(name, labels)`; repeated calls share one cell.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.entry(
            name,
            labels,
            |cell| match cell {
                CellRef::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(AtomicU64::new(0));
                (CellRef::Counter(Arc::clone(&c)), c)
            },
        );
        Counter { cell }
    }

    /// Gauge handle for `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gauge handle for `(name, labels)`; repeated calls share one cell.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.entry(
            name,
            labels,
            |cell| match cell {
                CellRef::Gauge(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(AtomicI64::new(0));
                (CellRef::Gauge(Arc::clone(&c)), c)
            },
        );
        Gauge { cell }
    }

    /// Histogram handle for `name` with no labels.
    pub fn histogram(&self, name: &str) -> LiveHistogram {
        self.histogram_with(name, &[])
    }

    /// Histogram handle for `(name, labels)`; repeated calls share one cell.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> LiveHistogram {
        let cell = self.entry(
            name,
            labels,
            |cell| match cell {
                CellRef::Histogram(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(HistogramCell::new());
                (CellRef::Histogram(Arc::clone(&c)), c)
            },
        );
        LiveHistogram { cell }
    }

    /// Zeroes every registered cell and bumps the epoch — the run boundary
    /// for back-to-back jobs on one cluster. Existing handles stay valid.
    pub fn reset(&self) {
        let Some(inner) = &self.inner else { return };
        let entries = inner.entries.lock();
        inner.epoch.fetch_add(1, Ordering::SeqCst);
        for entry in entries.iter() {
            match &entry.cell {
                CellRef::Counter(c) => c.store(0, Ordering::SeqCst),
                CellRef::Gauge(c) => c.store(0, Ordering::SeqCst),
                CellRef::Histogram(c) => c.reset(),
            }
        }
    }

    /// Consistent-enough point-in-time view of every metric (values are
    /// loaded per cell; cross-cell skew is bounded by in-flight records).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot {
                epoch: 0,
                metrics: Vec::new(),
            };
        };
        let entries = inner.entries.lock();
        let metrics = entries
            .iter()
            .map(|entry| MetricSample {
                name: entry.name.clone(),
                labels: entry.labels.clone(),
                value: match &entry.cell {
                    CellRef::Counter(c) => SampleValue::Counter(c.load(Ordering::Acquire)),
                    CellRef::Gauge(c) => SampleValue::Gauge(c.load(Ordering::Acquire)),
                    CellRef::Histogram(c) => SampleValue::Histogram(c.data()),
                },
            })
            .collect();
        TelemetrySnapshot {
            epoch: inner.epoch.load(Ordering::Acquire),
            metrics,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots and exposition
// ---------------------------------------------------------------------------

/// One sampled metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Signed gauge level.
    Gauge(i64),
    /// Histogram bucket snapshot.
    Histogram(HistogramData),
}

/// One metric in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (Prometheus-style, e.g. `minispark_tasks_claimed_total`).
    pub name: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Sampled value.
    pub value: SampleValue,
}

impl MetricSample {
    /// `name{k="v",…}` — the Prometheus series identity.
    pub fn series(&self) -> String {
        let mut out = self.name.clone();
        push_label_set(&mut out, &self.labels, &[]);
        out
    }
}

fn push_label_set(out: &mut String, labels: &[(String, String)], extra: &[(&str, &str)]) {
    if labels.is_empty() && extra.is_empty() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Point-in-time view of the whole registry.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Registry reset epoch at sampling time.
    pub epoch: u64,
    /// Every registered metric, in registration order.
    pub metrics: Vec<MetricSample>,
}

impl TelemetrySnapshot {
    /// First metric with `name` (tests and samplers).
    pub fn find(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Prometheus text exposition (format version 0.0.4): `# TYPE` lines,
    /// one sample line per series, histograms as cumulative `_bucket{le=…}`
    /// series over non-empty buckets plus `+Inf`, `_sum` and `_count`.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for m in &self.metrics {
            let kind = match m.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            if !typed.contains(&m.name.as_str()) {
                typed.push(&m.name);
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
            }
            match &m.value {
                SampleValue::Counter(v) => {
                    out.push_str(&m.name);
                    push_label_set(&mut out, &m.labels, &[]);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&m.name);
                    push_label_set(&mut out, &m.labels, &[]);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                SampleValue::Histogram(data) => {
                    let mut cumulative = 0u64;
                    for &(idx, n) in &data.buckets {
                        cumulative += n;
                        out.push_str(&m.name);
                        out.push_str("_bucket");
                        let le = bucket_upper(idx).to_string();
                        push_label_set(&mut out, &m.labels, &[("le", &le)]);
                        out.push(' ');
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    out.push_str(&m.name);
                    out.push_str("_bucket");
                    push_label_set(&mut out, &m.labels, &[("le", "+Inf")]);
                    out.push(' ');
                    out.push_str(&data.count.to_string());
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    push_label_set(&mut out, &m.labels, &[]);
                    out.push(' ');
                    out.push_str(&data.sum.to_string());
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_count");
                    push_label_set(&mut out, &m.labels, &[]);
                    out.push(' ');
                    out.push_str(&data.count.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// `minispark/telemetry-snapshot/v1` JSON document.
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut labels = Json::obj();
                for (k, v) in &m.labels {
                    labels.push(k, Json::str(v.clone()));
                }
                let doc = Json::obj()
                    .with("name", Json::str(m.name.clone()))
                    .with("labels", labels);
                match &m.value {
                    SampleValue::Counter(v) => doc
                        .with("kind", Json::str("counter"))
                        .with("value", Json::num_u64(*v)),
                    SampleValue::Gauge(v) => doc
                        .with("kind", Json::str("gauge"))
                        // cast(gauge levels are task/record counts ≪ 2^53)
                        .with("value", Json::num(*v as f64)),
                    SampleValue::Histogram(data) => doc
                        .with("kind", Json::str("histogram"))
                        .with("histogram", data.to_json()),
                }
            })
            .collect();
        Json::obj()
            .with("schema", Json::str(SNAPSHOT_SCHEMA))
            .with("epoch", Json::num_u64(self.epoch))
            .with("metrics", Json::Arr(metrics))
    }
}

// ---------------------------------------------------------------------------
// Engine probes
// ---------------------------------------------------------------------------

/// The executor's live instruments, threaded into every stage run.
#[derive(Clone)]
pub struct ExecutorProbe {
    /// Tasks claimed by a worker so far.
    pub tasks_claimed: Counter,
    /// Tasks completed so far.
    pub tasks_completed: Counter,
    /// Tasks submitted but not yet claimed.
    pub queue_depth: Gauge,
    /// Task busy durations, in nanoseconds.
    pub task_ns: LiveHistogram,
}

impl ExecutorProbe {
    /// A fully disabled probe (tests, engine-free executor use).
    pub fn disabled() -> Self {
        Self {
            tasks_claimed: Counter::disabled(),
            tasks_completed: Counter::disabled(),
            queue_depth: Gauge::disabled(),
            task_ns: LiveHistogram::disabled(),
        }
    }

    /// Registers the executor instruments on `registry`.
    pub fn register(registry: &TelemetryRegistry) -> Self {
        Self {
            tasks_claimed: registry.counter("minispark_tasks_claimed_total"),
            tasks_completed: registry.counter("minispark_tasks_completed_total"),
            queue_depth: registry.gauge("minispark_queue_depth"),
            task_ns: registry.histogram("minispark_task_duration_ns"),
        }
    }

    /// Whether any instrument is live (gates post-stage histogram work).
    pub fn is_enabled(&self) -> bool {
        self.tasks_claimed.is_enabled()
    }
}

/// The spill operator's live instruments.
#[derive(Clone)]
pub struct SpillProbe {
    /// Run files written.
    pub runs: Counter,
    /// Bytes written into run files.
    pub bytes: Counter,
}

impl SpillProbe {
    /// A fully disabled probe.
    pub fn disabled() -> Self {
        Self {
            runs: Counter::disabled(),
            bytes: Counter::disabled(),
        }
    }

    /// Registers the spill instruments on `registry`.
    pub fn register(registry: &TelemetryRegistry) -> Self {
        Self {
            runs: registry.counter("minispark_spill_runs_total"),
            bytes: registry.counter("minispark_spill_bytes_total"),
        }
    }
}

/// Every engine-side instrument a cluster owns, registered once at boot.
pub(crate) struct EngineTelemetry {
    pub(crate) executor: ExecutorProbe,
    pub(crate) shuffle_records: Counter,
    pub(crate) shuffle_bytes: Counter,
    pub(crate) shuffle_inflight: Gauge,
    pub(crate) spill: SpillProbe,
    pub(crate) skew_groups_split: Counter,
    pub(crate) skew_chunks: Counter,
    pub(crate) skew_rs_joins: Counter,
    pub(crate) skew_steals: Counter,
}

impl EngineTelemetry {
    pub(crate) fn register(registry: &TelemetryRegistry) -> Self {
        Self {
            executor: ExecutorProbe::register(registry),
            shuffle_records: registry.counter("minispark_shuffle_records_total"),
            shuffle_bytes: registry.counter("minispark_shuffle_bytes_total"),
            shuffle_inflight: registry.gauge("minispark_shuffle_inflight_records"),
            spill: SpillProbe::register(registry),
            skew_groups_split: registry.counter("minispark_skew_groups_split_total"),
            skew_chunks: registry.counter("minispark_skew_chunks_total"),
            skew_rs_joins: registry.counter("minispark_skew_rs_joins_total"),
            skew_steals: registry.counter("minispark_skew_steals_total"),
        }
    }
}

// ---------------------------------------------------------------------------
// Heartbeat sampler
// ---------------------------------------------------------------------------

struct HeartbeatShared {
    stop: AtomicBool,
    registry: TelemetryRegistry,
    started: Instant,
    interval: Duration,
    samples: Mutex<Vec<Json>>,
}

impl HeartbeatShared {
    fn sample(&self) {
        let snapshot = self.registry.snapshot();
        let mut metrics = Json::obj();
        for m in &snapshot.metrics {
            let value = match &m.value {
                SampleValue::Counter(v) => Json::num_u64(*v),
                // cast(gauge levels are task/record counts ≪ 2^53)
                SampleValue::Gauge(v) => Json::num(*v as f64),
                SampleValue::Histogram(data) => {
                    let q = |p: f64| data.quantile(p).map_or(Json::Null, Json::num_u64);
                    Json::obj()
                        .with("count", Json::num_u64(data.count))
                        .with("sum", Json::num_u64(data.sum))
                        .with("p50", q(0.50))
                        .with("p95", q(0.95))
                        .with("p99", q(0.99))
                }
            };
            metrics.push(&m.series(), value);
        }
        let sample = Json::obj()
            .with(
                "t_ms",
                Json::num(self.started.elapsed().as_secs_f64() * 1e3),
            )
            .with("epoch", Json::num_u64(snapshot.epoch))
            .with("metrics", metrics);
        self.samples.lock().push(sample);
    }
}

/// Background sampler: snapshots a [`TelemetryRegistry`] every `interval`
/// into an in-memory time series, exported as a `minispark/heartbeat/v1`
/// JSON document. Reads only atomics, so it never perturbs task order or
/// determinism fingerprints. Stops (and joins its thread) on drop.
pub struct Heartbeat {
    shared: Arc<HeartbeatShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts sampling `registry` every `interval` (clamped to ≥ 1 ms).
    pub fn start(registry: TelemetryRegistry, interval: Duration) -> Self {
        let interval = interval.max(Duration::from_millis(1));
        let shared = Arc::new(HeartbeatShared {
            stop: AtomicBool::new(false),
            registry,
            started: Instant::now(),
            interval,
            samples: Mutex::new(Vec::new()),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("minispark-heartbeat".to_string())
            .spawn(move || {
                'outer: loop {
                    // Sleep in short slices so drop never waits a full
                    // interval for the thread to notice the stop flag.
                    let mut waited = Duration::ZERO;
                    while waited < thread_shared.interval {
                        if thread_shared.stop.load(Ordering::Acquire) {
                            break 'outer;
                        }
                        let slice = (thread_shared.interval - waited).min(Duration::from_millis(5));
                        std::thread::sleep(slice);
                        waited += slice;
                    }
                    thread_shared.sample();
                }
            })
            .ok();
        if handle.is_none() {
            eprintln!("minispark: could not spawn the heartbeat sampler thread");
        }
        Self { shared, handle }
    }

    /// The sampling interval.
    pub fn interval(&self) -> Duration {
        self.shared.interval
    }

    /// Takes one sample immediately (in addition to the timer's).
    pub fn sample_now(&self) {
        self.shared.sample();
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.shared.samples.lock().len()
    }

    /// Whether no sample has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `minispark/heartbeat/v1` document over all samples so far. Takes
    /// one final flush sample first so even sub-interval runs have data.
    pub fn document(&self) -> Json {
        self.sample_now();
        let samples = self.shared.samples.lock().clone();
        Json::obj()
            .with("schema", Json::str(HEARTBEAT_SCHEMA))
            .with(
                "interval_ms",
                Json::num(self.shared.interval.as_secs_f64() * 1e3),
            )
            .with("samples", Json::Arr(samples))
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            // errors(Err means the sampler thread panicked; Drop must not double-panic)
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_exact_below_the_limit() {
        for v in 0..EXACT_LIMIT as u64 {
            let idx = bucket_index(v);
            assert_eq!(bucket_lower(idx), v);
            assert_eq!(bucket_upper(idx), v);
            assert_eq!(bucket_representative(idx), v);
        }
    }

    #[test]
    fn bucket_scheme_is_contiguous_and_monotone() {
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                bucket_upper(idx) + 1,
                bucket_lower(idx + 1),
                "gap after bucket {idx}"
            );
        }
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        for v in [0, 31, 32, 33, 1000, 1 << 20, u64::MAX - 1, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS);
            assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx), "v={v}");
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [32u64, 100, 12345, 1 << 30, (1 << 40) + 7] {
            let idx = bucket_index(v);
            let width = bucket_upper(idx) - bucket_lower(idx) + 1;
            assert!(
                width as f64 / bucket_lower(idx) as f64 <= 1.0 / 16.0 + 1e-12,
                "bucket width {width} too wide at v={v}"
            );
        }
    }

    #[test]
    fn counters_and_gauges_record_and_read() {
        let reg = TelemetryRegistry::enabled();
        let c = reg.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = reg.counter("c_total");
        c2.inc();
        assert_eq!(c.get(), 6, "same name shares one cell");

        let g = reg.gauge("g");
        g.add_usize(10);
        g.dec();
        g.sub_usize(3);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn labels_separate_series() {
        let reg = TelemetryRegistry::enabled();
        let a = reg.counter_with("k_total", &[("driver", "vj")]);
        let b = reg.counter_with("k_total", &[("driver", "cl")]);
        a.add(2);
        b.add(5);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 2);
        assert_eq!(snap.metrics[0].series(), "k_total{driver=\"vj\"}");
    }

    #[test]
    fn disabled_handles_are_plain_words_and_noop() {
        let reg = TelemetryRegistry::disabled();
        let c = reg.counter("c_total");
        let g = reg.gauge("g");
        let h = reg.histogram("h_ns");
        c.add(100);
        g.add(5);
        h.record(42);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.data().count, 0);
        assert!(reg.snapshot().metrics.is_empty());
        // The disabled handle is one nullable pointer — no heap behind it.
        assert_eq!(std::mem::size_of::<Counter>(), std::mem::size_of::<usize>());
        assert_eq!(std::mem::size_of::<Gauge>(), std::mem::size_of::<usize>());
        assert_eq!(
            std::mem::size_of::<LiveHistogram>(),
            std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn histogram_quantiles_stay_within_bucket_bounds() {
        let reg = TelemetryRegistry::enabled();
        let h = reg.histogram("h");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let data = h.data();
        assert_eq!(data.count, 1000);
        assert_eq!(data.sum, 500_500);
        for (q, true_v) in [(0.5, 500u64), (0.95, 950), (0.99, 990)] {
            let est = data.quantile(q).expect("non-empty");
            let err = est.abs_diff(true_v) as f64 / true_v as f64;
            assert!(err <= 1.0 / 16.0, "q={q}: est {est} vs {true_v}");
        }
    }

    #[test]
    fn histogram_merge_pools_counts() {
        let reg = TelemetryRegistry::enabled();
        let a = reg.histogram("a");
        let b = reg.histogram("b");
        for v in [1u64, 5, 100, 100, 7000] {
            a.record(v);
        }
        for v in [2u64, 100, 900_000] {
            b.record(v);
        }
        let mut merged = a.data();
        merged.merge(&b.data());
        assert_eq!(merged.count, 8);
        assert_eq!(merged.sum, a.data().sum + b.data().sum);
        let total: u64 = merged.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 8);
        assert!(merged.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn histogram_json_round_trips() {
        let reg = TelemetryRegistry::enabled();
        let h = reg.histogram("h");
        for v in [0u64, 1, 31, 32, 1000, 123_456_789] {
            h.record(v);
        }
        let data = h.data();
        let back = HistogramData::from_json(&data.to_json()).expect("round trip");
        assert_eq!(back, data);
        // Through the text form too.
        let text = data.to_json().render();
        let parsed = Json::parse(&text).expect("render emits valid JSON");
        assert_eq!(HistogramData::from_json(&parsed).expect("parse"), data);
    }

    #[test]
    fn reset_clears_cells_and_bumps_the_epoch() {
        let reg = TelemetryRegistry::enabled();
        let c = reg.counter("c_total");
        let h = reg.histogram("h");
        c.add(9);
        h.record(77);
        assert_eq!(reg.epoch(), 0);
        reg.reset();
        assert_eq!(reg.epoch(), 1);
        assert_eq!(c.get(), 0, "existing handles see the reset");
        assert_eq!(h.data().count, 0);
        c.inc();
        assert_eq!(c.get(), 1, "handles stay usable after reset");
    }

    #[test]
    fn prometheus_exposition_has_types_and_histogram_series() {
        let reg = TelemetryRegistry::enabled();
        reg.counter("jobs_total").add(3);
        reg.gauge("depth").add(-2);
        let h = reg.histogram_with("lat_ns", &[("stage", "map")]);
        h.record(10);
        h.record(5000);
        let text = reg.snapshot().prometheus();
        assert!(text.contains("# TYPE jobs_total counter"), "{text}");
        assert!(text.contains("jobs_total 3"), "{text}");
        assert!(text.contains("# TYPE depth gauge"), "{text}");
        assert!(text.contains("depth -2"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(
            text.contains("lat_ns_bucket{stage=\"map\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("lat_ns_sum{stage=\"map\"} 5010"), "{text}");
        assert!(text.contains("lat_ns_count{stage=\"map\"} 2"), "{text}");
        // Cumulative: the +Inf count equals the last bucket's cumulative sum.
        let buckets: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("lat_ns_bucket"))
            .collect();
        assert_eq!(buckets.len(), 3, "{text}");
    }

    #[test]
    fn snapshot_json_is_versioned_and_parses() {
        let reg = TelemetryRegistry::enabled();
        reg.counter("a_total").inc();
        reg.histogram("h").record(123);
        let doc = reg.snapshot().to_json();
        let parsed = Json::parse(&doc.render()).expect("valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some("minispark/telemetry-snapshot/v1")
        );
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn heartbeat_samples_and_documents() {
        let reg = TelemetryRegistry::enabled();
        let c = reg.counter("ticks_total");
        let hb = Heartbeat::start(reg.clone(), Duration::from_millis(5));
        c.add(7);
        std::thread::sleep(Duration::from_millis(30));
        let doc = hb.document();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("minispark/heartbeat/v1")
        );
        let samples = doc
            .get("samples")
            .and_then(Json::as_arr)
            .expect("samples array");
        assert!(!samples.is_empty(), "timer plus flush sample");
        let last = samples.last().expect("at least the flush sample");
        assert!(last.get("t_ms").and_then(Json::as_f64).is_some());
        assert_eq!(
            last.get("metrics")
                .and_then(|m| m.get("ticks_total"))
                .and_then(Json::as_u64),
            Some(7)
        );
        drop(hb); // must join cleanly
    }
}
