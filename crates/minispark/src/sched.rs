//! Deterministic, seed-driven task scheduling — the executor's
//! "concurrency test mode".
//!
//! The paper's algorithms must produce the exact same result set no matter
//! how Spark schedules their tasks: a similarity join whose output depends
//! on task interleaving is silently wrong. The default executor
//! ([`crate::executor::run_tasks`]) runs tasks on a real thread pool, so its
//! interleavings vary run to run and cannot be replayed. This module adds
//! the replayable counterpart:
//!
//! * a [`Schedule`] — a pure description of a task *claim order* and *slot
//!   assignment*. Installing one on a [`crate::ClusterConfig`] (via
//!   [`crate::ClusterConfig::with_schedule`]) makes every stage execute its
//!   tasks deterministically in that order, one at a time, on the calling
//!   thread. Same schedule + same input ⇒ bit-identical execution order.
//!   The thread-pool path stays the default (`schedule == None`);
//! * **yield points** ([`yield_point`]): named interleaving points the
//!   engine announces at task claims, shuffle flushes and spill-run
//!   boundaries. Like the trace layer, an unarmed yield point is a single
//!   branch; a harness (or `scripts/tsan.sh` via [`arm_from_env`]) can
//!   install a hook to observe the points or to inject `thread::yield_now`
//!   for denser interleavings under ThreadSanitizer;
//! * a **lock-order sentinel** ([`lock_order`]) guarding the executor's
//!   `pending`/`results` mutex discipline in debug builds. It lives here —
//!   below the executor — because the executor must not depend on the
//!   checking harness ([`crate::check`]) that sits above it.
//!
//! The schedule-exploration harness that drives all of this is
//! [`crate::check`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// A deterministic task schedule: the order in which a stage's tasks are
/// claimed and the slot label each claim is assigned.
///
/// A schedule is pure data — [`Schedule::claim_order`] and
/// [`Schedule::slot_of`] are deterministic functions of the variant, the
/// task count and the slot count — so a run under a schedule can be
/// replayed exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Tasks run in submission order `0, 1, …, n−1` (what a single-slot
    /// thread-pool run does), slots assigned round-robin.
    Natural,
    /// Tasks run in reverse submission order, slots assigned round-robin.
    /// The cheapest "adversary": any code that accidentally relies on
    /// partition 0 being processed first breaks here.
    Reversed,
    /// Tasks run in a seeded pseudo-random permutation (Fisher–Yates over a
    /// SplitMix64 stream), slots assigned by a second seeded draw. Distinct
    /// seeds explore distinct interleavings; equal seeds replay exactly.
    Seeded(u64),
    /// Adversarial "stragglers-first" order: claims alternate between the
    /// back and the front of the queue (`n−1, 0, n−2, 1, …`), and slots are
    /// assigned in contiguous blocks so early claims pile onto slot 0 —
    /// the maximally unfair assignment a dynamic work-stealing pool would
    /// produce when one slot keeps winning the race.
    StragglersFirst,
}

impl Schedule {
    /// The order in which task indices `0..num_tasks` are claimed. Always a
    /// permutation of `0..num_tasks`.
    pub fn claim_order(&self, num_tasks: usize) -> Vec<usize> {
        match self {
            Schedule::Natural => (0..num_tasks).collect(),
            Schedule::Reversed => (0..num_tasks).rev().collect(),
            Schedule::Seeded(seed) => {
                let mut order: Vec<usize> = (0..num_tasks).collect();
                let mut state = *seed;
                // Fisher–Yates driven by SplitMix64: uniform over all
                // permutations (up to modulo bias, irrelevant here — we need
                // diversity, not statistical uniformity).
                for i in (1..num_tasks).rev() {
                    // cast(j ≤ i < num_tasks — the modulus keeps the draw in usize range)
                    let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order
            }
            Schedule::StragglersFirst => {
                let mut order = Vec::with_capacity(num_tasks);
                let (mut lo, mut hi) = (0usize, num_tasks);
                while lo < hi {
                    hi -= 1;
                    order.push(hi);
                    if lo < hi {
                        order.push(lo);
                        lo += 1;
                    }
                }
                order
            }
        }
    }

    /// The slot label assigned to the `position`-th claim of a stage with
    /// `num_tasks` tasks on `slots` slots. Always `< max(slots, 1)`.
    pub fn slot_of(&self, position: usize, num_tasks: usize, slots: usize) -> usize {
        let slots = slots.max(1);
        match self {
            Schedule::Natural | Schedule::Reversed => position % slots,
            Schedule::Seeded(seed) => {
                // An independent draw per position, decorrelated from the
                // claim-order stream by a fixed odd constant.
                let mut state = seed ^ (position as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (splitmix64(&mut state) % slots as u64) as usize
            }
            Schedule::StragglersFirst => {
                // Contiguous blocks: the first ⌈n/slots⌉ claims all land on
                // slot 0, and so on — the most imbalanced labelling.
                let per_slot = num_tasks.max(1).div_ceil(slots);
                (position / per_slot).min(slots - 1)
            }
        }
    }

    /// A short, stable description for reports and error messages.
    pub fn describe(&self) -> String {
        match self {
            Schedule::Natural => "natural".to_string(),
            Schedule::Reversed => "reversed".to_string(),
            Schedule::Seeded(seed) => format!("seeded({seed})"),
            Schedule::StragglersFirst => "stragglers-first".to_string(),
        }
    }
}

/// SplitMix64 (Steele et al.): a tiny, high-quality PRNG step. Used instead
/// of the `rand` crate so schedules stay dependency-free and bit-stable
/// across toolchains.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Yield points
// ---------------------------------------------------------------------------

/// The type of an installed yield-point hook: called with the site name
/// (e.g. `"executor/claim"`, `"shuffle-flush"`, `"spill-run"`).
pub type YieldHook = Arc<dyn Fn(&str) + Send + Sync>;

/// Fast-path gate for [`yield_point`]. Armed with `Release` by
/// [`install_yield_hook`] *after* the hook is stored, so an `Acquire` load
/// observing `true` also observes the hook.
static YIELD_ARMED: AtomicBool = AtomicBool::new(false);
static YIELD_HOOK: RwLock<Option<YieldHook>> = RwLock::new(None);

/// Announces a named interleaving point. A no-op behind a single branch
/// unless a hook is installed — the same discipline as the disabled
/// [`crate::trace::TraceCollector`].
///
/// The engine calls this at every task claim (`executor/claim`), at every
/// shuffle flush boundary (`shuffle-flush`) and after every spilled run
/// (`spill-run`); the join kernels add their own group-boundary points.
#[inline]
pub fn yield_point(site: &str) {
    // Acquire pairs with the Release store in `install_yield_hook`: seeing
    // the armed flag guarantees the hook write is visible.
    if !YIELD_ARMED.load(Ordering::Acquire) {
        return;
    }
    yield_point_slow(site);
}

#[cold]
fn yield_point_slow(site: &str) {
    // A poisoned lock only means a hook installer panicked; the stored
    // value is still a plain Option, so keep going with it.
    let hook = YIELD_HOOK
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(hook) = hook {
        hook(site);
    }
}

/// Installs a process-wide yield-point hook (replacing any previous one).
/// The hook runs on whichever thread hits the yield point — it must be
/// cheap and must not call back into the engine.
pub fn install_yield_hook(hook: YieldHook) {
    *YIELD_HOOK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(hook);
    // Release: publishes the hook write above to Acquire loads of the flag.
    YIELD_ARMED.store(true, Ordering::Release);
}

/// Removes the installed hook; yield points return to single-branch no-ops.
pub fn clear_yield_hook() {
    // Release keeps the disarm ordered after any prior hook use on this
    // thread; racing yield points may still run the old hook once.
    YIELD_ARMED.store(false, Ordering::Release);
    *YIELD_HOOK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
}

/// Arms a `thread::yield_now` hook when the `MINISPARK_YIELD` environment
/// variable is set (to anything non-empty). Called once per process by the
/// executor, so `scripts/tsan.sh` gets denser interleavings at every
/// claim/flush/spill boundary without code changes. Idempotent.
pub fn arm_from_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("MINISPARK_YIELD").is_some_and(|v| !v.is_empty()) {
            install_yield_hook(Arc::new(|_site| std::thread::yield_now()));
        }
    });
}

// ---------------------------------------------------------------------------
// Lock-order sentinel
// ---------------------------------------------------------------------------

/// Debug-build sentinel for the executor's locking discipline.
///
/// The executor's deadlock-freedom argument is that a worker never holds
/// two of the per-task `pending`/`results` mutexes at once (each is locked,
/// used and released within one statement). This module makes the argument
/// checkable: the executor brackets every acquisition with a
/// [`lock_order::acquire`] token, and the sentinel `debug_assert`s that no
/// second executor lock is taken while one is held. Release builds compile
/// the tracking away.
pub mod lock_order {
    use std::cell::RefCell;

    /// The executor lock families the sentinel distinguishes.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Family {
        /// The per-task input slots (`pending[idx]`).
        Pending,
        /// The per-task output slots (`results[idx]`).
        Results,
    }

    thread_local! {
        static HELD: RefCell<Vec<(Family, usize)>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII token for one acquired executor lock; releases its sentinel
    /// entry on drop. Hold it for exactly the guard's lifetime.
    #[must_use = "the sentinel entry is released when the token drops"]
    pub struct LockToken {
        #[cfg(debug_assertions)]
        registered: bool,
    }

    /// Registers acquiring `family[index]` and asserts the discipline:
    /// a thread must hold **no** other executor lock at that point.
    /// (A single-lock-at-a-time rule implies every lock order is safe.)
    pub fn acquire(family: Family, index: usize) -> LockToken {
        #[cfg(debug_assertions)]
        {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                debug_assert!(
                    held.is_empty(),
                    "executor lock discipline violated: acquiring {family:?}[{index}] while holding {held:?}"
                );
                held.push((family, index));
            });
            LockToken { registered: true }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (family, index);
            LockToken {}
        }
    }

    impl Drop for LockToken {
        fn drop(&mut self) {
            #[cfg(debug_assertions)]
            if self.registered {
                HELD.with(|held| {
                    held.borrow_mut().pop();
                });
            }
        }
    }

    /// Number of executor locks the current thread holds (debug builds;
    /// always 0 in release). Exposed for the sentinel's own tests.
    pub fn held_count() -> usize {
        #[cfg(debug_assertions)]
        {
            HELD.with(|held| held.borrow().len())
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&i| {
                if i < n && !seen[i] {
                    seen[i] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn every_schedule_yields_a_permutation() {
        for n in [0, 1, 2, 3, 7, 64, 101] {
            for s in [
                Schedule::Natural,
                Schedule::Reversed,
                Schedule::Seeded(42),
                Schedule::Seeded(u64::MAX),
                Schedule::StragglersFirst,
            ] {
                let order = s.claim_order(n);
                assert!(is_permutation(&order, n), "{s:?} n={n}: {order:?}");
            }
        }
    }

    #[test]
    fn natural_and_reversed_are_what_they_say() {
        assert_eq!(Schedule::Natural.claim_order(4), vec![0, 1, 2, 3]);
        assert_eq!(Schedule::Reversed.claim_order(4), vec![3, 2, 1, 0]);
    }

    #[test]
    fn stragglers_first_alternates_from_the_back() {
        assert_eq!(
            Schedule::StragglersFirst.claim_order(5),
            vec![4, 0, 3, 1, 2]
        );
        // Slot labels come in contiguous blocks starting at slot 0.
        let labels: Vec<usize> = (0..6)
            .map(|p| Schedule::StragglersFirst.slot_of(p, 6, 3))
            .collect();
        assert_eq!(labels, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn seeded_schedules_replay_and_differ() {
        let a = Schedule::Seeded(7).claim_order(50);
        let b = Schedule::Seeded(7).claim_order(50);
        let c = Schedule::Seeded(8).claim_order(50);
        assert_eq!(a, b, "same seed must replay exactly");
        assert_ne!(a, c, "different seeds should explore different orders");
    }

    #[test]
    fn slot_labels_are_in_range() {
        for s in [
            Schedule::Natural,
            Schedule::Reversed,
            Schedule::Seeded(3),
            Schedule::StragglersFirst,
        ] {
            for slots in [1, 2, 5] {
                for pos in 0..20 {
                    assert!(s.slot_of(pos, 20, slots) < slots, "{s:?}");
                }
            }
        }
        // Zero slots is clamped.
        assert_eq!(Schedule::Natural.slot_of(3, 4, 0), 0);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(Schedule::Seeded(9).describe(), "seeded(9)");
        assert_eq!(Schedule::StragglersFirst.describe(), "stragglers-first");
    }

    #[test]
    fn yield_hook_fires_only_while_installed() {
        // Serialize against other tests touching the process-global hook.
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        yield_point("never-armed");
        assert_eq!(COUNT.load(Ordering::SeqCst), 0);
        install_yield_hook(Arc::new(|site| {
            if site == "probe" {
                COUNT.fetch_add(1, Ordering::SeqCst);
            }
        }));
        yield_point("probe");
        yield_point("other");
        clear_yield_hook();
        yield_point("probe");
        assert_eq!(COUNT.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lock_sentinel_tracks_nesting_depth() {
        assert_eq!(lock_order::held_count(), 0);
        {
            let _t = lock_order::acquire(lock_order::Family::Pending, 3);
            if cfg!(debug_assertions) {
                assert_eq!(lock_order::held_count(), 1);
            }
        }
        assert_eq!(lock_order::held_count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "executor lock discipline violated")]
    fn lock_sentinel_rejects_nested_acquisition() {
        let _a = lock_order::acquire(lock_order::Family::Results, 0);
        let _b = lock_order::acquire(lock_order::Family::Pending, 1);
    }
}
