//! Cluster configuration — the stand-in for the paper's Spark/YARN setup
//! (Table 3 plus the hardware description in §7).

use std::path::PathBuf;
use std::time::Duration;

use crate::sched::Schedule;

/// Describes the simulated cluster.
///
/// The engine executes every stage on at most
/// [`task_slots`](ClusterConfig::task_slots) `=
/// nodes × executors_per_node × cores_per_executor` concurrent worker
/// threads, mirroring how YARN hands Spark a fixed number of executor cores.
/// Scaling `nodes` therefore scales usable parallelism the way adding
/// machines does for CPU-bound Spark jobs (Figure 7's experiment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of simulated cluster nodes.
    pub nodes: usize,
    /// Executor processes per node (`spark.executor.instances / nodes`).
    pub executors_per_node: usize,
    /// Cores per executor (`spark.executor.cores`).
    pub cores_per_executor: usize,
    /// Default number of partitions for `parallelize` and shuffles when the
    /// caller does not specify one (the paper uses 286 for most runs).
    pub default_partitions: usize,
    /// Per-executor memory budget in bytes (`spark.executor.memory`). Only
    /// used by memory-aware operators (spilling group-by) to decide when to
    /// spill; plain operators are unconstrained, like Spark operators that
    /// fit in memory.
    pub executor_memory_bytes: usize,
    /// Maximum records a memory-aware group-by keeps in memory per task
    /// before spilling a run to disk. `usize::MAX` disables spilling.
    pub spill_record_budget: usize,
    /// Directory for spill files. `None` uses the system temp directory.
    pub spill_dir: Option<PathBuf>,
    /// Deterministic task schedule for every stage. `None` (the default)
    /// uses the real thread pool; `Some(schedule)` replays tasks in the
    /// schedule's claim order on the calling thread — the executor's
    /// concurrency-checking mode (see [`crate::sched`] and [`crate::check`]).
    pub schedule: Option<Schedule>,
    /// Whether the cluster records live telemetry ([`crate::telemetry`]):
    /// executor, shuffle, spill and skew counters plus driver-side kernel
    /// counters. Off by default — every instrument is then a true no-op.
    pub telemetry: bool,
    /// Sampling interval of the background [`crate::telemetry::Heartbeat`]
    /// sampler. `None` (the default) runs no sampler; `Some(interval)`
    /// implies `telemetry` when set via [`ClusterConfig::with_heartbeat`].
    pub heartbeat_interval: Option<Duration>,
    /// Loopback port of the live `/metrics` endpoint
    /// ([`crate::http::LiveServer`]). `None` (the default) serves nothing;
    /// `Some(0)` binds an ephemeral port (see
    /// [`crate::dataset::Cluster::live_addr`]).
    pub live_port: Option<u16>,
}

impl ClusterConfig {
    /// A single-node "local\[n\]" configuration with `n` task slots, the usual
    /// choice for tests.
    pub fn local(slots: usize) -> Self {
        Self {
            nodes: 1,
            executors_per_node: 1,
            cores_per_executor: slots.max(1),
            ..Self::default()
        }
    }

    /// The paper's evaluation configuration (Table 3): 8 nodes, 24 executor
    /// instances (3 per node), 5 cores and 8 GB per executor, 286 default
    /// partitions.
    pub fn paper_table3() -> Self {
        Self {
            nodes: 8,
            executors_per_node: 3,
            cores_per_executor: 5,
            default_partitions: 286,
            executor_memory_bytes: 8 * 1024 * 1024 * 1024,
            spill_record_budget: usize::MAX,
            spill_dir: None,
            schedule: None,
            telemetry: false,
            heartbeat_interval: None,
            live_port: None,
        }
    }

    /// The scaled-down cluster of the scalability experiment (§7.1,
    /// Figure 7): executors get 3 cores and YARN decides the instance count;
    /// we model that as `nodes` nodes with 3 executors of 3 cores each.
    pub fn paper_scalability(nodes: usize) -> Self {
        Self {
            nodes,
            executors_per_node: 3,
            cores_per_executor: 3,
            ..Self::paper_table3()
        }
    }

    /// Total number of concurrently usable task slots.
    pub fn task_slots(&self) -> usize {
        (self.nodes * self.executors_per_node * self.cores_per_executor).max(1)
    }

    /// Total executor instances (`spark.executor.instances`).
    pub fn executor_instances(&self) -> usize {
        self.nodes * self.executors_per_node
    }

    /// Returns a copy with a different number of nodes (Figure 7 sweeps).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(1);
        self
    }

    /// Returns a copy with a different default partition count (Figures
    /// 12/13 sweeps).
    pub fn with_default_partitions(mut self, partitions: usize) -> Self {
        self.default_partitions = partitions.max(1);
        self
    }

    /// Returns a copy with spilling enabled at the given per-task record
    /// budget.
    pub fn with_spill_budget(mut self, records: usize) -> Self {
        self.spill_record_budget = records;
        self
    }

    /// Returns a copy that executes every stage under the given
    /// deterministic [`Schedule`] instead of the thread pool.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Returns a copy with live telemetry recording enabled.
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Returns a copy with the heartbeat sampler enabled at `interval`
    /// (implies telemetry — a sampler over a dead registry is useless).
    pub fn with_heartbeat(mut self, interval: Duration) -> Self {
        self.telemetry = true;
        self.heartbeat_interval = Some(interval);
        self
    }

    /// Returns a copy serving live `/metrics` on `127.0.0.1:port` (implies
    /// telemetry; `port = 0` binds an ephemeral port).
    pub fn with_live_port(mut self, port: u16) -> Self {
        self.telemetry = true;
        self.live_port = Some(port);
        self
    }
}

impl Default for ClusterConfig {
    /// A modest local default: 1 node, 1 executor, 4 cores, 16 partitions.
    fn default() -> Self {
        Self {
            nodes: 1,
            executors_per_node: 1,
            cores_per_executor: 4,
            default_partitions: 16,
            executor_memory_bytes: 1024 * 1024 * 1024,
            spill_record_budget: usize::MAX,
            spill_dir: None,
            schedule: None,
            telemetry: false,
            heartbeat_interval: None,
            live_port: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_config_has_requested_slots() {
        assert_eq!(ClusterConfig::local(7).task_slots(), 7);
        // Zero is clamped to one slot.
        assert_eq!(ClusterConfig::local(0).task_slots(), 1);
    }

    #[test]
    fn paper_config_matches_table3() {
        let c = ClusterConfig::paper_table3();
        assert_eq!(c.executor_instances(), 24);
        assert_eq!(c.cores_per_executor, 5);
        assert_eq!(c.task_slots(), 120);
        assert_eq!(c.default_partitions, 286);
        assert_eq!(c.executor_memory_bytes, 8 * 1024 * 1024 * 1024);
    }

    #[test]
    fn scalability_config_scales_with_nodes() {
        let four = ClusterConfig::paper_scalability(4);
        let eight = ClusterConfig::paper_scalability(8);
        assert_eq!(eight.task_slots(), 2 * four.task_slots());
        assert_eq!(four.cores_per_executor, 3);
    }

    #[test]
    fn builder_helpers() {
        let c = ClusterConfig::default()
            .with_nodes(3)
            .with_default_partitions(99)
            .with_spill_budget(1000);
        assert_eq!(c.nodes, 3);
        assert_eq!(c.default_partitions, 99);
        assert_eq!(c.spill_record_budget, 1000);
        assert_eq!(ClusterConfig::default().with_nodes(0).nodes, 1);
        assert_eq!(
            ClusterConfig::default()
                .with_default_partitions(0)
                .default_partitions,
            1
        );
    }

    #[test]
    fn telemetry_builders_imply_the_flag() {
        let c = ClusterConfig::local(2);
        assert!(!c.telemetry, "telemetry is opt-in");
        assert!(c.heartbeat_interval.is_none() && c.live_port.is_none());
        assert!(ClusterConfig::local(2).with_telemetry().telemetry);
        let hb = ClusterConfig::local(2).with_heartbeat(Duration::from_millis(50));
        assert!(hb.telemetry, "a heartbeat needs a live registry");
        assert_eq!(hb.heartbeat_interval, Some(Duration::from_millis(50)));
        let live = ClusterConfig::local(2).with_live_port(0);
        assert!(live.telemetry, "an endpoint needs a live registry");
        assert_eq!(live.live_port, Some(0));
    }

    #[test]
    fn with_schedule_installs_a_deterministic_mode() {
        let c = ClusterConfig::local(4);
        assert_eq!(c.schedule, None, "thread pool is the default");
        let scheduled = c.with_schedule(Schedule::Reversed);
        assert_eq!(scheduled.schedule, Some(Schedule::Reversed));
    }
}
