//! Wide (shuffle-based) transformations on key-value datasets, plus
//! `distinct` for arbitrary hashable records.
//!
//! Every operation here moves data across a shuffle boundary: records are
//! scattered to target partitions by a [`Partitioner`], the move is accounted
//! in the stage metrics (records, estimated bytes, resulting skew), and the
//! reduce side runs one task per target partition on the bounded executor.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use std::time::Instant;

use crate::codec::Codec;
use crate::dataset::{Cluster, Dataset};
use crate::executor::{run_stage_tasks, steal_count_concat, TaskTimes};
use crate::metrics::StageMetrics;
use crate::shuffle::{spread, stable_hash, HashPartitioner, Partitioner};
use crate::spill::external_group_by_probed;

/// Scatters every record of `input` into `targets` buckets according to
/// `target_of`, in parallel on the map side. Returns the target partitions.
pub(crate) fn shuffle_scatter<T, F>(
    input: &Dataset<T>,
    targets: usize,
    target_of: F,
) -> (Vec<Vec<T>>, TaskTimes)
where
    T: Clone + Send + Sync + 'static,
    F: Fn(&T) -> usize + Sync,
{
    let targets = targets.max(1);
    let inputs: Vec<Arc<Vec<T>>> = input.partitions.clone();
    let probe = &input.cluster().inner.engine.executor;
    let (bucketed, times) = run_stage_tasks(input.cluster().config(), probe, inputs, |_, part| {
        let mut buckets: Vec<Vec<T>> = (0..targets).map(|_| Vec::new()).collect();
        for record in part.iter() {
            let t = target_of(record);
            debug_assert!(t < targets, "partitioner returned out-of-range target");
            buckets[t].push(record.clone());
        }
        buckets
    });
    // Reduce-side gather: concatenate the map-side buckets per target.
    let mut out: Vec<Vec<T>> = (0..targets).map(|_| Vec::new()).collect();
    for mut task_buckets in bucketed {
        for (t, bucket) in task_buckets.drain(..).enumerate() {
            out[t].extend(bucket);
        }
    }
    (out, times)
}

fn merge_times(a: TaskTimes, b: TaskTimes) -> TaskTimes {
    TaskTimes {
        total: a.total + b.total,
        per_task: a.per_task.into_iter().chain(b.per_task).collect(),
        spans: a.spans.into_iter().chain(b.spans).collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn record_wide_stage(
    cluster: &Cluster,
    name: &str,
    start: Instant,
    times: TaskTimes,
    input_records: usize,
    shuffled: usize,
    out_sizes: &[usize],
    spilled_runs: usize,
    record_size: usize,
) {
    let TaskTimes {
        total,
        per_task,
        spans,
    } = times;
    let id = cluster.inner.metrics.record(StageMetrics {
        stage_id: 0,
        name: name.to_string(),
        wall: start.elapsed(),
        task_time: total,
        task_durations: per_task,
        num_tasks: out_sizes.len(),
        input_records,
        output_records: out_sizes.iter().sum(),
        shuffle_records: shuffled,
        shuffle_bytes: shuffled * record_size,
        max_partition_records: out_sizes.iter().copied().max().unwrap_or(0),
        spilled_runs,
        // A wide stage's spans cover the map and reduce waves back to back,
        // each restarting its task indices; count steals per wave.
        stolen_tasks: steal_count_concat(&spans, cluster.config().task_slots()),
    });
    cluster.inner.trace.record_stage_tasks(id, name, &spans);
    let engine = &cluster.inner.engine;
    engine.shuffle_bytes.add_usize(shuffled * record_size);
    // The reduce side has consumed the flushed records by now.
    engine.shuffle_inflight.sub_usize(shuffled);
}

/// Marks the shuffle barrier of a wide stage: called between the map-side
/// scatter and the reduce-side tasks, once every bucket is flushed. The
/// instant event lands *between* the two task waves, which is exactly what
/// the flush-barrier rule of [`crate::check::audit_snapshot`] verifies; the
/// yield point makes the barrier an interleaving point for the
/// schedule-exploration harness.
fn mark_shuffle_flush(cluster: &Cluster, name: &str, shuffled: usize) {
    crate::sched::yield_point("shuffle-flush");
    let trace = &cluster.inner.trace;
    if trace.is_enabled() && shuffled > 0 {
        trace.mark(&format!("shuffle-flush/{name}"), shuffled as u64);
    }
    let engine = &cluster.inner.engine;
    engine.shuffle_records.add_usize(shuffled);
    // In flight until the reduce wave consumes them (record_wide_stage).
    engine.shuffle_inflight.add_usize(shuffled);
}

impl<K, V> Dataset<(K, V)>
where
    K: Hash + Eq + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Groups all values sharing a key onto one partition and into one
    /// record, Spark's `groupByKey`.
    pub fn group_by_key(&self, name: &str, partitions: usize) -> Dataset<(K, Vec<V>)> {
        let start = Instant::now();
        let input_records = self.count();
        let n = partitions.max(1);
        let partitioner = HashPartitioner::new(n);
        let (scattered, scatter_times) =
            shuffle_scatter(self, n, |(k, _): &(K, V)| partitioner.partition(k));
        let shuffled: usize = scattered.iter().map(std::vec::Vec::len).sum();
        mark_shuffle_flush(self.cluster(), name, shuffled);
        let probe = &self.cluster().inner.engine.executor;
        let (grouped, times) =
            run_stage_tasks(self.cluster().config(), probe, scattered, |_, part| {
                let mut groups: HashMap<K, Vec<V>> = HashMap::new();
                for (k, v) in part {
                    groups.entry(k).or_default().push(v);
                }
                groups.into_iter().collect::<Vec<(K, Vec<V>)>>()
            });
        let out_sizes: Vec<usize> = grouped.iter().map(std::vec::Vec::len).collect();
        record_wide_stage(
            self.cluster(),
            name,
            start,
            merge_times(scatter_times, times),
            input_records,
            shuffled,
            &out_sizes,
            0,
            std::mem::size_of::<(K, V)>(),
        );
        Dataset::from_partitions(self.cluster().clone(), grouped)
    }

    /// `groupByKey` with a bounded in-memory footprint: each reduce task
    /// keeps at most the cluster's `spill_record_budget` records in memory
    /// and spills encoded runs to disk beyond that (see [`crate::spill`]).
    pub fn group_by_key_spilling(&self, name: &str, partitions: usize) -> Dataset<(K, Vec<V>)>
    where
        K: Codec + Ord,
        V: Codec,
    {
        let start = Instant::now();
        let input_records = self.count();
        let budget = self.cluster().config().spill_record_budget;
        let spill_dir = self.cluster().config().spill_dir.clone();
        let n = partitions.max(1);
        let partitioner = HashPartitioner::new(n);
        let (scattered, scatter_times) =
            shuffle_scatter(self, n, |(k, _): &(K, V)| partitioner.partition(k));
        let shuffled: usize = scattered.iter().map(std::vec::Vec::len).sum();
        mark_shuffle_flush(self.cluster(), name, shuffled);
        let trace = self.cluster().trace().clone();
        let spill_probe = self.cluster().inner.engine.spill.clone();
        let probe = &self.cluster().inner.engine.executor;
        let (results, times) =
            run_stage_tasks(self.cluster().config(), probe, scattered, |_, part| {
                let result = external_group_by_probed(
                    part.into_iter(),
                    budget,
                    spill_dir.as_deref(),
                    &spill_probe,
                )
                .expect("spill I/O failed");
                if trace.is_enabled() {
                    // One instant event per spilled run file, emitted as the
                    // reduce task merges them back — the timeline counterpart of
                    // the stage's `spilled_runs` metric.
                    for _ in 0..result.spilled_runs {
                        trace.mark(&format!("spill-run/{name}"), 1);
                    }
                }
                result
            });
        let mut grouped = Vec::with_capacity(results.len());
        let mut spilled_runs = 0;
        for r in results {
            spilled_runs += r.spilled_runs;
            grouped.push(r.groups);
        }
        let out_sizes: Vec<usize> = grouped.iter().map(std::vec::Vec::len).collect();
        record_wide_stage(
            self.cluster(),
            name,
            start,
            merge_times(scatter_times, times),
            input_records,
            shuffled,
            &out_sizes,
            spilled_runs,
            std::mem::size_of::<(K, V)>(),
        );
        Dataset::from_partitions(self.cluster().clone(), grouped)
    }

    /// Merges all values per key with `f`, with map-side combining (Spark's
    /// `reduceByKey`), so only one record per key and map task is shuffled.
    pub fn reduce_by_key<F>(&self, name: &str, partitions: usize, f: F) -> Dataset<(K, V)>
    where
        F: Fn(V, V) -> V + Sync,
    {
        let start = Instant::now();
        let input_records = self.count();
        // Map-side combine.
        let inputs: Vec<Arc<Vec<(K, V)>>> = self.partitions.clone();
        let probe = &self.cluster().inner.engine.executor;
        let (combined, combine_times) =
            run_stage_tasks(self.cluster().config(), probe, inputs, |_, part| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part.iter() {
                    match acc.remove(k) {
                        Some(prev) => {
                            acc.insert(k.clone(), f(prev, v.clone()));
                        }
                        None => {
                            acc.insert(k.clone(), v.clone());
                        }
                    }
                }
                acc.into_iter().collect::<Vec<(K, V)>>()
            });
        let combined = Dataset::from_partitions(self.cluster().clone(), combined);

        let n = partitions.max(1);
        let partitioner = HashPartitioner::new(n);
        let (scattered, scatter_times) =
            shuffle_scatter(&combined, n, |(k, _): &(K, V)| partitioner.partition(k));
        let shuffled: usize = scattered.iter().map(std::vec::Vec::len).sum();
        mark_shuffle_flush(self.cluster(), name, shuffled);
        let (reduced, reduce_times) =
            run_stage_tasks(self.cluster().config(), probe, scattered, |_, part| {
                let mut acc: HashMap<K, V> = HashMap::new();
                for (k, v) in part {
                    match acc.remove(&k) {
                        Some(prev) => {
                            acc.insert(k, f(prev, v));
                        }
                        None => {
                            acc.insert(k, v);
                        }
                    }
                }
                acc.into_iter().collect::<Vec<(K, V)>>()
            });
        let out_sizes: Vec<usize> = reduced.iter().map(std::vec::Vec::len).collect();
        record_wide_stage(
            self.cluster(),
            name,
            start,
            merge_times(merge_times(combine_times, scatter_times), reduce_times),
            input_records,
            shuffled,
            &out_sizes,
            0,
            std::mem::size_of::<(K, V)>(),
        );
        Dataset::from_partitions(self.cluster().clone(), reduced)
    }

    /// Inner hash join: pairs every `(k, v)` with every `(k, w)` of `other`.
    pub fn join<W>(
        &self,
        name: &str,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Dataset<(K, (V, W))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let cogrouped = self.cogroup(name, other, partitions);
        cogrouped.flat_map(&format!("{name}/emit"), |(k, (vs, ws))| {
            let mut out = Vec::with_capacity(vs.len() * ws.len());
            for v in vs {
                for w in ws {
                    out.push((k.clone(), (v.clone(), w.clone())));
                }
            }
            out
        })
    }

    /// Groups both sides by key onto common partitions (Spark's `cogroup`).
    #[allow(clippy::type_complexity)]
    pub fn cogroup<W>(
        &self,
        name: &str,
        other: &Dataset<(K, W)>,
        partitions: usize,
    ) -> Dataset<(K, (Vec<V>, Vec<W>))>
    where
        W: Clone + Send + Sync + 'static,
    {
        let start = Instant::now();
        let input_records = self.count() + other.count();
        let n = partitions.max(1);
        let partitioner = HashPartitioner::new(n);
        let (left, left_times) =
            shuffle_scatter(self, n, |(k, _): &(K, V)| partitioner.partition(k));
        let (right, right_times) =
            shuffle_scatter(other, n, |(k, _): &(K, W)| partitioner.partition(k));
        let shuffled: usize = left.iter().map(std::vec::Vec::len).sum::<usize>()
            + right.iter().map(std::vec::Vec::len).sum::<usize>();
        let record_size = std::mem::size_of::<(K, V)>().max(std::mem::size_of::<(K, W)>());
        mark_shuffle_flush(self.cluster(), name, shuffled);
        #[allow(clippy::type_complexity)]
        let zipped: Vec<(Vec<(K, V)>, Vec<(K, W)>)> = left.into_iter().zip(right).collect();
        let probe = &self.cluster().inner.engine.executor;
        let (cogrouped, times) = run_stage_tasks(
            self.cluster().config(),
            probe,
            zipped,
            |_, (lpart, rpart)| {
                let mut groups: HashMap<K, (Vec<V>, Vec<W>)> = HashMap::new();
                for (k, v) in lpart {
                    groups.entry(k).or_default().0.push(v);
                }
                for (k, w) in rpart {
                    groups.entry(k).or_default().1.push(w);
                }
                groups.into_iter().collect::<Vec<(K, (Vec<V>, Vec<W>))>>()
            },
        );
        let out_sizes: Vec<usize> = cogrouped.iter().map(std::vec::Vec::len).collect();
        record_wide_stage(
            self.cluster(),
            name,
            start,
            merge_times(merge_times(left_times, right_times), times),
            input_records,
            shuffled,
            &out_sizes,
            0,
            record_size,
        );
        Dataset::from_partitions(self.cluster().clone(), cogrouped)
    }

    /// Re-partitions by an arbitrary [`Partitioner`] without grouping —
    /// records sharing a key land on the same partition, in arrival order.
    pub fn partition_by<P>(&self, name: &str, partitioner: &P) -> Dataset<(K, V)>
    where
        P: Partitioner<K>,
    {
        let start = Instant::now();
        let input_records = self.count();
        let (scattered, scatter_times) =
            shuffle_scatter(self, partitioner.num_partitions(), |(k, _)| {
                partitioner.partition(k)
            });
        let shuffled: usize = scattered.iter().map(std::vec::Vec::len).sum();
        mark_shuffle_flush(self.cluster(), name, shuffled);
        let out_sizes: Vec<usize> = scattered.iter().map(std::vec::Vec::len).collect();
        record_wide_stage(
            self.cluster(),
            name,
            start,
            scatter_times,
            input_records,
            shuffled,
            &out_sizes,
            0,
            std::mem::size_of::<(K, V)>(),
        );
        Dataset::from_partitions(self.cluster().clone(), scattered)
    }

    /// Drops the values.
    pub fn keys(&self, name: &str) -> Dataset<K> {
        self.map(name, |(k, _)| k.clone())
    }

    /// Drops the keys.
    pub fn values(&self, name: &str) -> Dataset<V> {
        self.map(name, |(_, v)| v.clone())
    }

    /// Transforms values, keeping keys (and partitioning) unchanged.
    pub fn map_values<U, F>(&self, name: &str, f: F) -> Dataset<(K, U)>
    where
        U: Send + Sync + 'static,
        F: Fn(&V) -> U + Sync,
    {
        self.map(name, |(k, v)| (k.clone(), f(v)))
    }
}

impl<T> Dataset<T>
where
    T: Hash + Eq + Clone + Send + Sync + 'static,
{
    /// Removes duplicate records globally: shuffle by record hash, dedup per
    /// partition. The final duplicate-elimination step of every algorithm in
    /// the paper.
    pub fn distinct(&self, name: &str, partitions: usize) -> Dataset<T> {
        let start = Instant::now();
        let input_records = self.count();
        let targets = partitions.max(1);
        let (scattered, scatter_times) =
            shuffle_scatter(self, targets, |t| spread(stable_hash(t), targets));
        let shuffled: usize = scattered.iter().map(std::vec::Vec::len).sum();
        mark_shuffle_flush(self.cluster(), name, shuffled);
        let probe = &self.cluster().inner.engine.executor;
        let (deduped, times) =
            run_stage_tasks(self.cluster().config(), probe, scattered, |_, part| {
                // The seen-set owns each unique record once; the output is
                // rebuilt from it, so records are cloned exactly once.
                let mut seen = std::collections::HashSet::with_capacity(part.len());
                let mut out = Vec::new();
                for record in part {
                    if !seen.contains(&record) {
                        out.push(record.clone());
                        seen.insert(record);
                    }
                }
                out
            });
        let out_sizes: Vec<usize> = deduped.iter().map(std::vec::Vec::len).collect();
        record_wide_stage(
            self.cluster(),
            name,
            start,
            merge_times(scatter_times, times),
            input_records,
            shuffled,
            &out_sizes,
            0,
            std::mem::size_of::<T>(),
        );
        Dataset::from_partitions(self.cluster().clone(), deduped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4))
    }

    #[test]
    fn group_by_key_groups_everything() {
        let c = cluster();
        let pairs: Vec<(u32, u32)> = (0..100).map(|n| (n % 5, n)).collect();
        let grouped = c.parallelize(pairs, 8).group_by_key("group", 4);
        let mut all = grouped.collect();
        all.sort_by_key(|(k, _)| *k);
        assert_eq!(all.len(), 5);
        for (k, vs) in all {
            assert_eq!(vs.len(), 20);
            assert!(vs.iter().all(|v| v % 5 == k));
        }
    }

    #[test]
    fn group_by_key_copartitions_keys() {
        let c = cluster();
        let pairs: Vec<(u32, u32)> = (0..1000).map(|n| (n % 40, n)).collect();
        let grouped = c.parallelize(pairs, 8).group_by_key("group", 4);
        // Each key appears exactly once across all partitions.
        let keys: Vec<u32> = grouped.collect().into_iter().map(|(k, _)| k).collect();
        let unique: std::collections::HashSet<u32> = keys.iter().copied().collect();
        assert_eq!(keys.len(), unique.len());
        assert_eq!(unique.len(), 40);
    }

    #[test]
    fn reduce_by_key_sums() {
        let c = cluster();
        let pairs: Vec<(u32, u64)> = (0..1000u64).map(|n| ((n % 7) as u32, n)).collect();
        let reduced = c
            .parallelize(pairs, 16)
            .reduce_by_key("sum", 4, |a, b| a + b);
        let mut all = reduced.collect();
        all.sort();
        let mut expected: HashMap<u32, u64> = HashMap::new();
        for n in 0..1000u64 {
            *expected.entry((n % 7) as u32).or_default() += n;
        }
        let mut expected: Vec<(u32, u64)> = expected.into_iter().collect();
        expected.sort();
        assert_eq!(all, expected);
    }

    #[test]
    fn reduce_by_key_shuffles_less_than_group_by_key() {
        // Map-side combining is the whole point of reduceByKey.
        let c = cluster();
        let pairs: Vec<(u32, u64)> = (0..10_000u64).map(|n| ((n % 3) as u32, 1)).collect();
        let ds = c.parallelize(pairs, 8);
        ds.clone().group_by_key("group", 4);
        ds.reduce_by_key("reduce", 4, |a, b| a + b);
        let m = c.metrics();
        let group_shuffle = m.stages_named("group")[0].shuffle_records;
        let reduce_shuffle = m.stages_named("reduce")[0].shuffle_records;
        assert_eq!(group_shuffle, 10_000);
        // ≤ keys × map tasks = 3 × 8.
        assert!(reduce_shuffle <= 24, "reduce shuffled {reduce_shuffle}");
    }

    #[test]
    fn join_produces_the_cross_product_per_key() {
        let c = cluster();
        let left = c.parallelize(vec![(1u32, 'a'), (1, 'b'), (2, 'c')], 2);
        let right = c.parallelize(vec![(1u32, 10u8), (2, 20), (3, 30)], 2);
        let joined = left.join("join", &right, 4);
        let mut all = joined.collect();
        all.sort();
        assert_eq!(all, vec![(1, ('a', 10)), (1, ('b', 10)), (2, ('c', 20))]);
    }

    #[test]
    fn cogroup_collects_both_sides() {
        let c = cluster();
        let left = c.parallelize(vec![(1u32, 'x')], 1);
        let right = c.parallelize(vec![(1u32, 'y'), (2, 'z')], 1);
        let mut all = left.cogroup("cg", &right, 2).collect();
        all.sort_by_key(|(k, _)| *k);
        assert_eq!(all[0], (1, (vec!['x'], vec!['y'])));
        assert_eq!(all[1], (2, (vec![], vec!['z'])));
    }

    #[test]
    fn partition_by_composite_spreads_hot_key() {
        use crate::shuffle::CompositePartitioner;
        let c = cluster();
        // One hot primary key with 64 sub-keys.
        let records: Vec<((u32, u32), u64)> = (0..64).map(|s| ((7u32, s), u64::from(s))).collect();
        let ds = c.parallelize(records, 4);
        let parted = ds.partition_by("spread", &CompositePartitioner::new(16));
        let sizes = parted.partition_sizes();
        let nonempty = sizes.iter().filter(|&&s| s > 0).count();
        assert!(nonempty >= 10, "hot key reached only {nonempty} partitions");
        assert_eq!(parted.count(), 64);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let c = cluster();
        let data: Vec<u32> = (0..500).map(|n| n % 50).collect();
        let d = c.parallelize(data, 8).distinct("dedup", 4);
        let mut all = d.collect();
        all.sort();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn keys_values_map_values() {
        let c = cluster();
        let ds = c.parallelize(vec![(1u32, 2u32), (3, 4)], 1);
        let mut ks = ds.keys("k").collect();
        ks.sort();
        assert_eq!(ks, vec![1, 3]);
        let mut vs = ds.values("v").collect();
        vs.sort();
        assert_eq!(vs, vec![2, 4]);
        let mut mv = ds.map_values("mv", |v| v * 10).collect();
        mv.sort();
        assert_eq!(mv, vec![(1, 20), (3, 40)]);
    }

    #[test]
    fn wide_stage_metrics_are_recorded() {
        let c = cluster();
        let pairs: Vec<(u32, u32)> = (0..100).map(|n| (n % 10, n)).collect();
        c.parallelize(pairs, 4).group_by_key("wide", 4);
        let m = c.metrics();
        let stage = m.stages_named("wide")[0];
        assert_eq!(stage.shuffle_records, 100);
        assert!(stage.shuffle_bytes >= 100);
        assert_eq!(stage.output_records, 10);
        assert_eq!(stage.num_tasks, 4);
    }

    #[test]
    fn group_by_key_with_empty_input() {
        let c = cluster();
        let ds = c.empty::<(u32, u32)>();
        let grouped = ds.group_by_key("empty", 4);
        assert_eq!(grouped.count(), 0);
    }
}
