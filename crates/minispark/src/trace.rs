//! Execution tracing: per-task spans, phase spans and instant events, plus
//! the analytics and the Chrome `trace_event` export built on them.
//!
//! The paper's evaluation argues from runtime *mechanisms* — phase
//! breakdowns (Fig. 2), posting-list skew, spill behaviour — and the
//! aggregate [`crate::MetricsReport`] table cannot show *when* things
//! happened: which slot ran which task, how long tasks queued, whether CL-P's
//! δ-repartitioning really replaced one long task by many short ones. This
//! module records exactly that:
//!
//! * a [`TraceCollector`] attached to every [`crate::Cluster`]. Disabled by
//!   default and then a **no-op**: every recording entry point checks one
//!   boolean before touching the event buffer, so release benches pay
//!   nothing beyond timestamps the executor already takes;
//! * [`TaskEvent`]s carrying the queued → started → finished split (queue
//!   wait vs. busy time) and the worker-slot id for every executed task;
//! * [`PhaseEvent`]s from RAII [`SpanGuard`]s, used by the join drivers to
//!   label the Ordering → Clustering → Joining → Expansion pipeline;
//! * [`MarkEvent`]s for point-in-time facts (shuffle flushes, spill runs);
//! * [`ExecutorAnalytics`]: slot occupancy, idle fraction, queue-wait
//!   percentiles and a critical-path estimate per stage — the utilization
//!   view next to the existing [`crate::StageMetrics::skew`];
//! * [`chrome_trace`]: a Chrome `trace_event` document (open in Perfetto or
//!   `chrome://tracing`) with one track per slot and a phase track on top.
//!
//! All timestamps are nanoseconds relative to the collector's creation
//! (monotonic, from [`Instant`]), so traces from several clusters sharing
//! one collector (via [`TraceCollector::fork`]) line up on one timeline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::executor::{steal_count_indexed, TaskSpan};
use crate::json::Json;

/// One executed task: where it ran and the queued/started/finished split.
///
/// Invariant: `queued_ns ≤ started_ns ≤ finished_ns`, so
/// `queue_wait() + busy()` is the task's total residence time, which is in
/// turn bounded by its stage's wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEvent {
    /// The metrics stage id the task belonged to.
    pub stage_id: usize,
    /// The stage's operator name.
    pub stage: Arc<str>,
    /// Task index within the stage.
    pub task: usize,
    /// Worker slot (0-based) the task executed on.
    pub slot: usize,
    /// When the task became runnable (stage submission), ns since epoch.
    pub queued_ns: u64,
    /// When a worker picked the task up, ns since epoch.
    pub started_ns: u64,
    /// When the task finished, ns since epoch.
    pub finished_ns: u64,
}

impl TaskEvent {
    /// Time spent waiting for a free slot.
    pub fn queue_wait(&self) -> Duration {
        Duration::from_nanos(self.started_ns.saturating_sub(self.queued_ns))
    }

    /// Time spent executing.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.finished_ns.saturating_sub(self.started_ns))
    }
}

/// A labelled driver-side interval (a join phase, a whole run, …), recorded
/// by a [`SpanGuard`] on drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseEvent {
    /// The phase label, e.g. `"cl-p/phase/joining"`.
    pub name: String,
    /// Start, ns since epoch.
    pub begin_ns: u64,
    /// End, ns since epoch.
    pub end_ns: u64,
}

/// A point-in-time fact with a counter value (shuffle flush, spill run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkEvent {
    /// The event label, e.g. `"spill-run/vj/group-by-token"`.
    pub name: String,
    /// When it happened, ns since epoch.
    pub at_ns: u64,
    /// An attached count (records flushed, runs spilled, …).
    pub value: u64,
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An executed task.
    Task(TaskEvent),
    /// A labelled driver-side interval.
    Phase(PhaseEvent),
    /// A point-in-time fact.
    Mark(MarkEvent),
}

#[derive(Debug)]
struct TraceInner {
    enabled: bool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// The span/event collector attached to a [`crate::Cluster`].
///
/// Cheap to clone (an `Arc` handle). Disabled by default
/// ([`TraceCollector::disabled`], also [`Default`]): a disabled collector is
/// a no-op — every recording method returns after one boolean check, so the
/// engine's hot paths are unaffected unless tracing was requested.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    inner: Arc<TraceInner>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::disabled()
    }
}

impl TraceCollector {
    fn with_enabled(enabled: bool, epoch: Instant) -> Self {
        Self {
            inner: Arc::new(TraceInner {
                enabled,
                epoch,
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A collector that records events; its creation time is the trace epoch.
    pub fn enabled() -> Self {
        Self::with_enabled(true, Instant::now())
    }

    /// A no-op collector (the default on every cluster).
    pub fn disabled() -> Self {
        Self::with_enabled(false, Instant::now())
    }

    /// Whether this collector records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// A collector with a **fresh buffer** sharing this collector's epoch
    /// and enabled-ness. Lets a harness give every measured run its own
    /// cluster (and thus an isolated per-run event set) while all events
    /// stay on one comparable timeline; merge back with
    /// [`TraceCollector::extend`].
    #[must_use]
    pub fn fork(&self) -> Self {
        Self::with_enabled(self.inner.enabled, self.inner.epoch)
    }

    fn now_ns(&self) -> u64 {
        instant_ns(self.inner.epoch, Instant::now())
    }

    /// Records the task spans of one executed stage. No-op when disabled.
    pub fn record_stage_tasks(&self, stage_id: usize, stage: &str, spans: &[TaskSpan]) {
        if !self.inner.enabled || spans.is_empty() {
            return;
        }
        let stage: Arc<str> = Arc::from(stage);
        let epoch = self.inner.epoch;
        let mut events = self.inner.events.lock();
        events.reserve(spans.len());
        for span in spans {
            events.push(TraceEvent::Task(TaskEvent {
                stage_id,
                stage: Arc::clone(&stage),
                task: span.task,
                slot: span.slot,
                queued_ns: instant_ns(epoch, span.queued),
                started_ns: instant_ns(epoch, span.started),
                finished_ns: instant_ns(epoch, span.finished),
            }));
        }
    }

    /// Opens a phase span; the [`PhaseEvent`] is recorded when the returned
    /// guard drops. When disabled, the guard is inert.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        if !self.inner.enabled {
            return SpanGuard {
                collector: None,
                name: String::new(),
                begin: self.inner.epoch,
            };
        }
        SpanGuard {
            collector: Some(self.clone()),
            name: name.into(),
            begin: Instant::now(),
        }
    }

    /// Records an instant event. No-op when disabled.
    pub fn mark(&self, name: &str, value: u64) {
        if !self.inner.enabled {
            return;
        }
        let at_ns = self.now_ns();
        self.inner.events.lock().push(TraceEvent::Mark(MarkEvent {
            name: name.to_string(),
            at_ns,
            value,
        }));
    }

    /// Appends already-recorded events (from a [`TraceCollector::fork`]ed
    /// collector's snapshot). No-op when disabled.
    pub fn extend(&self, events: Vec<TraceEvent>) {
        if !self.inner.enabled {
            return;
        }
        self.inner.events.lock().extend(events);
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        TraceSnapshot {
            events: self.inner.events.lock().clone(),
        }
    }

    /// Drops all recorded events (between benchmark iterations).
    pub fn clear(&self) {
        self.inner.events.lock().clear();
    }
}

fn instant_ns(epoch: Instant, at: Instant) -> u64 {
    // Saturating: an instant from before the epoch (impossible in normal
    // wiring, where the collector outlives the clusters) clamps to 0.
    u64::try_from(at.saturating_duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard for a phase span; records a [`PhaseEvent`] when dropped.
#[must_use = "the span ends when the guard drops — bind it to a variable"]
pub struct SpanGuard {
    collector: Option<TraceCollector>,
    name: String,
    begin: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(collector) = self.collector.take() {
            let begin_ns = instant_ns(collector.inner.epoch, self.begin);
            let end_ns = collector.now_ns();
            collector
                .inner
                .events
                .lock()
                .push(TraceEvent::Phase(PhaseEvent {
                    name: std::mem::take(&mut self.name),
                    begin_ns,
                    end_ns,
                }));
        }
    }
}

/// An immutable copy of a collector's events.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// All recorded events, in recording order.
    pub events: Vec<TraceEvent>,
}

impl TraceSnapshot {
    /// The task events.
    pub fn tasks(&self) -> impl Iterator<Item = &TaskEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Task(t) => Some(t),
            _ => None,
        })
    }

    /// The phase events.
    pub fn phases(&self) -> impl Iterator<Item = &PhaseEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Phase(p) => Some(p),
            _ => None,
        })
    }

    /// The instant events.
    pub fn marks(&self) -> impl Iterator<Item = &MarkEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Mark(m) => Some(m),
            _ => None,
        })
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Executor analytics
// ---------------------------------------------------------------------------

/// Utilization analysis of one stage, derived from its [`TaskEvent`]s.
#[derive(Debug, Clone)]
pub struct StageAnalytics {
    /// The metrics stage id.
    pub stage_id: usize,
    /// The stage's operator name.
    pub stage: String,
    /// Number of task events.
    pub tasks: usize,
    /// First queued → last finished.
    pub span: Duration,
    /// Summed task busy time.
    pub busy: Duration,
    /// Summed task queue wait.
    pub queue_wait: Duration,
    /// `busy / (slots × span)`: the fraction of available slot-time the
    /// stage actually used, in `[0, 1]`.
    pub occupancy: f64,
    /// `1 − occupancy`, in `[0, 1]`.
    pub idle_fraction: f64,
    /// Median task queue wait.
    pub queue_wait_p50: Duration,
    /// 95th-percentile task queue wait.
    pub queue_wait_p95: Duration,
    /// Worst task queue wait.
    pub queue_wait_max: Duration,
    /// The longest single task (the stage's contribution to the critical
    /// path under unbounded parallelism).
    pub longest_task: Duration,
    /// Busy time per slot id (index = slot), the stage's occupancy timeline
    /// across the simulated cores. Padded to the analysed slot count, so
    /// slots the stage never touched show up as zero busy time.
    pub slot_busy: Vec<Duration>,
    /// Tasks that ran on a different slot than static round-robin would
    /// assign ([`crate::executor::steal_count`]) — how much the dynamic
    /// claim backfilled idle slots, e.g. for skew-split sub-partitions.
    pub stolen_tasks: usize,
}

impl StageAnalytics {
    /// Occupancy of the stage's **least-busy** slot, in `[0, 1]`:
    /// `min(slot_busy) / span`. The straggler indicator — a stage whose one
    /// oversized task pins a single slot scores ~0 here even when that slot
    /// is saturated, which is exactly what skew-aware group splitting is
    /// meant to raise.
    pub fn min_slot_occupancy(&self) -> f64 {
        if self.span.is_zero() {
            return 1.0;
        }
        let min = self
            .slot_busy
            .iter()
            .min()
            .copied()
            .unwrap_or(Duration::ZERO);
        (min.as_secs_f64() / self.span.as_secs_f64()).clamp(0.0, 1.0)
    }
}

/// Executor utilization derived from a [`TraceSnapshot`] — the timeline view
/// next to the aggregate [`crate::MetricsReport`].
#[derive(Debug, Clone)]
pub struct ExecutorAnalytics {
    /// The slot count the occupancy is computed against.
    pub slots: usize,
    /// Per-stage analysis, in stage-id order.
    pub stages: Vec<StageAnalytics>,
}

impl ExecutorAnalytics {
    /// Analyses a snapshot's task events against `slots` executor slots.
    pub fn from_snapshot(snapshot: &TraceSnapshot, slots: usize) -> Self {
        let slots = slots.max(1);
        let mut by_stage: std::collections::BTreeMap<usize, Vec<&TaskEvent>> =
            std::collections::BTreeMap::new();
        for task in snapshot.tasks() {
            by_stage.entry(task.stage_id).or_default().push(task);
        }
        let stages = by_stage
            .into_iter()
            .map(|(stage_id, tasks)| stage_analytics(stage_id, &tasks, slots))
            .collect();
        Self { slots, stages }
    }

    /// A lower bound on the achievable wall time with unbounded slots: the
    /// sum over stages of their longest task (stages run sequentially, so a
    /// stage can never finish before its longest task does). The gap between
    /// measured wall time and this estimate is what better load balancing
    /// (e.g. CL-P's δ-repartitioning) can recover.
    pub fn critical_path(&self) -> Duration {
        self.stages.iter().map(|s| s.longest_task).sum()
    }

    /// Total busy time across all stages.
    pub fn total_busy(&self) -> Duration {
        self.stages.iter().map(|s| s.busy).sum()
    }

    /// Busy-time-weighted mean occupancy across stages, in `[0, 1]`.
    pub fn overall_occupancy(&self) -> f64 {
        let span: f64 = self.stages.iter().map(|s| s.span.as_secs_f64()).sum();
        if span <= 0.0 {
            return 1.0;
        }
        let busy: f64 = self.stages.iter().map(|s| s.busy.as_secs_f64()).sum();
        // cast(slot counts are tiny — exact in f64)
        (busy / (self.slots as f64 * span)).clamp(0.0, 1.0)
    }

    /// `1 −` [`ExecutorAnalytics::overall_occupancy`].
    pub fn overall_idle_fraction(&self) -> f64 {
        1.0 - self.overall_occupancy()
    }
}

fn stage_analytics(stage_id: usize, tasks: &[&TaskEvent], slots: usize) -> StageAnalytics {
    let first_queued = tasks.iter().map(|t| t.queued_ns).min().unwrap_or(0);
    let last_finished = tasks.iter().map(|t| t.finished_ns).max().unwrap_or(0);
    let span = Duration::from_nanos(last_finished.saturating_sub(first_queued));
    let busy: Duration = tasks.iter().map(|t| t.busy()).sum();
    let queue_wait: Duration = tasks.iter().map(|t| t.queue_wait()).sum();
    let longest_task = tasks
        .iter()
        .map(|t| t.busy())
        .max()
        .unwrap_or(Duration::ZERO);
    let max_slot = tasks.iter().map(|t| t.slot).max().unwrap_or(0);
    let mut slot_busy = vec![Duration::ZERO; (max_slot + 1).max(slots)];
    for t in tasks {
        slot_busy[t.slot] += t.busy();
    }
    // Recording order is preserved per stage, so wide stages' concatenated
    // map/reduce waves split correctly at their task-index resets.
    let pairs: Vec<(usize, usize)> = tasks.iter().map(|t| (t.task, t.slot)).collect();
    let stolen_tasks = steal_count_indexed(&pairs, slots);
    let mut waits: Vec<Duration> = tasks.iter().map(|t| t.queue_wait()).collect();
    waits.sort_unstable();
    let occupancy = if span.is_zero() {
        1.0
    } else {
        // cast(slot counts are tiny — exact in f64)
        (busy.as_secs_f64() / (slots as f64 * span.as_secs_f64())).clamp(0.0, 1.0)
    };
    StageAnalytics {
        stage_id,
        stage: tasks
            .first()
            .map(|t| t.stage.to_string())
            .unwrap_or_default(),
        tasks: tasks.len(),
        span,
        busy,
        queue_wait,
        occupancy,
        idle_fraction: 1.0 - occupancy,
        queue_wait_p50: percentile(&waits, 50),
        queue_wait_p95: percentile(&waits, 95),
        queue_wait_max: waits.last().copied().unwrap_or(Duration::ZERO),
        longest_task,
        slot_busy,
        stolen_tasks,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[Duration], pct: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

fn micros(ns: u64) -> Json {
    // cast(trace timestamps — rounding beyond 2^53 ns (~3 months) is fine in a trace)
    Json::num(ns as f64 / 1e3)
}

fn chrome_event(name: &str, ph: &str, tid: usize, ts_ns: u64) -> Json {
    Json::obj()
        .with("name", Json::str(name))
        .with("ph", Json::str(ph))
        .with("pid", Json::num_usize(0))
        .with("tid", Json::num_usize(tid))
        .with("ts", micros(ts_ns))
}

fn thread_meta(tid: usize, name: &str, sort_index: usize) -> Vec<Json> {
    vec![
        chrome_event("thread_name", "M", tid, 0)
            .with("args", Json::obj().with("name", Json::str(name))),
        chrome_event("thread_sort_index", "M", tid, 0).with(
            "args",
            Json::obj().with("sort_index", Json::num_usize(sort_index)),
        ),
    ]
}

/// Renders a snapshot as a Chrome `trace_event` document ([`Json`] form).
///
/// Layout: one process (`pid` 0), thread 0 is the **phase track** (the
/// drivers' nested phase spans — nesting is by time containment, which is
/// how Perfetto stacks same-track complete events), and thread `slot + 1`
/// is the task track of executor slot `slot`. Instant events (shuffle
/// flushes, spill runs) land on the phase track.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(snapshot.events.len() + 8);
    events.push(chrome_event("process_name", "M", 0, 0).with(
        "args",
        Json::obj().with("name", Json::str("minispark simulated cluster")),
    ));
    events.extend(thread_meta(0, "phases", 0));
    let mut max_slot: Option<usize> = None;
    for event in &snapshot.events {
        match event {
            TraceEvent::Task(t) => {
                max_slot = Some(max_slot.map_or(t.slot, |m| m.max(t.slot)));
                events.push(
                    chrome_event(&t.stage, "X", t.slot + 1, t.started_ns)
                        .with("dur", micros(t.finished_ns.saturating_sub(t.started_ns)))
                        .with("cat", Json::str("task"))
                        .with(
                            "args",
                            Json::obj()
                                .with("stage_id", Json::num_usize(t.stage_id))
                                .with("task", Json::num_usize(t.task))
                                // cast(queue waits are far below u64::MAX ns ≈ 584 years)
                                .with("queue_wait_us", micros(t.queue_wait().as_nanos() as u64)),
                        ),
                );
            }
            TraceEvent::Phase(p) => {
                events.push(
                    chrome_event(&p.name, "X", 0, p.begin_ns)
                        .with("dur", micros(p.end_ns.saturating_sub(p.begin_ns)))
                        .with("cat", Json::str("phase")),
                );
            }
            TraceEvent::Mark(m) => {
                events.push(
                    chrome_event(&m.name, "i", 0, m.at_ns)
                        .with("s", Json::str("t"))
                        .with("cat", Json::str("mark"))
                        .with("args", Json::obj().with("value", Json::num_u64(m.value))),
                );
            }
        }
    }
    if let Some(max) = max_slot {
        for slot in 0..=max {
            events.extend(thread_meta(slot + 1, &format!("slot {slot}"), slot + 1));
        }
    }
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", Json::str("ms"))
}

/// [`chrome_trace`], rendered to a JSON string.
pub fn chrome_trace_json(snapshot: &TraceSnapshot) -> String {
    chrome_trace(snapshot).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(task: usize, slot: usize, q: u64, s: u64, f: u64) -> TaskEvent {
        TaskEvent {
            stage_id: 0,
            stage: Arc::from("stage"),
            task,
            slot,
            queued_ns: q,
            started_ns: s,
            finished_ns: f,
        }
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = TraceCollector::disabled();
        assert!(!c.is_enabled());
        {
            let _g = c.span("phase");
            c.mark("mark", 1);
        }
        c.record_stage_tasks(
            0,
            "s",
            &[TaskSpan {
                task: 0,
                slot: 0,
                queued: Instant::now(),
                started: Instant::now(),
                finished: Instant::now(),
            }],
        );
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn enabled_collector_records_phases_marks_tasks() {
        let c = TraceCollector::enabled();
        {
            let _g = c.span("phase-a");
            c.mark("flush", 42);
        }
        let now = Instant::now();
        c.record_stage_tasks(
            3,
            "stage-x",
            &[TaskSpan {
                task: 1,
                slot: 2,
                queued: now,
                started: now,
                finished: now,
            }],
        );
        let snap = c.snapshot();
        assert_eq!(snap.phases().count(), 1);
        assert_eq!(snap.marks().next().map(|m| m.value), Some(42));
        let task = snap.tasks().next().expect("task recorded");
        assert_eq!((task.stage_id, task.task, task.slot), (3, 1, 2));
        assert_eq!(&*task.stage, "stage-x");
        c.clear();
        assert!(c.snapshot().is_empty());
    }

    #[test]
    fn fork_shares_epoch_but_not_buffer() {
        let parent = TraceCollector::enabled();
        let child = parent.fork();
        child.mark("child-only", 1);
        assert!(parent.snapshot().is_empty());
        assert_eq!(child.snapshot().events.len(), 1);
        parent.extend(child.snapshot().events);
        assert_eq!(parent.snapshot().events.len(), 1);
    }

    #[test]
    fn phase_ordering_is_monotonic() {
        let c = TraceCollector::enabled();
        {
            let _g = c.span("outer");
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = c.snapshot();
        let p = snap.phases().next().expect("phase");
        assert!(p.end_ns >= p.begin_ns + 1_000_000 / 2);
    }

    #[test]
    fn analytics_compute_occupancy_and_waits() {
        // Two slots, span 100ns; slot 0 busy 100, slot 1 busy 40 after a
        // 60ns queue wait → occupancy (100+40)/200 = 0.7.
        let snap = TraceSnapshot {
            events: vec![
                TraceEvent::Task(span(0, 0, 0, 0, 100)),
                TraceEvent::Task(span(1, 1, 0, 60, 100)),
            ],
        };
        let a = ExecutorAnalytics::from_snapshot(&snap, 2);
        assert_eq!(a.stages.len(), 1);
        let s = &a.stages[0];
        assert_eq!(s.tasks, 2);
        assert_eq!(s.span, Duration::from_nanos(100));
        assert!((s.occupancy - 0.7).abs() < 1e-9);
        assert!((s.idle_fraction - 0.3).abs() < 1e-9);
        assert_eq!(s.queue_wait_max, Duration::from_nanos(60));
        assert_eq!(s.queue_wait_p50, Duration::ZERO);
        assert_eq!(s.longest_task, Duration::from_nanos(100));
        assert_eq!(s.slot_busy.len(), 2);
        assert_eq!(s.slot_busy[1], Duration::from_nanos(40));
        assert_eq!(a.critical_path(), Duration::from_nanos(100));
        assert_eq!(a.total_busy(), Duration::from_nanos(140));
        assert!(a.overall_occupancy() > 0.0);
        // Round-robin placement: nothing stolen; least-busy slot is slot 1
        // with 40/100 of the span.
        assert_eq!(s.stolen_tasks, 0);
        assert!((s.min_slot_occupancy() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn analytics_count_steals_and_pad_idle_slots() {
        // Three tasks, 4 analysed slots, everything on slot 0: tasks 1 and 2
        // deviate from round-robin over min(4, 3) = 3 workers.
        let snap = TraceSnapshot {
            events: vec![
                TraceEvent::Task(span(0, 0, 0, 0, 10)),
                TraceEvent::Task(span(1, 0, 0, 10, 20)),
                TraceEvent::Task(span(2, 0, 0, 20, 100)),
            ],
        };
        let a = ExecutorAnalytics::from_snapshot(&snap, 4);
        let s = &a.stages[0];
        assert_eq!(s.stolen_tasks, 2);
        // slot_busy is padded to the slot count; untouched slots are zero,
        // so the straggler indicator bottoms out.
        assert_eq!(s.slot_busy.len(), 4);
        assert_eq!(s.slot_busy[3], Duration::ZERO);
        assert_eq!(s.min_slot_occupancy(), 0.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let d: Vec<Duration> = (1..=10).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&d, 50), Duration::from_nanos(5));
        assert_eq!(percentile(&d, 95), Duration::from_nanos(10));
        assert_eq!(percentile(&d, 100), Duration::from_nanos(10));
        assert_eq!(percentile(&[], 50), Duration::ZERO);
    }

    #[test]
    fn chrome_trace_has_slot_tracks_and_parses() {
        let snap = TraceSnapshot {
            events: vec![
                TraceEvent::Phase(PhaseEvent {
                    name: "cl/phase/joining".into(),
                    begin_ns: 0,
                    end_ns: 5_000,
                }),
                TraceEvent::Task(span(0, 1, 0, 1_000, 3_000)),
                TraceEvent::Mark(MarkEvent {
                    name: "spill-run/x".into(),
                    at_ns: 2_000,
                    value: 1,
                }),
            ],
        };
        let doc = chrome_trace(&snap);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("chrome trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // Task on tid = slot + 1 = 2 with dur 2 µs.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("tid").and_then(Json::as_u64) == Some(2)
                && e.get("dur").and_then(Json::as_f64) == Some(2.0)
        }));
        // Thread metadata names the slot track.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("slot 1")
        }));
        // The phase span sits on tid 0.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("cl/phase/joining")
                && e.get("tid").and_then(Json::as_u64) == Some(0)
        }));
    }
}
