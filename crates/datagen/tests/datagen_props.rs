//! Property tests for the workload generators: structural validity,
//! determinism, and the distance-preservation contract of the dataset
//! increase.

use std::collections::HashSet;

use proptest::prelude::*;
use topk_datagen::{increase_dataset, CorpusProfile};
use topk_rankings::distance::footrule_raw;

fn profile(n: usize, k: usize, vocab: u32, seed: u64, dup: f64) -> CorpusProfile {
    CorpusProfile {
        name: "prop".into(),
        num_records: n,
        vocab_size: vocab,
        zipf_skew: 1.0,
        k,
        near_dup_rate: dup,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_rankings_are_valid(
        n in 1usize..120,
        k in 1usize..12,
        seed in any::<u64>(),
        dup in 0.0f64..0.9,
    ) {
        let vocab = (k as u32).max(20);
        let data = profile(n, k, vocab, seed, dup).generate();
        prop_assert_eq!(data.len(), n);
        for (idx, r) in data.iter().enumerate() {
            prop_assert_eq!(r.id(), idx as u64);
            prop_assert_eq!(r.k(), k);
            let unique: HashSet<u32> = r.items().iter().copied().collect();
            prop_assert_eq!(unique.len(), k, "duplicate items in record {}", idx);
            prop_assert!(r.items().iter().all(|&i| i < vocab));
        }
    }

    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let a = profile(60, 8, 40, seed, 0.3).generate();
        let b = profile(60, 8, 40, seed, 0.3).generate();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn increase_preserves_within_copy_distances(
        seed in any::<u64>(),
        times in 2usize..5,
    ) {
        let base = profile(40, 6, 30, seed, 0.2).generate();
        let increased = increase_dataset(&base, times, seed ^ 0xABCD);
        let n = base.len();
        prop_assert_eq!(increased.len(), times * n);
        for copy in 1..times {
            for i in (0..n).step_by(7) {
                for j in (0..n).step_by(5) {
                    if i == j {
                        continue;
                    }
                    prop_assert_eq!(
                        footrule_raw(&increased[copy * n + i], &increased[copy * n + j]),
                        footrule_raw(&base[i], &base[j]),
                        "copy {} pair ({}, {})",
                        copy,
                        i,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn increase_preserves_the_domain(seed in any::<u64>()) {
        let base = profile(50, 6, 30, seed, 0.2).generate();
        let domain: HashSet<u32> = base.iter().flat_map(|r| r.items().iter().copied()).collect();
        let x3 = increase_dataset(&base, 3, seed);
        for r in &x3 {
            for item in r.items() {
                prop_assert!(domain.contains(item), "item {} left the domain", item);
            }
        }
    }
}
