//! Corpus profiles and the record generator.
//!
//! A [`CorpusProfile`] captures the knobs that matter for the join's
//! behaviour: dataset size, vocabulary size, Zipf skew, ranking length `k`
//! and the near-duplicate rate. Two presets mimic the paper's corpora:
//!
//! * [`CorpusProfile::dblp_like`] — bibliography records: moderate skew,
//!   vocabulary about half the record count, a modest near-duplicate tail
//!   (similar titles by the same authors).
//! * [`CorpusProfile::orku_like`] — social-network membership sets: heavier
//!   skew (hub communities), larger vocabulary, more near-duplicates
//!   (mirrored/fan communities), and longer source records, which is why the
//!   paper's `k = 25` experiment uses ORKU.
//!
//! Generation mimics the paper's preprocessing: source records are drawn with
//! length ≥ `k` and truncated to their first `k` tokens; records that would
//! be shorter than `k` simply are not produced. Near-duplicates perturb an
//! earlier record by a couple of rank swaps or an item replacement —
//! precisely the distance-`≤ θc` pairs the clustering phase groups.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topk_rankings::{ItemId, Ranking};

use crate::zipf::ZipfSampler;

/// Parameters of a synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusProfile {
    /// Human-readable name (used by the harness in table/figure rows).
    pub name: String,
    /// Number of rankings to generate.
    pub num_records: usize,
    /// Vocabulary (item domain) size.
    pub vocab_size: u32,
    /// Zipf skew of the token distribution.
    pub zipf_skew: f64,
    /// Ranking length `k`.
    pub k: usize,
    /// Probability that a record is a perturbation of an earlier record.
    pub near_dup_rate: f64,
    /// RNG seed; same profile + seed ⇒ identical corpus.
    pub seed: u64,
}

impl CorpusProfile {
    /// A DBLP-like corpus of `num_records` top-`k` rankings.
    pub fn dblp_like(num_records: usize, k: usize) -> Self {
        Self {
            name: format!("DBLP(n={num_records},k={k})"),
            num_records,
            vocab_size: vocab_u32((num_records / 2).max(1_000)),
            zipf_skew: 0.8,
            k,
            near_dup_rate: 0.15,
            seed: 0xDB1F,
        }
    }

    /// An ORKU-like corpus of `num_records` top-`k` rankings.
    pub fn orku_like(num_records: usize, k: usize) -> Self {
        Self {
            name: format!("ORKU(n={num_records},k={k})"),
            num_records,
            vocab_size: vocab_u32(num_records.max(2_000)),
            zipf_skew: 1.05,
            k,
            near_dup_rate: 0.25,
            seed: 0x04C0,
        }
    }

    /// Returns a copy with a different seed (for independent repetitions).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the corpus. Ranking ids are `0..num_records`.
    pub fn generate(&self) -> Vec<Ranking> {
        assert!(self.k >= 1, "k must be at least 1");
        assert!(
            self.vocab_size as usize >= self.k,
            "vocabulary must be at least as large as k"
        );
        assert!(
            (0.0..=1.0).contains(&self.near_dup_rate),
            "near_dup_rate must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = ZipfSampler::new(self.vocab_size, self.zipf_skew);
        let mut records: Vec<Ranking> = Vec::with_capacity(self.num_records);
        for id in 0..self.num_records as u64 {
            let items = if !records.is_empty() && rng.gen_bool(self.near_dup_rate) {
                let source = &records[rng.gen_range(0..records.len())];
                perturb(source.items(), &zipf, &mut rng)
            } else {
                sample_distinct(self.k, &zipf, &mut rng)
            };
            records.push(Ranking::new_unchecked(id, items));
        }
        records
    }
}

/// Saturating vocabulary-size conversion: a corpus profile asking for more
/// than `u32::MAX` distinct tokens clamps to the largest representable
/// vocabulary instead of silently truncating.
fn vocab_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Draws `k` *distinct* Zipf items (rejection sampling with a uniform
/// fallback so heavy skew over a small vocabulary cannot loop forever).
fn sample_distinct(k: usize, zipf: &ZipfSampler, rng: &mut StdRng) -> Vec<ItemId> {
    let mut items: Vec<ItemId> = Vec::with_capacity(k);
    let mut attempts = 0usize;
    while items.len() < k {
        let candidate = if attempts < k * 64 {
            zipf.sample(rng)
        } else {
            // Fallback: uniform draws always terminate for vocab ≥ k.
            rng.gen_range(0..zipf.vocab_size())
        };
        attempts += 1;
        if !items.contains(&candidate) {
            items.push(candidate);
        }
    }
    items
}

/// Produces a near-duplicate of `source`.
///
/// Calibrated so that the paper's recommended clustering threshold
/// (θc = 0.03, i.e. a raw Footrule budget of 3 for k = 10) harvests the
/// bulk of the near-duplicates, as it does on the real corpora: most
/// perturbations are a single adjacent-rank swap (raw cost 2), some are two
/// swaps (cost ≤ 4), and a minority replace the bottom item (a farther
/// "reformulated" record).
fn perturb(source: &[ItemId], zipf: &ZipfSampler, rng: &mut StdRng) -> Vec<ItemId> {
    let mut items = source.to_vec();
    let k = items.len();
    if k >= 2 {
        let roll: f64 = rng.gen();
        if roll < 0.85 {
            // One adjacent swap (raw distance 2 to the source).
            let pos = rng.gen_range(0..k - 1);
            items.swap(pos, pos + 1);
            if roll < 0.25 {
                // Occasionally a second swap (raw distance ≤ 4).
                let pos = rng.gen_range(0..k - 1);
                items.swap(pos, pos + 1);
            }
        } else {
            // Replace the bottom-most item (cheapest position) by a fresh
            // one — a farther near-duplicate.
            let mut replacement = zipf.sample(rng);
            let mut attempts = 0;
            while items.contains(&replacement) {
                replacement = if attempts < 64 {
                    zipf.sample(rng)
                } else {
                    rng.gen_range(0..zipf.vocab_size())
                };
                attempts += 1;
            }
            items[k - 1] = replacement;
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_rankings::distance::footrule_raw;

    #[test]
    fn generates_the_requested_shape() {
        let corpus = CorpusProfile::dblp_like(500, 10).generate();
        assert_eq!(corpus.len(), 500);
        for (idx, r) in corpus.iter().enumerate() {
            assert_eq!(r.id(), idx as u64);
            assert_eq!(r.k(), 10);
        }
    }

    #[test]
    fn is_deterministic_per_seed() {
        let a = CorpusProfile::dblp_like(200, 10).generate();
        let b = CorpusProfile::dblp_like(200, 10).generate();
        assert_eq!(a, b);
        let c = CorpusProfile::dblp_like(200, 10).with_seed(99).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn near_duplicates_exist() {
        // With near_dup_rate 0.25 there must be pairs at tiny distances.
        let corpus = CorpusProfile::orku_like(400, 10).generate();
        let mut close_pairs = 0usize;
        for i in 0..corpus.len() {
            for j in (i + 1)..corpus.len() {
                if footrule_raw(&corpus[i], &corpus[j]) <= 6 {
                    close_pairs += 1;
                }
            }
        }
        assert!(close_pairs > 20, "only {close_pairs} near-duplicate pairs");
    }

    #[test]
    fn token_frequencies_are_skewed() {
        let corpus = CorpusProfile::orku_like(1000, 10).generate();
        let freq = topk_rankings::FrequencyTable::from_rankings(&corpus);
        let rel = freq.relative_frequencies();
        // The most frequent token should dominate the median token clearly.
        let median = rel[rel.len() / 2];
        assert!(
            rel[0] > 10.0 * median,
            "top = {}, median = {}",
            rel[0],
            median
        );
    }

    #[test]
    fn k25_profile_works() {
        let corpus = CorpusProfile::orku_like(100, 25).generate();
        assert!(corpus.iter().all(|r| r.k() == 25));
    }

    #[test]
    #[should_panic(expected = "vocabulary")]
    fn rejects_vocab_smaller_than_k() {
        let profile = CorpusProfile {
            name: "bad".into(),
            num_records: 1,
            vocab_size: 3,
            zipf_skew: 1.0,
            k: 5,
            near_dup_rate: 0.0,
            seed: 1,
        };
        let _ = profile.generate();
    }

    #[test]
    fn oversized_profiles_saturate_the_vocabulary() {
        // A profile sized beyond u32::MAX distinct tokens must clamp to the
        // largest representable vocabulary, not wrap around to a tiny one
        // (the old `as u32` truncated 2^32 + 6 record counts to 6 tokens).
        let profile = CorpusProfile::orku_like((1usize << 32) + 6, 10);
        assert_eq!(profile.vocab_size, u32::MAX);
        let profile = CorpusProfile::dblp_like((1usize << 33) + 10, 10);
        assert_eq!(profile.vocab_size, u32::MAX);
        // Realistic sizes are untouched.
        assert_eq!(CorpusProfile::orku_like(5_000, 10).vocab_size, 5_000);
        assert_eq!(CorpusProfile::dblp_like(5_000, 10).vocab_size, 2_500);
    }

    #[test]
    fn perturb_keeps_length_and_distinctness() {
        let mut rng = StdRng::seed_from_u64(3);
        let zipf = ZipfSampler::new(100, 1.0);
        let source: Vec<ItemId> = (0..10).collect();
        for _ in 0..200 {
            let p = perturb(&source, &zipf, &mut rng);
            assert_eq!(p.len(), 10);
            let unique: std::collections::HashSet<_> = p.iter().collect();
            assert_eq!(unique.len(), 10, "duplicate items after perturbation");
        }
    }

    #[test]
    fn sample_distinct_survives_tight_vocabulary() {
        // vocab == k forces the fallback path.
        let mut rng = StdRng::seed_from_u64(11);
        let zipf = ZipfSampler::new(10, 2.0);
        let items = sample_distinct(10, &zipf, &mut rng);
        let unique: std::collections::HashSet<_> = items.iter().collect();
        assert_eq!(unique.len(), 10);
    }
}
