//! The ×N dataset increase (§7: "we also increase their size using the same
//! method as in [10, 24], where the domain of the items remains the same, and
//! the join result increases approximately linearly with the size of the
//! dataset").
//!
//! Implemented as in the set-similarity-join literature: every extra copy of
//! the dataset applies one **frequency-preserving token permutation** to all
//! records — each token is swapped with a token of (near-)equal frequency,
//! consistently within the copy. Consequences, all matching the method's
//! stated properties:
//!
//! * the item domain is unchanged (the permutation is a bijection on it),
//! * the token frequency distribution is unchanged up to the permutation
//!   window (so prefix selectivity and posting-list skew are preserved),
//! * distances *within* one copy equal the original distances exactly
//!   (a bijection on items preserves overlaps and rank positions), so every
//!   copy reproduces the original join result — the result grows linearly
//!   in N, plus only coincidental cross-copy pairs,
//! * records from different copies are unrelated (different permutations),
//!   so copies do not flood the θc clustering phase.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use topk_rankings::{FrequencyTable, ItemId, Ranking};

/// Window size for the frequency-preserving permutation: tokens are
/// shuffled only with tokens whose frequency rank is within the same window
/// of this many positions, keeping each copy's frequency profile close to
/// the original's.
pub const PERMUTATION_WINDOW: usize = 16;

/// Increases `dataset` to `times × |dataset|` rankings with per-copy
/// frequency-preserving token permutations. Copy ids are
/// `r.id() + c · id_stride` with `id_stride = max_id + 1`.
///
/// `times == 1` returns the dataset unchanged (the "×1" base case).
pub fn increase_dataset(dataset: &[Ranking], times: usize, seed: u64) -> Vec<Ranking> {
    assert!(times >= 1, "the increase factor must be at least 1");
    if dataset.is_empty() {
        return Vec::new();
    }
    let id_stride = dataset
        .iter()
        .map(topk_rankings::Ranking::id)
        .max()
        .unwrap_or(0)
        + 1;

    // Tokens sorted by descending frequency: permutations shuffle within
    // windows of this order.
    let freq = FrequencyTable::from_rankings(dataset);
    let mut tokens: Vec<ItemId> = dataset
        .iter()
        .flat_map(|r| r.items().iter().copied())
        .collect();
    tokens.sort_unstable();
    tokens.dedup();
    tokens.sort_by_key(|&t| std::cmp::Reverse(freq.order_key(t)));

    let mut out = Vec::with_capacity(dataset.len() * times);
    out.extend_from_slice(dataset);
    for c in 1..times as u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c));
        // Build the copy's permutation: shuffle tokens inside each
        // frequency window.
        let mut permuted = tokens.clone();
        for window in permuted.chunks_mut(PERMUTATION_WINDOW) {
            window.shuffle(&mut rng);
        }
        let mapping: std::collections::HashMap<ItemId, ItemId> = tokens
            .iter()
            .copied()
            .zip(permuted.iter().copied())
            .collect();
        for r in dataset {
            let items: Vec<ItemId> = r.items().iter().map(|item| mapping[item]).collect();
            out.push(Ranking::new_unchecked(r.id() + c * id_stride, items));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusProfile;
    use std::collections::HashSet;
    use topk_rankings::distance::{footrule_raw, raw_threshold};

    fn base() -> Vec<Ranking> {
        CorpusProfile::dblp_like(300, 10).generate()
    }

    #[test]
    fn times_one_is_identity() {
        let ds = base();
        assert_eq!(increase_dataset(&ds, 1, 1), ds);
    }

    #[test]
    fn empty_dataset_stays_empty() {
        assert!(increase_dataset(&[], 5, 1).is_empty());
    }

    #[test]
    fn size_and_ids_scale() {
        let ds = base();
        let x5 = increase_dataset(&ds, 5, 1);
        assert_eq!(x5.len(), 5 * ds.len());
        let ids: HashSet<u64> = x5.iter().map(topk_rankings::Ranking::id).collect();
        assert_eq!(ids.len(), x5.len(), "copy ids must be unique");
        for r in &x5 {
            assert_eq!(r.k(), 10);
        }
    }

    #[test]
    fn copies_are_valid_rankings() {
        let ds = base();
        let x3 = increase_dataset(&ds, 3, 2);
        for r in &x3 {
            let unique: HashSet<_> = r.items().iter().collect();
            assert_eq!(unique.len(), r.k(), "duplicate items in {r}");
        }
    }

    #[test]
    fn domain_is_preserved_exactly() {
        let ds = base();
        let original_domain: HashSet<u32> =
            ds.iter().flat_map(|r| r.items().iter().copied()).collect();
        let x5 = increase_dataset(&ds, 5, 4);
        let new_domain: HashSet<u32> = x5.iter().flat_map(|r| r.items().iter().copied()).collect();
        assert_eq!(new_domain, original_domain);
    }

    #[test]
    fn within_copy_distances_equal_the_original() {
        // The defining property of a per-copy item bijection.
        let ds = base();
        let n = ds.len();
        let x3 = increase_dataset(&ds, 3, 5);
        for copy in 1..3 {
            for i in (0..40).step_by(7) {
                for j in (1..40).step_by(11) {
                    let original = footrule_raw(&ds[i], &ds[j]);
                    let shifted = footrule_raw(&x3[copy * n + i], &x3[copy * n + j]);
                    assert_eq!(original, shifted, "copy {copy}, pair ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn result_grows_linearly() {
        let ds = CorpusProfile::dblp_like(150, 10).generate();
        let theta = raw_threshold(10, 0.3);
        let count_pairs = |data: &[Ranking]| {
            let mut n = 0usize;
            for i in 0..data.len() {
                for j in (i + 1)..data.len() {
                    if footrule_raw(&data[i], &data[j]) <= theta {
                        n += 1;
                    }
                }
            }
            n
        };
        let r1 = count_pairs(&ds);
        let x3 = increase_dataset(&ds, 3, 6);
        let r3 = count_pairs(&x3);
        assert!(r1 > 0, "base corpus produced no result pairs");
        // Each copy reproduces r1; cross-copy pairs are coincidental extras.
        assert!(r3 >= 3 * r1, "r3 = {r3} < 3·{r1}");
        assert!(
            (r3 as f64) < 6.0 * r1 as f64,
            "×3 grew the result superlinearly: r1 = {r1}, r3 = {r3}"
        );
    }

    #[test]
    fn frequency_profile_roughly_preserved() {
        let ds = base();
        let x2 = increase_dataset(&ds, 2, 7);
        let n = ds.len();
        let base_freq = FrequencyTable::from_rankings(&ds);
        let copy_freq = FrequencyTable::from_rankings(&x2[n..]);
        // The hottest token of the copy must be about as hot as the base's.
        let max_base = ds
            .iter()
            .flat_map(topk_rankings::Ranking::items)
            .map(|&t| base_freq.count(t))
            .max()
            .expect("base dataset is non-empty");
        let max_copy = x2[n..]
            .iter()
            .flat_map(topk_rankings::Ranking::items)
            .map(|&t| copy_freq.count(t))
            .max()
            .expect("copied half is non-empty");
        let ratio = max_copy as f64 / max_base as f64;
        assert!((0.5..=2.0).contains(&ratio), "hot-token ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_times() {
        let _ = increase_dataset(&base(), 0, 1);
    }
}
