//! Synthetic top-k ranking workloads for the EDBT 2020 reproduction.
//!
//! The paper evaluates on the DBLP and ORKU(T) set-similarity benchmark
//! datasets, truncated to top-k rankings (§7: "we simply take the first k
//! tokens in the sets, and consider them as items in the rankings", dropping
//! records shorter than `k`). Neither corpus is redistributable here, so this
//! crate generates synthetic stand-ins that reproduce the properties the
//! evaluation actually exercises:
//!
//! * **Zipf-distributed token frequencies** ([`zipf`]) — skew is what drives
//!   prefix selectivity, posting-list skew and therefore the CL-P
//!   repartitioning benefit,
//! * **near-duplicate records** ([`corpus`]) — real corpora contain clusters
//!   of almost-identical records (similar paper titles, mirrored community
//!   pages); they are what the CL clustering phase harvests,
//! * the **×N dataset increase** ([`increase`]) used by the paper (following
//!   Vernica et al.): the item domain stays fixed and the join result grows
//!   ≈ linearly with the dataset size,
//! * plain **text IO** ([`io`]) so generated datasets can be persisted and
//!   shared between harness runs.

#![warn(missing_docs)]

pub mod corpus;
pub mod increase;
pub mod io;
pub mod preprocess;
pub mod zipf;

pub use corpus::CorpusProfile;
pub use increase::increase_dataset;
pub use preprocess::{load_corpus_file, records_to_rankings, PreprocessStats};
pub use zipf::ZipfSampler;
