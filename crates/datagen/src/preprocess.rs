//! The paper's §7 preprocessing for real set-similarity corpora: "To
//! transform the records of these dataset into top-k rankings, we simply
//! take the first k tokens in the sets, and consider them as items in the
//! rankings. Since we are working with rankings of same size, we remove
//! records with size smaller than k. In addition, the datasets are
//! preprocessed as in \[10\], without the sorting of the records" — i.e.
//! exact-duplicate records are removed *before* truncation, so truncation
//! may reintroduce a small number of distance-0 rankings (which the paper
//! explicitly keeps).
//!
//! Use this with the original DBLP/ORKUT benchmark files (one record per
//! line, whitespace-separated integer tokens) to run the harness on the
//! real corpora instead of the synthetic stand-ins.

use std::collections::HashSet;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use topk_rankings::{ItemId, Ranking};

/// Statistics of one preprocessing run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Records read.
    pub records_read: usize,
    /// Records dropped as exact duplicates (pre-truncation, as in \[10\]).
    pub duplicates_dropped: usize,
    /// Records dropped for having fewer than `k` tokens.
    pub too_short_dropped: usize,
    /// Records dropped because a token repeated within the first `k`
    /// (rankings must not contain duplicate items).
    pub repeated_token_dropped: usize,
    /// Rankings produced.
    pub rankings_produced: usize,
}

/// Converts raw token records into top-k rankings per §7.
///
/// Each input record is a sequence of item tokens in record order. Records
/// are deduplicated exactly (pre-truncation), records shorter than `k` are
/// dropped, the survivors are truncated to their first `k` tokens. Records
/// whose first `k` tokens contain a repeat are dropped (the benchmark
/// corpora are token *sets*, so this does not occur there, but arbitrary
/// input must not produce invalid rankings). Ranking ids are assigned
/// sequentially.
pub fn records_to_rankings<I, R>(records: I, k: usize) -> (Vec<Ranking>, PreprocessStats)
where
    I: IntoIterator<Item = R>,
    R: AsRef<[ItemId]>,
{
    assert!(k >= 1, "k must be at least 1");
    let mut stats = PreprocessStats::default();
    let mut seen: HashSet<Vec<ItemId>> = HashSet::new();
    let mut out = Vec::new();
    for record in records {
        let tokens = record.as_ref();
        stats.records_read += 1;
        if !seen.insert(tokens.to_vec()) {
            stats.duplicates_dropped += 1;
            continue;
        }
        if tokens.len() < k {
            stats.too_short_dropped += 1;
            continue;
        }
        let head = &tokens[..k];
        let distinct: HashSet<&ItemId> = head.iter().collect();
        if distinct.len() != k {
            stats.repeated_token_dropped += 1;
            continue;
        }
        out.push(Ranking::new_unchecked(out.len() as u64, head.to_vec()));
    }
    stats.rankings_produced = out.len();
    (out, stats)
}

/// Loads a benchmark corpus file (one record per line, whitespace-separated
/// integer tokens; blank lines and `#` comments skipped) and preprocesses it
/// with [`records_to_rankings`].
pub fn load_corpus_file(path: &Path, k: usize) -> std::io::Result<(Vec<Ranking>, PreprocessStats)> {
    let reader = BufReader::new(File::open(path)?);
    let mut records: Vec<Vec<ItemId>> = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Result<Vec<ItemId>, _> =
            line.split_ascii_whitespace().map(str::parse).collect();
        match tokens {
            Ok(tokens) => records.push(tokens),
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad token in corpus line: {e}"),
                ))
            }
        }
    }
    Ok(records_to_rankings(records, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncates_and_drops_short_records() {
        let records = vec![
            vec![1u32, 2, 3, 4, 5], // → [1,2,3]
            vec![9, 8],             // too short
            vec![7, 6, 5],          // exactly k
        ];
        let (rankings, stats) = records_to_rankings(records, 3);
        assert_eq!(rankings.len(), 2);
        assert_eq!(rankings[0].items(), &[1, 2, 3]);
        assert_eq!(rankings[1].items(), &[7, 6, 5]);
        assert_eq!(stats.too_short_dropped, 1);
        assert_eq!(stats.records_read, 3);
        assert_eq!(stats.rankings_produced, 2);
    }

    #[test]
    fn dedups_before_truncation() {
        // Two identical records → one ranking; two records equal only after
        // truncation → both kept (the paper: "it can happen that we have a
        // small amount of records with distance 0 to each other").
        let records = vec![
            vec![1u32, 2, 3, 4],
            vec![1, 2, 3, 4], // exact duplicate → dropped
            vec![1, 2, 3, 5], // same first 3 tokens → kept
        ];
        let (rankings, stats) = records_to_rankings(records, 3);
        assert_eq!(rankings.len(), 2);
        assert_eq!(stats.duplicates_dropped, 1);
        assert_eq!(rankings[0].items(), rankings[1].items());
    }

    #[test]
    fn drops_records_with_repeated_head_tokens() {
        let records = vec![vec![1u32, 1, 2, 3]];
        let (rankings, stats) = records_to_rankings(records, 3);
        assert!(rankings.is_empty());
        assert_eq!(stats.repeated_token_dropped, 1);
    }

    #[test]
    fn ids_are_sequential() {
        let records = vec![vec![1u32, 2], vec![3, 4], vec![5, 6]];
        let (rankings, _) = records_to_rankings(records, 2);
        let ids: Vec<u64> = rankings.iter().map(topk_rankings::Ranking::id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn corpus_file_round_trip() -> Result<(), Box<dyn std::error::Error>> {
        let path = std::env::temp_dir().join(format!("topk-preprocess-{}.txt", std::process::id()));
        std::fs::write(&path, "# corpus\n10 20 30 40\n10 20\n\n50 60 70\n")?;
        let (rankings, stats) = load_corpus_file(&path, 3)?;
        assert_eq!(rankings.len(), 2);
        assert_eq!(stats.too_short_dropped, 1);
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn corpus_file_rejects_garbage() -> Result<(), Box<dyn std::error::Error>> {
        let path =
            std::env::temp_dir().join(format!("topk-preprocess-bad-{}.txt", std::process::id()));
        std::fs::write(&path, "10 twenty 30\n")?;
        assert!(load_corpus_file(&path, 2).is_err());
        std::fs::remove_file(&path)?;
        Ok(())
    }
}
