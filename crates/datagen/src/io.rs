//! Plain-text dataset IO.
//!
//! One ranking per line: the ranking id, then the `k` item ids top-rank
//! first, whitespace-separated — the same shape as the benchmark files used
//! by the set-similarity-join literature (each line a record of tokens), with
//! an explicit id column so datasets survive shuffling.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use topk_rankings::{Ranking, RankingError};

/// Errors raised while loading a dataset.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What failed to parse.
        message: String,
    },
    /// A parsed ranking was invalid (duplicate items, empty).
    Invalid {
        /// 1-based line number of the offending line.
        line: usize,
        /// The underlying validation error.
        source: RankingError,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line, message } => write!(f, "line {line}: {message}"),
            LoadError::Invalid { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Writes `rankings` to `path`, one per line.
pub fn write_rankings(path: &Path, rankings: &[Ranking]) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    for r in rankings {
        write!(out, "{}", r.id())?;
        for item in r.items() {
            write!(out, " {item}")?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads a dataset written by [`write_rankings`]. Blank lines and lines
/// starting with `#` are skipped.
pub fn read_rankings(path: &Path) -> Result<Vec<Ranking>, LoadError> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let id: u64 = fields
            .next()
            .expect("trimmed non-empty line has a first field")
            .parse()
            .map_err(|e| LoadError::Parse {
                line: line_no,
                message: format!("bad ranking id: {e}"),
            })?;
        let items: Result<Vec<u32>, _> = fields.map(str::parse).collect();
        let items = items.map_err(|e| LoadError::Parse {
            line: line_no,
            message: format!("bad item id: {e}"),
        })?;
        let ranking = Ranking::new(id, items).map_err(|source| LoadError::Invalid {
            line: line_no,
            source,
        })?;
        out.push(ranking);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusProfile;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("topk-datagen-{}-{tag}.txt", std::process::id()))
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    #[test]
    fn round_trip() -> TestResult {
        let ds = CorpusProfile::dblp_like(50, 10).generate();
        let path = temp_path("roundtrip");
        write_rankings(&path, &ds)?;
        let loaded = read_rankings(&path)?;
        assert_eq!(loaded, ds);
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn skips_comments_and_blank_lines() -> TestResult {
        let path = temp_path("comments");
        std::fs::write(&path, "# header\n\n1 10 20 30\n\n# tail\n2 40 50 60\n")?;
        let loaded = read_rankings(&path)?;
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].items(), &[10, 20, 30]);
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() -> TestResult {
        let path = temp_path("badparse");
        std::fs::write(&path, "1 10 20\nnot-an-id 1 2\n")?;
        let err = read_rankings(&path).expect_err("second line cannot parse");
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn reports_invalid_rankings() -> TestResult {
        let path = temp_path("dupitem");
        std::fs::write(&path, "7 1 2 2\n")?;
        let err = read_rankings(&path).expect_err("duplicate item is invalid");
        match err {
            LoadError::Invalid { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn missing_file_is_io_error() {
        let err =
            read_rankings(Path::new("/nonexistent/nope.txt")).expect_err("the file does not exist");
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn empty_file_loads_empty_dataset() -> TestResult {
        let path = temp_path("empty");
        std::fs::write(&path, "")?;
        assert!(read_rankings(&path)?.is_empty());
        std::fs::remove_file(&path)?;
        Ok(())
    }
}
