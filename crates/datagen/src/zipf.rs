//! A Zipf sampler over item ids `0..v`.
//!
//! Item `i` (0-based) is drawn with probability proportional to
//! `1 / (i + 1)^s`. Implemented by inverse-CDF lookup over a precomputed
//! cumulative table — O(v) memory, O(log v) per sample, numerically exact
//! enough for workload generation (and property-tested for monotonicity and
//! frequency ordering).

use rand::Rng;

/// Zipf-distributed sampler over `0..vocab_size`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    skew: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `vocab_size` items with skew exponent `s ≥ 0`
    /// (`s = 0` is uniform; real text corpora sit near `s ≈ 1`).
    ///
    /// # Panics
    /// Panics if `vocab_size == 0` or `s` is negative/non-finite.
    pub fn new(vocab_size: u32, s: f64) -> Self {
        assert!(vocab_size > 0, "vocabulary must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "skew must be a finite non-negative number"
        );
        let mut cumulative = Vec::with_capacity(vocab_size as usize);
        let mut total = 0.0f64;
        for i in 0..vocab_size {
            total += 1.0 / f64::from(i + 1).powf(s);
            cumulative.push(total);
        }
        Self {
            cumulative,
            skew: s,
        }
    }

    /// The vocabulary size.
    pub fn vocab_size(&self) -> u32 {
        // cast(the table is built from 0..vocab_size, a u32 — len fits u32)
        self.cumulative.len() as u32
    }

    /// The skew exponent.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Draws one item id in `0..vocab_size`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let total = *self.cumulative.last().expect("non-empty table");
        let needle = rng.gen::<f64>() * total;
        // First index whose cumulative weight exceeds the needle.
        // cast(partition_point ≤ len ≤ u32::MAX — see vocab_size)
        self.cumulative.partition_point(|&c| c <= needle) as u32
    }

    /// The probability of item `i` (for analysis and Eq.-4 estimates).
    pub fn probability(&self, i: u32) -> f64 {
        let total = *self.cumulative.last().expect("non-empty table");
        let prev = if i == 0 {
            0.0
        } else {
            self.cumulative[(i - 1) as usize]
        };
        (self.cumulative[i as usize] - prev) / total
    }

    /// Relative frequencies of the `top_n` most likely items, descending —
    /// matching the input shape of
    /// `topk_rankings::bounds::expected_posting_list_len`.
    pub fn top_frequencies(&self, top_n: usize) -> Vec<f64> {
        let cap = u32::try_from(top_n)
            .unwrap_or(u32::MAX)
            .min(self.vocab_size());
        (0..cap).map(|i| self.probability(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_orders_frequencies() {
        let z = ZipfSampler::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 50];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Item 0 must dominate item 10, which must dominate item 40.
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
        // Rough magnitude: p(0)/p(9) = 10^1.2 ≈ 15.8.
        let ratio = f64::from(counts[0]) / f64::from(counts[9].max(1));
        assert!((8.0..32.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count = {c}");
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(200, 0.9);
        let sum: f64 = (0..200).map(|i| z.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Monotone non-increasing.
        for i in 1..200 {
            assert!(z.probability(i) <= z.probability(i - 1) + 1e-12);
        }
    }

    #[test]
    fn top_frequencies_shape() {
        let z = ZipfSampler::new(10, 1.0);
        assert_eq!(z.top_frequencies(3).len(), 3);
        assert_eq!(z.top_frequencies(99).len(), 10);
    }

    #[test]
    fn top_frequencies_saturates_oversized_requests() {
        // Requests beyond u32::MAX must clamp to the vocabulary, not wrap:
        // the old `top_n as u32` turned 2^32 into 0 and returned nothing.
        let z = ZipfSampler::new(10, 1.0);
        assert_eq!(z.top_frequencies(1usize << 32).len(), 10);
        assert_eq!(z.top_frequencies(usize::MAX).len(), 10);
    }

    #[test]
    #[should_panic(expected = "vocabulary")]
    fn rejects_empty_vocabulary() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn rejects_negative_skew() {
        let _ = ZipfSampler::new(10, -1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = ZipfSampler::new(1000, 1.0);
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
