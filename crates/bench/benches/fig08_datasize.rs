//! Figure 8: CL-P under dataset increase (DBLP ×1 / ×2 / ×4; the paper uses
//! ×1/×5/×10 at full scale).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_datagen::increase_dataset;
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let base = common::dblp(common::DBLP_N / 2);
    let mut group = c.benchmark_group("fig08/DBLP-increase");
    common::tune(&mut group);
    for times in [1usize, 2, 4] {
        let data = increase_dataset(&base, times, 0xF8);
        for theta in [0.2, 0.4] {
            let config = JoinConfig::new(theta).with_partition_threshold(data.len() / 20);
            group.bench_with_input(
                BenchmarkId::new(format!("x{times}"), theta),
                &config,
                |b, config| {
                    b.iter(|| {
                        Algorithm::ClP
                            .run(&common::cluster(), &data, config)
                            .expect("join failed")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
