//! Figure 11: rankings of size k = 25 (ORKU extract), all four algorithms
//! over θ.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_datagen::CorpusProfile;
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = CorpusProfile::orku_like(common::ORKU_N / 2, 25).generate();
    let mut group = c.benchmark_group("fig11/ORKU-k25");
    common::tune(&mut group);
    for theta in [0.1, 0.3] {
        for algo in Algorithm::paper_lineup() {
            let config = JoinConfig::new(theta).with_partition_threshold(data.len() / 20);
            group.bench_with_input(
                BenchmarkId::new(algo.name(), theta),
                &config,
                |b, config| {
                    b.iter(|| {
                        algo.run(&common::cluster(), &data, config)
                            .expect("join failed")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
