//! Micro-benchmarks of the hot kernels: Footrule distance (plain and
//! early-exit), the bounds, frequency ordering and the engine's shuffle —
//! the per-candidate costs everything else multiplies.

mod common;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use topk_rankings::bounds::{min_overlap, ordered_prefix_len, overlap_prefix_len};
use topk_rankings::distance::{
    footrule_pairs_within, footrule_raw, footrule_sorted_within, footrule_within, raw_threshold,
};
use topk_rankings::{FrequencyTable, OrderedRanking};

fn bench(c: &mut Criterion) {
    let data = common::dblp(2_000);
    let freq = FrequencyTable::from_rankings(&data);
    let a = &data[0];
    let b = &data[1];
    let theta_raw = raw_threshold(10, 0.3);

    let mut group = c.benchmark_group("micro");
    common::tune(&mut group);

    group.bench_function("footrule_raw_k10", |bench| {
        bench.iter(|| footrule_raw(black_box(a), black_box(b)))
    });
    group.bench_function("footrule_within_k10", |bench| {
        bench.iter(|| footrule_within(black_box(a), black_box(b), black_box(theta_raw)))
    });
    group.bench_function("ordered_pairs_distance_k10", |bench| {
        let oa = OrderedRanking::by_frequency(a, &freq);
        let ob = OrderedRanking::by_frequency(b, &freq);
        bench.iter(|| oa.footrule_within(black_box(&ob), black_box(theta_raw)))
    });
    // The verification fast path against its retained reference: the
    // O(k²) naive scan over unsorted pairs vs. the O(k) two-pointer merge
    // over the item-sorted shadow view (same results, different cost —
    // `bench_kernels` captures the same comparison across a k grid).
    group.bench_function("verify_naive_scan_k10", |bench| {
        let oa = OrderedRanking::by_frequency(a, &freq);
        let ob = OrderedRanking::by_frequency(b, &freq);
        bench.iter(|| {
            footrule_pairs_within(
                black_box(oa.pairs()),
                black_box(ob.pairs()),
                black_box(theta_raw),
            )
        })
    });
    group.bench_function("verify_sorted_merge_k10", |bench| {
        let oa = OrderedRanking::by_frequency(a, &freq);
        let ob = OrderedRanking::by_frequency(b, &freq);
        bench.iter(|| {
            footrule_sorted_within(
                black_box(oa.pairs_by_item()),
                black_box(ob.pairs_by_item()),
                black_box(theta_raw),
            )
        })
    });
    group.bench_function("prefix_bounds_k10", |bench| {
        bench.iter(|| {
            (
                overlap_prefix_len(black_box(10), black_box(theta_raw)),
                ordered_prefix_len(black_box(10), black_box(theta_raw)),
                min_overlap(black_box(10), black_box(theta_raw)),
            )
        })
    });
    group.bench_function("order_by_frequency_k10", |bench| {
        bench.iter(|| OrderedRanking::by_frequency(black_box(a), black_box(&freq)))
    });
    group.bench_function("engine_group_by_key_20k", |bench| {
        let pairs: Vec<(u32, u64)> = (0..20_000u64).map(|n| ((n % 97) as u32, n)).collect();
        bench.iter(|| {
            let cluster = common::cluster();
            cluster
                .parallelize(pairs.clone(), 16)
                .group_by_key("bench", 16)
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
