//! Benchmarks for the beyond-the-paper extensions: the Jaccard joins
//! (§8 future work), the variable-length join (footnote 1) and the online
//! range-search index.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topk_rankings::Ranking;
use topk_simjoin::{jaccard_cl_join, jaccard_vj_join, varlen_join, JaccardConfig, RankingIndex};

fn mixed_length_corpus(n: usize) -> Vec<Ranking> {
    let base = common::dblp(n);
    let mut rng = StdRng::seed_from_u64(0x7A7);
    base.iter()
        .enumerate()
        .map(|(id, r)| {
            let k = [6usize, 8, 10][rng.gen_range(0..3)];
            Ranking::new_unchecked(id as u64, r.items()[..k].to_vec())
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let sets = common::orku(common::ORKU_N);
    let mut group = c.benchmark_group("extensions");
    common::tune(&mut group);

    for theta in [0.3, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("jaccard-vj", theta),
            &theta,
            |b, &theta| {
                b.iter(|| {
                    jaccard_vj_join(&common::cluster(), &sets, &JaccardConfig::new(theta))
                        .expect("join failed")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("jaccard-cl", theta),
            &theta,
            |b, &theta| {
                b.iter(|| {
                    jaccard_cl_join(&common::cluster(), &sets, &JaccardConfig::new(theta))
                        .expect("join failed")
                })
            },
        );
    }

    let mixed = mixed_length_corpus(common::DBLP_N);
    for theta_raw in [11u64, 33] {
        group.bench_with_input(
            BenchmarkId::new("varlen-join", theta_raw),
            &theta_raw,
            |b, &theta_raw| {
                b.iter(|| {
                    varlen_join(&common::cluster(), &mixed, theta_raw, 16).expect("join failed")
                })
            },
        );
    }

    let data = common::orku(common::ORKU_N);
    group.bench_function("index-build", |b| {
        b.iter(|| RankingIndex::build(&data, 0.3).expect("build failed"))
    });
    let index = RankingIndex::build(&data, 0.3).expect("build failed");
    group.bench_function("index-range-query", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 17) % data.len();
            index.range_query(&data[i], 0.2).expect("query failed")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
