//! Figure 12: VJ / VJ-NL / CL under a varying number of partitions
//! (θ = 0.3; the paper's grid is {86, 186, 286} — mild influence expected).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::dblp(common::DBLP_N);
    let mut group = c.benchmark_group("fig12/DBLP");
    common::tune(&mut group);
    for partitions in [16usize, 86, 186, 286] {
        for algo in [Algorithm::Vj, Algorithm::VjNl, Algorithm::Cl] {
            let config = JoinConfig::new(0.3).with_partitions(partitions);
            group.bench_with_input(
                BenchmarkId::new(algo.name(), partitions),
                &config,
                |b, config| {
                    b.iter(|| {
                        algo.run(&common::cluster(), &data, config)
                            .expect("join failed")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
