//! Figure 7: CL-P scalability — 4 vs. 8 simulated nodes (DBLPx5, ORKU).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minispark::{Cluster, ClusterConfig};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::orku(common::ORKU_N);
    let mut group = c.benchmark_group("fig07/ORKU");
    common::tune(&mut group);
    for nodes in [4usize, 8] {
        for theta in [0.2, 0.4] {
            let config = JoinConfig::new(theta).with_partition_threshold(data.len() / 20);
            group.bench_with_input(
                BenchmarkId::new(format!("{nodes}nodes"), theta),
                &config,
                |b, config| {
                    b.iter(|| {
                        let cluster = Cluster::new(
                            ClusterConfig::paper_scalability(nodes).with_default_partitions(16),
                        );
                        Algorithm::ClP
                            .run(&cluster, &data, config)
                            .expect("join failed")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
