//! Figure 9: CL under varying clustering threshold θc (the paper finds
//! θc = 0.03 near-optimal and recommends θc < 0.05).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::orku(common::ORKU_N);
    let mut group = c.benchmark_group("fig09/ORKU");
    common::tune(&mut group);
    for theta_c in [0.01, 0.03, 0.05, 0.1] {
        for theta in [0.2, 0.4] {
            let config = JoinConfig::new(theta).with_cluster_threshold(theta_c);
            group.bench_with_input(
                BenchmarkId::new(format!("theta_c={theta_c}"), theta),
                &config,
                |b, config| {
                    b.iter(|| {
                        Algorithm::Cl
                            .run(&common::cluster(), &data, config)
                            .expect("join failed")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
