//! Figure 10: CL-P under varying partitioning threshold δ (a shallow
//! optimum: too small δ over-splits and pays join overhead, too large δ
//! never splits).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::orku(common::ORKU_N);
    let mut group = c.benchmark_group("fig10/ORKU");
    common::tune(&mut group);
    let base = data.len() / 20;
    for delta in [base / 8, base / 2, base, base * 4, base * 32] {
        let config = JoinConfig::new(0.3).with_partition_threshold(delta.max(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("delta={delta}")),
            &config,
            |b, config| {
                b.iter(|| {
                    Algorithm::ClP
                        .run(&common::cluster(), &data, config)
                        .expect("join failed")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
