//! Figure 6: VJ / VJ-NL / CL / CL-P over the distance threshold θ.
//!
//! The paper's headline comparison (Figures 6a–6e over DBLP/ORKU and their
//! increased variants): VJ wins at θ = 0.1, CL and CL-P take over as θ
//! grows. This regression bench runs the same series on the scaled corpora.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    for (dataset, data) in [
        ("DBLP", common::dblp(common::DBLP_N)),
        ("ORKU", common::orku(common::ORKU_N)),
    ] {
        let mut group = c.benchmark_group(format!("fig06/{dataset}"));
        common::tune(&mut group);
        for theta in [0.1, 0.25, 0.4] {
            for algo in Algorithm::paper_lineup() {
                let config = JoinConfig::new(theta).with_partition_threshold(data.len() / 20);
                group.bench_with_input(
                    BenchmarkId::new(algo.name(), theta),
                    &config,
                    |b, config| {
                        b.iter(|| {
                            algo.run(&common::cluster(), &data, config)
                                .expect("join failed")
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
