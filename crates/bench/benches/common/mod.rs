//! Shared knobs for the per-figure Criterion benches.
//!
//! The benches are regression-sized: small corpora, few samples, short
//! measurement windows. The full paper-scale sweeps live in the
//! `experiments` binary (`cargo run --release -p topk-bench --bin
//! experiments`).
//!
//! Each bench target uses its own subset of these helpers.
#![allow(dead_code)]

use std::time::Duration;

use criterion::{BenchmarkGroup, Criterion};
use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_rankings::Ranking;

/// Benchmark corpus sizes (deliberately small; see module docs).
pub const DBLP_N: usize = 1_200;
/// ORKU-like benchmark corpus size.
pub const ORKU_N: usize = 1_600;

/// DBLP-like benchmark corpus.
pub fn dblp(n: usize) -> Vec<Ranking> {
    CorpusProfile::dblp_like(n, 10).generate()
}

/// ORKU-like benchmark corpus.
pub fn orku(n: usize) -> Vec<Ranking> {
    CorpusProfile::orku_like(n, 10).generate()
}

/// A fresh local cluster for one measured run.
pub fn cluster() -> Cluster {
    Cluster::new(ClusterConfig::local(4).with_default_partitions(16))
}

/// Applies the common regression-bench settings to a group.
pub fn tune<M: criterion::measurement::Measurement>(group: &mut BenchmarkGroup<'_, M>) {
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(400))
        .measurement_time(Duration::from_millis(1_500));
}

/// Standard Criterion config for the figure benches.
pub fn criterion() -> Criterion {
    Criterion::default().configure_from_args()
}
