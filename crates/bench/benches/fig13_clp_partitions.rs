//! Figure 13: CL-P under a varying number of partitions (θ = 0.3; the paper
//! sweeps 286–686 and finds little sensitivity).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::dblp(common::DBLP_N);
    let mut group = c.benchmark_group("fig13/DBLP");
    common::tune(&mut group);
    for partitions in [86usize, 286, 486, 686] {
        let config = JoinConfig::new(0.3)
            .with_partitions(partitions)
            .with_partition_threshold(data.len() / 20);
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &config,
            |b, config| {
                b.iter(|| {
                    Algorithm::ClP
                        .run(&common::cluster(), &data, config)
                        .expect("join failed")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
