//! Ablations: each design ingredient toggled off on a fixed CL run —
//! frequency ordering (via the ordered prefix), the position filter, the
//! expansion triangle bounds and Lemma 5.3's mixed thresholds. Results are
//! invariant (tested elsewhere); only the work changes.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_rankings::PrefixKind;
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::orku(common::ORKU_N);
    let mut group = c.benchmark_group("ablations/ORKU");
    common::tune(&mut group);
    let base = JoinConfig::new(0.3).with_partition_threshold(data.len() / 150);
    let cases: Vec<(&str, Algorithm, JoinConfig)> = vec![
        ("cl-default", Algorithm::Cl, base.clone()),
        (
            "cl-no-triangle",
            Algorithm::Cl,
            base.clone().with_triangle_bounds(false),
        ),
        (
            "cl-no-lemma53",
            Algorithm::Cl,
            base.clone().with_lemma53(false),
        ),
        ("vjnl-default", Algorithm::VjNl, base.clone()),
        (
            "vjnl-no-posfilter",
            Algorithm::VjNl,
            base.clone().with_position_filter(false),
        ),
        (
            "vjnl-ordered-prefix",
            Algorithm::VjNl,
            base.clone().with_prefix(PrefixKind::Ordered),
        ),
    ];
    for (label, algo, config) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                algo.run(&common::cluster(), &data, config)
                    .expect("join failed")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
