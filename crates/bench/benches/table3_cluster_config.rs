//! Table 3: the executor configuration. As a benchmark, this measures how
//! the simulated executor layout (task slots) affects one fixed CL-P run —
//! the runtime counterpart of the paper's static parameter table.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minispark::{Cluster, ClusterConfig};
use topk_simjoin::{Algorithm, JoinConfig};

fn bench(c: &mut Criterion) {
    let data = common::orku(common::ORKU_N);
    let mut group = c.benchmark_group("table3/executor-layout");
    common::tune(&mut group);
    // "tiny executors" (1 core), the paper's 5-core recommendation, and a
    // "fat" layout — total slots held comparable where possible.
    for (label, executors, cores) in [
        ("tiny-1core", 8, 1),
        ("paper-5core", 2, 5),
        ("fat-10core", 1, 10),
    ] {
        let config = JoinConfig::new(0.3).with_partition_threshold(data.len() / 20);
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                let cluster = Cluster::new(ClusterConfig {
                    nodes: 1,
                    executors_per_node: executors,
                    cores_per_executor: cores,
                    default_partitions: 16,
                    ..ClusterConfig::default()
                });
                Algorithm::ClP
                    .run(&cluster, &data, config)
                    .expect("join failed")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
