//! Harness-level observability smoke test: with a capture installed, the
//! figure measurement path produces one run report per run (validating
//! against the schema) and a Chrome trace containing the run umbrellas and
//! driver phase spans of all four paper algorithms.

use minispark::{ClusterConfig, Json};
use topk_bench::capture::Capture;
use topk_bench::{datasets, figures};
use topk_simjoin::{report, Algorithm, JoinConfig};

#[test]
fn capture_collects_valid_reports_and_phase_spans() {
    std::env::set_var("TOPK_SCALE", "0.02");
    let capture = Capture::install();
    let workload = datasets::dblp();
    let config = JoinConfig::new(0.2).with_partition_threshold(50);
    for algo in Algorithm::paper_lineup() {
        let row = figures::measure("smoke", ClusterConfig::local(2), &workload, algo, &config);
        assert_eq!(row.algorithm, algo.name());
    }
    std::env::remove_var("TOPK_SCALE");

    // One validated report per measured run.
    let reports = capture.reports();
    assert_eq!(reports.len(), 4);
    let doc = topk_simjoin::runs_to_json(&reports);
    report::validate(&doc).expect("the batch report validates");
    let parsed = Json::parse(&doc.render()).expect("the report renders to valid JSON");
    report::validate(&parsed).expect("the parsed report validates");
    for report in &reports {
        let analytics = report.analytics.as_ref().expect("capture enables tracing");
        assert!(!analytics.stages.is_empty());
    }

    // The shared trace holds run umbrellas and phase spans for every
    // algorithm, and renders to a parseable Chrome document.
    let text = minispark::trace::chrome_trace_json(&capture.trace().snapshot());
    let trace = Json::parse(&text).expect("the Chrome trace parses");
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let has_name = |name: &str| {
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some(name))
    };
    for label in ["vj", "vj-nl", "cl", "cl-p"] {
        assert!(
            has_name(&format!("{label}/run")),
            "{label}/run span missing"
        );
        for phase in ["ordering", "joining"] {
            assert!(
                has_name(&format!("{label}/phase/{phase}")),
                "{label}/phase/{phase} span missing"
            );
        }
    }
    // The harness's own umbrella around each measured run.
    assert!(events.iter().any(|e| {
        e.get("name")
            .and_then(Json::as_str)
            .is_some_and(|n| n.starts_with("run/smoke/"))
    }));
}
