//! Smoke tests for the figure runners: every runner must produce a complete,
//! internally consistent row set at tiny scale. (The full sweeps are the
//! `experiments` binary's job; these tests pin the harness plumbing.)

use std::sync::Mutex;

use topk_bench::figures;

/// The runners read TOPK_SCALE from the environment; serialize the tests so
/// they don't race on it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn at_tiny_scale<T>(f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap();
    std::env::set_var("TOPK_SCALE", "0.02");
    let out = f();
    std::env::remove_var("TOPK_SCALE");
    out
}

#[test]
fn fig6_produces_the_full_grid() {
    let rows = at_tiny_scale(figures::fig6);
    // 5 datasets × 4 thresholds × 4 algorithms.
    assert_eq!(rows.len(), 5 * 4 * 4);
    // Within one (dataset, θ) cell every algorithm reports the same pairs.
    for chunk in rows.chunks(4) {
        let first = chunk[0].pairs;
        for row in chunk {
            assert_eq!(
                row.pairs, first,
                "{} disagrees in {}",
                row.algorithm, row.dataset
            );
            assert!(row.seconds > 0.0);
        }
    }
}

#[test]
fn fig7_scales_nodes() {
    let rows = at_tiny_scale(figures::fig7);
    assert_eq!(rows.len(), 2 * 2 * 4);
    assert!(rows.iter().all(|r| r.algorithm == "CL-P"));
    let nodes: std::collections::HashSet<usize> = rows.iter().map(|r| r.nodes).collect();
    assert_eq!(nodes, [4, 8].into_iter().collect());
}

#[test]
fn fig8_result_grows_linearly_with_the_increase() {
    let rows = at_tiny_scale(figures::fig8);
    assert_eq!(rows.len(), 3 * 4);
    let base: Vec<_> = rows.iter().filter(|r| r.dataset == "DBLP").collect();
    let x5: Vec<_> = rows.iter().filter(|r| r.dataset == "DBLPx5").collect();
    for (b, x) in base.iter().zip(&x5) {
        assert!(
            x.pairs >= 5 * b.pairs,
            "×5 result {} not ≥ 5 × base {}",
            x.pairs,
            b.pairs
        );
    }
}

#[test]
fn fig9_to_fig13_produce_rows() {
    let (f9, f10, f11, f12, f13, abl) = at_tiny_scale(|| {
        (
            figures::fig9(),
            figures::fig10(),
            figures::fig11(),
            figures::fig12(),
            figures::fig13(),
            figures::ablations(),
        )
    });
    assert_eq!(f9.len(), 3 * 4 * 5);
    assert_eq!(f10.len(), 3 * 2 * 6);
    assert_eq!(f11.len(), 4 * 4);
    assert_eq!(f12.len(), 2 * 3 * 3);
    assert_eq!(f13.len(), 5);
    assert_eq!(abl.len(), 2 * 7);
    // Every ablation row at one θ reports the identical pair count.
    for chunk in abl.chunks(7) {
        assert!(chunk.iter().all(|r| r.pairs == chunk[0].pairs));
    }
}

#[test]
fn phase_breakdown_sums_to_something() {
    let phases = at_tiny_scale(|| figures::phase_breakdown(0.2));
    assert!(phases.iter().any(|(name, _)| name.contains("cl/join")));
    assert!(phases.iter().map(|(_, s)| s).sum::<f64>() > 0.0);
}
