//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation as CSV series.
//!
//! ```text
//! experiments [fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table3|all] …
//!
//! TOPK_SCALE=2.0 experiments fig6     # run at twice the default size
//! ```
//!
//! Results are printed to stdout and also written to `results/<id>.csv`.

use std::path::PathBuf;

use topk_bench::figures;
use topk_bench::report::{print_csv, write_csv, Row};

fn results_dir() -> PathBuf {
    std::env::var("TOPK_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn run_figure(id: &str) -> bool {
    let rows: Vec<Row> = match id {
        "fig6" => figures::fig6(),
        "fig7" => figures::fig7(),
        "fig8" => figures::fig8(),
        "fig9" => figures::fig9(),
        "fig10" => figures::fig10(),
        "fig11" => figures::fig11(),
        "fig12" => figures::fig12(),
        "fig13" => figures::fig13(),
        "ablations" => figures::ablations(),
        "phases" => {
            for theta in [0.1, 0.4] {
                println!("== CL-P phase breakdown at θ = {theta} (ORKU) ==");
                let phases = figures::phase_breakdown(theta);
                let total: f64 = phases.iter().map(|(_, s)| s).sum();
                for (phase, seconds) in phases {
                    println!(
                        "{phase:<24} {:>8.1} ms  ({:>4.1}%)",
                        seconds * 1e3,
                        100.0 * seconds / total
                    );
                }
            }
            return true;
        }
        "table3" => {
            println!("== Table 3: Spark parameters (paper) vs. simulated cluster ==");
            for (key, value) in figures::table3() {
                println!("{key:<28} {value}");
            }
            return true;
        }
        _ => return false,
    };
    eprintln!("# {id}: {} rows", rows.len());
    print_csv(&rows);
    let path = results_dir().join(format!("{id}.csv"));
    match write_csv(&path, &rows) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write {}: {e}", path.display()),
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        [
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablations",
            "phases",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    } else {
        args
    };

    eprintln!(
        "# workload scale: TOPK_SCALE = {} (DBLP base {}, ORKU base {})",
        topk_bench::datasets::scale(),
        topk_bench::datasets::DBLP_BASE,
        topk_bench::datasets::ORKU_BASE,
    );
    for id in ids {
        if !run_figure(&id) {
            eprintln!(
                "unknown experiment '{id}' — expected fig6..fig13, ablations, phases, table3 or all"
            );
            std::process::exit(2);
        }
    }
}
