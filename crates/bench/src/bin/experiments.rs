//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation as CSV series.
//!
//! ```text
//! experiments [fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table3|all] …
//!             [--scale <f>] [--trace-out <path>] [--report-out <path>]
//!             [--live-port <port>] [--metrics-out <path>]
//!
//! TOPK_SCALE=2.0 experiments fig6     # run at twice the default size
//! experiments fig6 --scale 0.05 --trace-out trace.json --report-out run.json
//! experiments fig8 --live-port 9898   # curl localhost:9898/metrics mid-run
//! ```
//!
//! Results are printed to stdout and also written to `results/<id>.csv`.
//! With `--trace-out`, every run records onto one shared trace timeline and
//! a Chrome `trace_event` document (Perfetto-loadable) is written at the
//! end; with `--report-out`, one JSON run report per measured run (metrics,
//! stats, configs, executor analytics, heartbeat) is written. `--live-port`
//! serves live Prometheus `/metrics` and JSON `/snapshot` for the run in
//! flight (port 0 picks an ephemeral port), and `--metrics-out` writes every
//! run's final telemetry snapshot as one JSON batch; either flag switches
//! measured clusters to telemetry + heartbeat mode. `--scale` is a
//! command-line synonym for the `TOPK_SCALE` environment variable.

use std::path::PathBuf;

use minispark::Json;
use topk_bench::capture::{Capture, CaptureSettings};
use topk_bench::figures;
use topk_bench::report::{print_csv, write_csv, Row};

fn results_dir() -> PathBuf {
    std::env::var("TOPK_RESULTS_DIR").map_or_else(|_| PathBuf::from("results"), PathBuf::from)
}

fn run_figure(id: &str) -> bool {
    let rows: Vec<Row> = match id {
        "fig6" => figures::fig6(),
        "fig7" => figures::fig7(),
        "fig8" => figures::fig8(),
        "fig9" => figures::fig9(),
        "fig10" => figures::fig10(),
        "fig11" => figures::fig11(),
        "fig12" => figures::fig12(),
        "fig13" => figures::fig13(),
        "ablations" => figures::ablations(),
        "phases" => {
            for theta in [0.1, 0.4] {
                println!("== CL-P phase breakdown at θ = {theta} (ORKU) ==");
                let phases = figures::phase_breakdown(theta);
                let total: f64 = phases.iter().map(|(_, s)| s).sum();
                for (phase, seconds) in phases {
                    println!(
                        "{phase:<24} {:>8.1} ms  ({:>4.1}%)",
                        seconds * 1e3,
                        100.0 * seconds / total
                    );
                }
            }
            return true;
        }
        "table3" => {
            println!("== Table 3: Spark parameters (paper) vs. simulated cluster ==");
            for (key, value) in figures::table3() {
                println!("{key:<28} {value}");
            }
            return true;
        }
        _ => return false,
    };
    eprintln!("# {id}: {} rows", rows.len());
    print_csv(&rows);
    let path = results_dir().join(format!("{id}.csv"));
    match write_csv(&path, &rows) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write {}: {e}", path.display()),
    }
    true
}

/// Writes `text` to `path`, creating parent directories as needed.
fn write_output(path: &str, text: &str, what: &str) {
    let path = PathBuf::from(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("# could not create {}: {e}", parent.display());
                return;
            }
        }
    }
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("# wrote {what} to {}", path.display()),
        Err(e) => eprintln!("# could not write {}: {e}", path.display()),
    }
}

struct Options {
    ids: Vec<String>,
    trace_out: Option<String>,
    report_out: Option<String>,
    live_port: Option<u16>,
    metrics_out: Option<String>,
}

/// Splits the value-taking flags (`--scale`, `--trace-out`, `--report-out`,
/// `--live-port`, `--metrics-out`) from the experiment ids. `--scale` is
/// applied to `TOPK_SCALE` right here, before any workload is built.
fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut ids = Vec::new();
    let mut trace_out = None;
    let mut report_out = None;
    let mut live_port = None;
    let mut metrics_out = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" | "--trace-out" | "--report-out" | "--live-port" | "--metrics-out" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                match arg.as_str() {
                    "--scale" => {
                        value
                            .parse::<f64>()
                            .ok()
                            .filter(|s| s.is_finite() && *s > 0.0)
                            .ok_or_else(|| format!("--scale {value}: not a positive number"))?;
                        std::env::set_var("TOPK_SCALE", &value);
                    }
                    "--trace-out" => trace_out = Some(value),
                    "--report-out" => report_out = Some(value),
                    "--live-port" => {
                        live_port = Some(
                            value
                                .parse::<u16>()
                                .map_err(|_| format!("--live-port {value}: not a port number"))?,
                        );
                    }
                    _ => metrics_out = Some(value),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => ids.push(arg),
        }
    }
    Ok(Options {
        ids,
        trace_out,
        report_out,
        live_port,
        metrics_out,
    })
}

fn main() {
    let Options {
        ids: args,
        trace_out,
        report_out,
        live_port,
        metrics_out,
    } = match parse_args(std::env::args().skip(1).collect()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let capture = if trace_out.is_some()
        || report_out.is_some()
        || live_port.is_some()
        || metrics_out.is_some()
    {
        Some(Capture::install_with(CaptureSettings {
            live_port,
            metrics_out: metrics_out.clone().map(PathBuf::from),
        }))
    } else {
        None
    };
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        [
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablations",
            "phases",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect()
    } else {
        args
    };

    eprintln!(
        "# workload scale: TOPK_SCALE = {} (DBLP base {}, ORKU base {})",
        topk_bench::datasets::scale(),
        topk_bench::datasets::DBLP_BASE,
        topk_bench::datasets::ORKU_BASE,
    );
    for id in ids {
        if !run_figure(&id) {
            eprintln!(
                "unknown experiment '{id}' — expected fig6..fig13, ablations, phases, table3 or all"
            );
            std::process::exit(2);
        }
    }

    let Some(capture) = capture else { return };
    if let Some(path) = trace_out {
        let text = minispark::trace::chrome_trace_json(&capture.trace().snapshot());
        // Self-check: the emitted document must parse back.
        if let Err(e) = Json::parse(&text) {
            eprintln!("# internal error: chrome trace does not parse: {e}");
            std::process::exit(1);
        }
        write_output(&path, &text, "Chrome trace");
    }
    if let Some(path) = report_out {
        let doc = topk_simjoin::runs_to_json(&capture.reports());
        if let Err(e) = topk_simjoin::report::validate(&doc) {
            eprintln!("# internal error: run report fails validation: {e}");
            std::process::exit(1);
        }
        write_output(&path, &doc.render(), "run report");
    }
    if let Some(path) = metrics_out {
        let doc = capture.metrics_document();
        write_output(&path, &doc.render(), "telemetry snapshots");
    }
}
