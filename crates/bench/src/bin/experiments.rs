//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation as CSV series, plus the R-S and arrival-stream
//! experiments over external ranking files.
//!
//! ```text
//! experiments [fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|table3|all] …
//!             [rs --right <path>] [arrivals --arrivals <path> [--batch-size <n>]]
//!             [--scale <f>] [--trace-out <path>] [--report-out <path>]
//!             [--live-port <port>] [--metrics-out <path>]
//!
//! TOPK_SCALE=2.0 experiments fig6     # run at twice the default size
//! experiments fig6 --scale 0.05 --trace-out trace.json --report-out run.json
//! experiments fig8 --live-port 9898   # curl localhost:9898/metrics mid-run
//! experiments rs --right other.txt    # R-S join: ORKU corpus vs. a file
//! experiments arrivals --arrivals stream.txt --batch-size 100
//! ```
//!
//! Results are printed to stdout and also written to `results/<id>.csv`.
//! With `--trace-out`, every run records onto one shared trace timeline and
//! a Chrome `trace_event` document (Perfetto-loadable) is written at the
//! end; with `--report-out`, one JSON run report per measured run (metrics,
//! stats, configs, executor analytics, heartbeat) is written. `--live-port`
//! serves live Prometheus `/metrics` and JSON `/snapshot` for the run in
//! flight (port 0 picks an ephemeral port), and `--metrics-out` writes every
//! run's final telemetry snapshot as one JSON batch (it requires
//! `--live-port`, which switches measured clusters to telemetry + heartbeat
//! mode). `--scale` is a command-line synonym for the `TOPK_SCALE`
//! environment variable.
//!
//! The `rs` experiment joins the scaled ORKU-like corpus (left) against the
//! rankings file named by `--right` with every R-S driver; `arrivals`
//! streams the file named by `--arrivals` against the same corpus in
//! mini-batches of `--batch-size` (default 64). Inconsistent flag combos —
//! `--right` together with `--arrivals`, `--batch-size` without
//! `--arrivals`, `--metrics-out` without `--live-port`, or an `rs`/
//! `arrivals` id without its input file (and vice versa) — are hard usage
//! errors, not silently ignored.

use std::path::PathBuf;

use minispark::Json;
use topk_bench::capture::{Capture, CaptureSettings};
use topk_bench::figures;
use topk_bench::report::{print_csv, write_csv, Row};

fn results_dir() -> PathBuf {
    std::env::var("TOPK_RESULTS_DIR").map_or_else(|_| PathBuf::from("results"), PathBuf::from)
}

fn run_figure(id: &str) -> bool {
    let rows: Vec<Row> = match id {
        "fig6" => figures::fig6(),
        "fig7" => figures::fig7(),
        "fig8" => figures::fig8(),
        "fig9" => figures::fig9(),
        "fig10" => figures::fig10(),
        "fig11" => figures::fig11(),
        "fig12" => figures::fig12(),
        "fig13" => figures::fig13(),
        "ablations" => figures::ablations(),
        "phases" => {
            for theta in [0.1, 0.4] {
                println!("== CL-P phase breakdown at θ = {theta} (ORKU) ==");
                let phases = figures::phase_breakdown(theta);
                let total: f64 = phases.iter().map(|(_, s)| s).sum();
                for (phase, seconds) in phases {
                    println!(
                        "{phase:<24} {:>8.1} ms  ({:>4.1}%)",
                        seconds * 1e3,
                        100.0 * seconds / total
                    );
                }
            }
            return true;
        }
        "table3" => {
            println!("== Table 3: Spark parameters (paper) vs. simulated cluster ==");
            for (key, value) in figures::table3() {
                println!("{key:<28} {value}");
            }
            return true;
        }
        _ => return false,
    };
    emit_rows(id, &rows);
    true
}

/// Prints a row set as CSV and mirrors it to `results/<id>.csv`.
fn emit_rows(id: &str, rows: &[Row]) {
    eprintln!("# {id}: {} rows", rows.len());
    print_csv(rows);
    let path = results_dir().join(format!("{id}.csv"));
    match write_csv(&path, rows) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("# could not write {}: {e}", path.display()),
    }
}

/// The display name of an input file: its stem, or the whole path when
/// there is none.
fn input_name(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map_or_else(|| path.to_string(), |s| s.to_string_lossy().into_owned())
}

/// Writes `text` to `path`, creating parent directories as needed.
fn write_output(path: &str, text: &str, what: &str) {
    let path = PathBuf::from(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("# could not create {}: {e}", parent.display());
                return;
            }
        }
    }
    match std::fs::write(&path, text) {
        Ok(()) => eprintln!("# wrote {what} to {}", path.display()),
        Err(e) => eprintln!("# could not write {}: {e}", path.display()),
    }
}

#[derive(Debug)]
struct Options {
    ids: Vec<String>,
    trace_out: Option<String>,
    report_out: Option<String>,
    live_port: Option<u16>,
    metrics_out: Option<String>,
    right: Option<String>,
    arrivals: Option<String>,
    batch_size: Option<usize>,
}

/// Splits the value-taking flags (`--scale`, `--trace-out`, `--report-out`,
/// `--live-port`, `--metrics-out`, `--right`, `--arrivals`, `--batch-size`)
/// from the experiment ids, then rejects inconsistent combinations — a
/// flag that contradicts another flag or an id that is missing its operand
/// is a usage error, never silently ignored. `--scale` is applied to
/// `TOPK_SCALE` right here, before any workload is built.
fn parse_args(args: Vec<String>) -> Result<Options, String> {
    let mut ids = Vec::new();
    let mut trace_out = None;
    let mut report_out = None;
    let mut live_port = None;
    let mut metrics_out = None;
    let mut right = None;
    let mut arrivals = None;
    let mut batch_size = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" | "--trace-out" | "--report-out" | "--live-port" | "--metrics-out"
            | "--right" | "--arrivals" | "--batch-size" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                match arg.as_str() {
                    "--scale" => {
                        value
                            .parse::<f64>()
                            .ok()
                            .filter(|s| s.is_finite() && *s > 0.0)
                            .ok_or_else(|| format!("--scale {value}: not a positive number"))?;
                        std::env::set_var("TOPK_SCALE", &value);
                    }
                    "--trace-out" => trace_out = Some(value),
                    "--report-out" => report_out = Some(value),
                    "--live-port" => {
                        live_port = Some(
                            value
                                .parse::<u16>()
                                .map_err(|_| format!("--live-port {value}: not a port number"))?,
                        );
                    }
                    "--right" => right = Some(value),
                    "--arrivals" => arrivals = Some(value),
                    "--batch-size" => {
                        batch_size =
                            Some(value.parse::<usize>().ok().filter(|&n| n > 0).ok_or_else(
                                || format!("--batch-size {value}: not a positive integer"),
                            )?);
                    }
                    _ => metrics_out = Some(value),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => ids.push(arg),
        }
    }
    let options = Options {
        ids,
        trace_out,
        report_out,
        live_port,
        metrics_out,
        right,
        arrivals,
        batch_size,
    };
    options.validate()?;
    Ok(options)
}

impl Options {
    /// Cross-flag consistency: every operand must be consumed by the
    /// requested experiments and every requested experiment must have its
    /// operand.
    fn validate(&self) -> Result<(), String> {
        if self.right.is_some() && self.arrivals.is_some() {
            return Err(
                "--right and --arrivals are mutually exclusive (run `rs` and `arrivals` \
                 separately)"
                    .into(),
            );
        }
        if self.batch_size.is_some() && self.arrivals.is_none() {
            return Err("--batch-size requires --arrivals".into());
        }
        if self.metrics_out.is_some() && self.live_port.is_none() {
            return Err(
                "--metrics-out requires --live-port (telemetry snapshots are only collected \
                 in live-telemetry mode)"
                    .into(),
            );
        }
        let wants_rs = self.ids.iter().any(|id| id == "rs");
        let wants_arrivals = self.ids.iter().any(|id| id == "arrivals");
        if wants_rs && self.right.is_none() {
            return Err("the rs experiment requires --right <path>".into());
        }
        if wants_arrivals && self.arrivals.is_none() {
            return Err("the arrivals experiment requires --arrivals <path>".into());
        }
        if self.right.is_some() && !wants_rs {
            return Err("--right is only consumed by the rs experiment".into());
        }
        if self.arrivals.is_some() && !wants_arrivals {
            return Err("--arrivals is only consumed by the arrivals experiment".into());
        }
        Ok(())
    }
}

/// Loads a rankings file for the `rs`/`arrivals` experiments, exiting with
/// a usage error when it cannot be read.
fn load_rankings(path: &str, flag: &str) -> Vec<topk_rankings::Ranking> {
    match topk_datagen::io::read_rankings(std::path::Path::new(path)) {
        Ok(rankings) => rankings,
        Err(e) => {
            eprintln!("{flag} {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let Options {
        ids: args,
        trace_out,
        report_out,
        live_port,
        metrics_out,
        right,
        arrivals,
        batch_size,
    } = match parse_args(std::env::args().skip(1).collect()) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let capture = if trace_out.is_some()
        || report_out.is_some()
        || live_port.is_some()
        || metrics_out.is_some()
    {
        Some(Capture::install_with(CaptureSettings {
            live_port,
            metrics_out: metrics_out.clone().map(PathBuf::from),
        }))
    } else {
        None
    };
    let ids: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        [
            "table3",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "ablations",
            "phases",
        ]
        .iter()
        .map(std::string::ToString::to_string)
        .collect()
    } else {
        args
    };

    eprintln!(
        "# workload scale: TOPK_SCALE = {} (DBLP base {}, ORKU base {})",
        topk_bench::datasets::scale(),
        topk_bench::datasets::DBLP_BASE,
        topk_bench::datasets::ORKU_BASE,
    );
    for id in ids {
        match id.as_str() {
            "rs" => {
                let path = right.as_deref().expect("validated: rs requires --right");
                let data = load_rankings(path, "--right");
                emit_rows("rs", &figures::rs_join_rows(&data, &input_name(path)));
            }
            "arrivals" => {
                let path = arrivals
                    .as_deref()
                    .expect("validated: arrivals requires --arrivals");
                let data = load_rankings(path, "--arrivals");
                let rows =
                    figures::arrivals_rows(&data, &input_name(path), batch_size.unwrap_or(64));
                emit_rows("arrivals", &rows);
            }
            _ if run_figure(&id) => {}
            _ => {
                eprintln!(
                    "unknown experiment '{id}' — expected fig6..fig13, ablations, phases, \
                     table3, rs, arrivals or all"
                );
                std::process::exit(2);
            }
        }
    }

    let Some(capture) = capture else { return };
    if let Some(path) = trace_out {
        let text = minispark::trace::chrome_trace_json(&capture.trace().snapshot());
        // Self-check: the emitted document must parse back.
        if let Err(e) = Json::parse(&text) {
            eprintln!("# internal error: chrome trace does not parse: {e}");
            std::process::exit(1);
        }
        write_output(&path, &text, "Chrome trace");
    }
    if let Some(path) = report_out {
        let doc = topk_simjoin::runs_to_json(&capture.reports());
        if let Err(e) = topk_simjoin::report::validate(&doc) {
            eprintln!("# internal error: run report fails validation: {e}");
            std::process::exit(1);
        }
        write_output(&path, &doc.render(), "run report");
    }
    if let Some(path) = metrics_out {
        let doc = capture.metrics_document();
        write_output(&path, &doc.render(), "telemetry snapshots");
    }
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn consistent_combinations_parse() {
        let o = parse_args(args(&["rs", "--right", "other.txt"])).expect("valid rs invocation");
        assert_eq!(o.ids, ["rs"]);
        assert_eq!(o.right.as_deref(), Some("other.txt"));

        let o = parse_args(args(&[
            "arrivals",
            "--arrivals",
            "s.txt",
            "--batch-size",
            "100",
        ]))
        .expect("valid arrivals invocation");
        assert_eq!(o.arrivals.as_deref(), Some("s.txt"));
        assert_eq!(o.batch_size, Some(100));

        let o =
            parse_args(args(&["arrivals", "--arrivals", "s.txt"])).expect("batch size is optional");
        assert_eq!(o.batch_size, None);

        let o = parse_args(args(&[
            "fig6",
            "--live-port",
            "0",
            "--metrics-out",
            "m.json",
        ]))
        .expect("metrics-out with live-port is valid");
        assert_eq!(o.live_port, Some(0));
    }

    #[test]
    fn conflicting_operands_are_hard_errors() {
        let e = parse_args(args(&["rs", "--right", "a", "--arrivals", "b"]))
            .expect_err("right and arrivals conflict");
        assert!(e.contains("mutually exclusive"), "{e}");

        let e = parse_args(args(&["fig6", "--batch-size", "8"]))
            .expect_err("batch-size without arrivals");
        assert!(e.contains("--batch-size requires --arrivals"), "{e}");

        let e = parse_args(args(&["fig6", "--metrics-out", "m.json"]))
            .expect_err("metrics-out without live-port");
        assert!(e.contains("--metrics-out requires --live-port"), "{e}");
    }

    #[test]
    fn missing_operands_are_hard_errors() {
        let e = parse_args(args(&["rs"])).expect_err("rs without --right");
        assert!(e.contains("requires --right"), "{e}");

        let e = parse_args(args(&["arrivals"])).expect_err("arrivals without --arrivals");
        assert!(e.contains("requires --arrivals"), "{e}");

        let e = parse_args(args(&["fig6", "--right", "a"])).expect_err("unconsumed --right");
        assert!(e.contains("only consumed by the rs experiment"), "{e}");

        let e = parse_args(args(&["fig6", "--arrivals", "a"])).expect_err("unconsumed --arrivals");
        assert!(
            e.contains("only consumed by the arrivals experiment"),
            "{e}"
        );
    }

    #[test]
    fn malformed_values_are_hard_errors() {
        assert!(parse_args(args(&["arrivals", "--arrivals", "s", "--batch-size", "0"])).is_err());
        assert!(parse_args(args(&["arrivals", "--arrivals", "s", "--batch-size", "x"])).is_err());
        assert!(parse_args(args(&["rs", "--right"])).is_err());
        assert!(parse_args(args(&["--bogus"])).is_err());
    }
}
