//! Serving-layer latency capture for the online similarity service.
//!
//! ```text
//! bench_serving [--quick] [--out PATH]
//! ```
//!
//! Drives a [`topk_simjoin::ServingIndex`] through three scenarios and
//! reports per-request latency quantiles:
//!
//! * **mix** — concurrent writers and readers at several upsert-vs-query
//!   ratios over the in-process API; p50/p99 read back from the service's
//!   own telemetry histograms (`serving_query_seconds`,
//!   `serving_upsert_seconds`), the same cells `/metrics` exposes,
//! * **http_qps** — paced closed-loop clients against a live
//!   [`topk_simjoin::ServingServer`] at a ladder of offered QPS levels;
//!   p50/p99 measured client-side (connect + request + full response),
//! * **durability** — single-ranking upserts with the write-ahead log on
//!   (`ServingIndex::open`) vs off (`ServingIndex::ephemeral`), isolating
//!   the WAL append + snapshot cost per write.
//!
//! Results go to stdout and, as an ordered-JSON document
//! (`topk-simjoin/bench-serving/v1`), to `--out` (default
//! `BENCH_serving.json`). `--quick` shrinks workloads for CI smoke runs.
//! Latency keys use the `_us` suffix, so the committed capture is guarded
//! by `cargo run -p xtask -- bench-diff` like the kernel numbers.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use minispark::{HistogramData, Json};
use topk_datagen::CorpusProfile;
use topk_rankings::Ranking;
use topk_simjoin::serving::FOREIGN_QUERY_ID;
use topk_simjoin::{ServingConfig, ServingIndex, ServingServer};

/// Build bound of every service under test (and the nearest-query bound).
const THETA_MAX: f64 = 0.3;
/// The θ every range query uses (inside the build bound).
const QUERY_THETA: f64 = 0.25;
/// Ranking length, matching the paper's default corpora.
const K: usize = 10;
/// Concurrent workload threads in the `mix` scenario.
const THREADS: usize = 4;
/// Closed-loop client connections in the `http_qps` scenario.
const CLIENTS: usize = 4;

struct Opts {
    quick: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: PathBuf::from("BENCH_serving.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_serving [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// A same-k variant of `r`: items rotated by `seed`, one adjacent swap —
/// close to the original, so replacement upserts exercise real postings.
fn mutated(r: &Ranking, seed: u64) -> Ranking {
    let items = r.items();
    let k = items.len();
    // cast(seed is reduced mod k, k ≤ a few dozen — fits usize exactly)
    let rot = (seed % k as u64) as usize;
    let mut rotated: Vec<u32> = items[rot..].to_vec();
    rotated.extend_from_slice(&items[..rot]);
    // cast(seed mod (k-1) is far below 2^53)
    let swap = (seed % (k as u64 - 1)) as usize;
    rotated.swap(swap, swap + 1);
    Ranking::new(r.id(), rotated).expect("a permutation of distinct items stays distinct")
}

/// A foreign query probe derived from corpus entry `idx`.
fn probe(corpus: &[Ranking], idx: u64) -> Ranking {
    // cast(idx is reduced mod corpus.len() — fits usize exactly)
    let base = &corpus[(idx % corpus.len() as u64) as usize];
    let variant = mutated(base, idx / 7 + 1);
    Ranking::new(FOREIGN_QUERY_ID, variant.items().to_vec())
        .expect("items stay a valid ranking under a new id")
}

/// Nearest-rank quantile of raw nanosecond samples, in microseconds.
fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    assert!(!sorted_ns.is_empty(), "no latency samples collected");
    // cast(sample counts are far below 2^53 — exact in f64; nearest-rank tolerates rounding)
    let rank = ((q * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    // cast(per-request latencies in ns are far below 2^53)
    sorted_ns[rank - 1] as f64 / 1e3
}

/// Snapshot of one serving histogram's buckets.
fn hist(service: &ServingIndex, name: &str) -> HistogramData {
    service.telemetry().histogram(name).data()
}

/// `after - before`, bucket-wise — isolates the requests a scenario issued
/// from anything recorded earlier on the same service (e.g. the seeding
/// batch, which would otherwise own the p99).
fn hist_delta(after: &HistogramData, before: &HistogramData) -> HistogramData {
    let earlier: std::collections::HashMap<usize, u64> = before.buckets.iter().copied().collect();
    let buckets: Vec<(usize, u64)> = after
        .buckets
        .iter()
        .filter_map(|&(idx, n)| {
            let n = n - earlier.get(&idx).copied().unwrap_or(0);
            (n > 0).then_some((idx, n))
        })
        .collect();
    HistogramData {
        buckets,
        count: after.count - before.count,
        sum: after.sum - before.sum,
    }
}

/// Histogram-bucket quantile, in microseconds.
fn hist_quantile_us(data: &HistogramData, q: f64) -> f64 {
    let value = data
        .quantile(q)
        .expect("the scenario recorded at least one sample");
    // cast(per-request latencies in ns are far below 2^53)
    value as f64 / 1e3
}

fn seeded_service(corpus: &[Ranking]) -> Arc<ServingIndex> {
    let service =
        ServingIndex::ephemeral(ServingConfig::new(THETA_MAX)).expect("ephemeral service");
    service.upsert_batch(corpus).expect("seed corpus");
    Arc::new(service)
}

/// One upsert-vs-query mix level: `THREADS` workers each run `ops` requests
/// against a freshly seeded service; `upsert_pct` of them replace a live
/// ranking, the rest run θ range queries. Quantiles come from the service's
/// telemetry histograms, so they measure exactly what `/metrics` reports.
fn bench_mix(upsert_pct: u64, corpus: &Arc<Vec<Ranking>>, opts: &Opts) -> Json {
    let ops_per_thread: u64 = if opts.quick { 150 } else { 800 };
    let service = seeded_service(corpus);
    let query_base = hist(&service, "serving_query_seconds");
    let upsert_base = hist(&service, "serving_upsert_seconds");

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..THREADS as u64 {
        let service = Arc::clone(&service);
        let corpus = Arc::clone(corpus);
        handles.push(std::thread::spawn(move || {
            for i in 0..ops_per_thread {
                let op = t * ops_per_thread + i;
                if op % 100 < upsert_pct {
                    // cast(op is reduced mod corpus.len() — fits usize exactly)
                    let target = &corpus[(op % corpus.len() as u64) as usize];
                    service
                        .upsert_batch(&[mutated(target, op)])
                        .expect("mix upsert");
                } else {
                    service
                        .query(&probe(&corpus, op), QUERY_THETA)
                        .expect("mix query");
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("mix worker");
    }
    let elapsed = start.elapsed().as_secs_f64();

    let total_ops = THREADS as u64 * ops_per_thread;
    let queries = hist_delta(&hist(&service, "serving_query_seconds"), &query_base);
    let upserts = hist_delta(&hist(&service, "serving_upsert_seconds"), &upsert_base);
    let query_p50 = hist_quantile_us(&queries, 0.50);
    let query_p99 = hist_quantile_us(&queries, 0.99);
    let upsert_p50 = hist_quantile_us(&upserts, 0.50);
    let upsert_p99 = hist_quantile_us(&upserts, 0.99);
    // cast(op counts are far below 2^53 — exact in f64)
    let throughput = total_ops as f64 / elapsed;
    println!(
        "mix    {upsert_pct:3}% upserts  {total_ops:6} ops  {throughput:9.0} ops/s  \
         query p50/p99 {query_p50:7.1}/{query_p99:7.1} µs  \
         upsert p50/p99 {upsert_p50:7.1}/{upsert_p99:7.1} µs",
    );

    Json::obj()
        .with("upsert_pct", Json::num_u64(upsert_pct))
        .with("ops", Json::num_u64(total_ops))
        .with("threads", Json::num_usize(THREADS))
        .with("elapsed_seconds", Json::num(elapsed))
        .with("ops_per_sec", Json::num(throughput))
        .with("query_p50_us", Json::num(query_p50))
        .with("query_p99_us", Json::num(query_p99))
        .with("upsert_p50_us", Json::num(upsert_p50))
        .with("upsert_p99_us", Json::num(upsert_p99))
}

/// One paced request over its own connection; returns the latency in ns.
fn timed_query(addr: SocketAddr, items_csv: &str) -> u64 {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "GET /query?theta={QUERY_THETA}&items={items_csv}&id={FOREIGN_QUERY_ID} HTTP/1.1\r\n\
         Host: bench\r\nConnection: close\r\n\r\n"
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    assert!(
        raw.starts_with(b"HTTP/1.1 200"),
        "query failed: {}",
        String::from_utf8_lossy(&raw)
    );
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One offered-QPS level: `CLIENTS` closed-loop clients pace requests so
/// their aggregate send rate is `offered_qps`, each over a fresh
/// connection. Latency is measured client-side, end to end.
fn bench_http_level(
    addr: SocketAddr,
    probes: &Arc<Vec<String>>,
    offered_qps: f64,
    opts: &Opts,
) -> Json {
    let duration_secs = if opts.quick { 0.6 } else { 1.5 };
    // cast(request budgets are small positive counts — f64 → u64 after max(1))
    let per_client = ((offered_qps * duration_secs / CLIENTS as f64).ceil() as u64).max(1);
    let interval = Duration::from_secs_f64(CLIENTS as f64 / offered_qps);

    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS as u64 {
        let probes = Arc::clone(probes);
        handles.push(std::thread::spawn(move || {
            // cast(per_client is a small request budget — fits usize)
            let mut samples = Vec::with_capacity(per_client as usize);
            let epoch = Instant::now();
            for i in 0..per_client {
                // cast(paced request indexes are small — exact in f64)
                let target = interval.mul_f64(i as f64);
                let now = epoch.elapsed();
                if target > now {
                    std::thread::sleep(target - now);
                }
                // cast(request index is reduced mod probes.len() — fits usize exactly)
                let csv = &probes[((c * per_client + i) % probes.len() as u64) as usize];
                samples.push(timed_query(addr, csv));
            }
            samples
        }));
    }
    let mut samples: Vec<u64> = Vec::new();
    for handle in handles {
        samples.extend(handle.join().expect("http client"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    samples.sort_unstable();

    let requests = samples.len();
    // cast(request counts are far below 2^53 — exact in f64)
    let achieved = requests as f64 / elapsed;
    let p50 = quantile_us(&samples, 0.50);
    let p99 = quantile_us(&samples, 0.99);
    println!(
        "http   offered {offered_qps:6.0} q/s  achieved {achieved:6.0} q/s  \
         {requests:5} requests  p50/p99 {p50:7.1}/{p99:7.1} µs",
    );

    Json::obj()
        .with("offered_qps", Json::num(offered_qps))
        .with("clients", Json::num_usize(CLIENTS))
        .with("requests", Json::num_usize(requests))
        .with("achieved_qps", Json::num(achieved))
        .with("latency_p50_us", Json::num(p50))
        .with("latency_p99_us", Json::num(p99))
}

fn bench_http_qps(corpus: &Arc<Vec<Ranking>>, opts: &Opts) -> Vec<Json> {
    let service = seeded_service(corpus);
    let server = ServingServer::start(0, service, CLIENTS).expect("start server");
    let addr = server.addr();
    let probes: Arc<Vec<String>> = Arc::new(
        (0..64u64)
            .map(|i| {
                let items: Vec<String> = probe(corpus, i)
                    .items()
                    .iter()
                    .map(u32::to_string)
                    .collect();
                items.join(",")
            })
            .collect(),
    );
    let levels: &[f64] = if opts.quick {
        &[150.0, 600.0]
    } else {
        &[200.0, 1000.0, 4000.0]
    };
    levels
        .iter()
        .map(|&qps| bench_http_level(addr, &probes, qps, opts))
        .collect()
}

/// Durable vs ephemeral single-ranking upserts: the WAL append (and the
/// periodic snapshot it triggers) is the entire difference.
fn bench_durability(corpus: &Arc<Vec<Ranking>>, opts: &Opts) -> Json {
    let upserts: u64 = if opts.quick { 300 } else { 2000 };
    let dir = std::env::temp_dir().join(format!("topk-bench-serving-{}", std::process::id()));
    // errors(best-effort temp-dir cleanup)
    let _ = std::fs::remove_dir_all(&dir);

    let config = ServingConfig::new(THETA_MAX);
    let (durable, _) = ServingIndex::open(&dir, config.clone()).expect("open durable service");
    let ephemeral = ServingIndex::ephemeral(config).expect("ephemeral service");
    let mut doc = Json::obj().with("upserts", Json::num_u64(upserts));
    for (service, label) in [(&durable, "durable"), (&ephemeral, "ephemeral")] {
        service.upsert_batch(corpus).expect("seed corpus");
        let base = hist(service, "serving_upsert_seconds");
        let start = Instant::now();
        for op in 0..upserts {
            // cast(op is reduced mod corpus.len() — fits usize exactly)
            let target = &corpus[(op % corpus.len() as u64) as usize];
            service
                .upsert_batch(&[mutated(target, op + 11)])
                .expect("durability upsert");
        }
        let elapsed = start.elapsed().as_secs_f64();
        let delta = hist_delta(&hist(service, "serving_upsert_seconds"), &base);
        let (p50, p99) = (
            hist_quantile_us(&delta, 0.50),
            hist_quantile_us(&delta, 0.99),
        );
        // cast(upsert counts are far below 2^53 — exact in f64)
        let rate = upserts as f64 / elapsed;
        println!(
            "wal    {label:9}  {upserts:6} upserts  {rate:9.0} ops/s  \
             p50/p99 {p50:7.1}/{p99:7.1} µs"
        );
        doc = doc
            .with(&format!("{label}_upsert_p50_us"), Json::num(p50))
            .with(&format!("{label}_upsert_p99_us"), Json::num(p99));
    }

    let stats = durable.stats();
    let doc = doc.with("wal_bytes", Json::num_u64(stats.wal_bytes)).with(
        "wal_records_since_snapshot",
        Json::num_u64(stats.wal_records_since_snapshot),
    );
    // errors(best-effort temp-dir cleanup)
    let _ = std::fs::remove_dir_all(&dir);
    doc
}

fn main() {
    let opts = parse_opts();
    let corpus_n = if opts.quick { 500 } else { 2000 };
    println!(
        "bench_serving: corpus = {corpus_n} rankings, k = {K}, quick = {}",
        opts.quick
    );
    let corpus = Arc::new(CorpusProfile::dblp_like(corpus_n, K).generate());

    let mix_levels: &[u64] = if opts.quick { &[10, 90] } else { &[10, 50, 90] };
    let mix: Vec<Json> = mix_levels
        .iter()
        .map(|&pct| bench_mix(pct, &corpus, &opts))
        .collect();
    let http_qps = bench_http_qps(&corpus, &opts);
    let durability = bench_durability(&corpus, &opts);

    // Headline: the balanced (or closest-to-balanced) mix level.
    let headline = mix
        .iter()
        .min_by_key(|row| {
            row.get("upsert_pct")
                .and_then(Json::as_u64)
                .map_or(u64::MAX, |pct| pct.abs_diff(50))
        })
        .map_or(Json::Null, |row| {
            Json::obj()
                .with(
                    "upsert_pct",
                    row.get("upsert_pct").cloned().unwrap_or(Json::Null),
                )
                .with(
                    "query_p50_us",
                    row.get("query_p50_us").cloned().unwrap_or(Json::Null),
                )
                .with(
                    "query_p99_us",
                    row.get("query_p99_us").cloned().unwrap_or(Json::Null),
                )
        });

    let doc = Json::obj()
        .with("schema", Json::str("topk-simjoin/bench-serving/v1"))
        .with(
            "config",
            Json::obj()
                .with("quick", Json::Bool(opts.quick))
                .with("corpus_records", Json::num_usize(corpus_n))
                .with("k", Json::num_usize(K))
                .with("theta_max", Json::num(THETA_MAX))
                .with("query_theta", Json::num(QUERY_THETA)),
        )
        .with("headline", headline)
        .with("mix", Json::Arr(mix))
        .with("http_qps", Json::Arr(http_qps))
        .with("durability", durability);

    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&opts.out, text).expect("write bench output file");
    println!("wrote {}", opts.out.display());
}
