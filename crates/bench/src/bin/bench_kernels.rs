//! Kernel and end-to-end benchmark capture for the verification hot path.
//!
//! ```text
//! bench_kernels [--trials N] [--warmup N] [--quick] [--out PATH]
//! ```
//!
//! Measures, with warmup rounds and median-of-`N`-trials reporting:
//!
//! * **verify** — per-candidate Footrule verification: the retained O(k²)
//!   naive scan (`footrule_pairs_within`) against the O(k) item-sorted
//!   two-pointer merge (`footrule_sorted_within`), across a grid of ranking
//!   lengths `k`, with the join's early-exit threshold and with no
//!   threshold (full-distance) — both paths return bit-identical results,
//!   only the cost differs,
//! * **group_kernels** — one token group through the indexed kernel with a
//!   warm reusable [`GroupScratch`], with a cold scratch allocated per
//!   group (the pre-scratch behaviour), and through the nested loop,
//! * **end_to_end** — small VJ and CL-P self-joins on the DBLP-like
//!   corpus.
//!
//! Results go to stdout and, as an ordered-JSON document
//! (`topk-simjoin/bench-kernels/v1`), to `--out` (default
//! `BENCH_kernels.json`). `--quick` shrinks sizes and trials for CI smoke
//! runs.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use minispark::trace::{ExecutorAnalytics, StageAnalytics};
use minispark::{Cluster, ClusterConfig, Json, TraceCollector};
use topk_datagen::CorpusProfile;
use topk_rankings::bounds::overlap_prefix_len;
use topk_rankings::distance::{footrule_pairs_within, footrule_sorted_within, raw_threshold};
use topk_rankings::{FrequencyTable, OrderedRanking, PrefixKind, Ranking};
use topk_simjoin::kernels::{
    join_group_indexed, join_group_nested_loop, with_group_scratch, GroupScratch, GroupThresholds,
    JoinMode, TokenEntry,
};
use topk_simjoin::{
    cl_join_rs, clp_join, report, runs_to_json, vj_join, vj_join_rs, vj_nl_join_rs, JoinConfig,
    JoinStats, RunReport, SkewBudget,
};

/// The θ every measurement uses (a mid-range figure-6 point).
const THETA: f64 = 0.3;

struct Opts {
    trials: usize,
    warmup: usize,
    quick: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        trials: 9,
        warmup: 3,
        quick: false,
        out: PathBuf::from("BENCH_kernels.json"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let v = args.next().expect("--trials needs a value");
                opts.trials = v.parse().expect("--trials must be a positive integer");
            }
            "--warmup" => {
                let v = args.next().expect("--warmup needs a value");
                opts.warmup = v.parse().expect("--warmup must be an integer");
            }
            "--quick" => opts.quick = true,
            "--out" => {
                opts.out = PathBuf::from(args.next().expect("--out needs a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_kernels [--trials N] [--warmup N] [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts.trials = opts.trials.max(1);
    opts
}

/// Runs `f` `warmup + trials` times and returns the median wall time of the
/// measured trials, in seconds.
fn median_secs(trials: usize, warmup: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut samples = Vec::with_capacity(trials);
    for round in 0..(warmup + trials) {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed().as_secs_f64();
        if round >= warmup {
            samples.push(elapsed);
        }
    }
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Deterministic candidate pairs: each ranking against its next few
/// neighbours in corpus order (near-duplicates and strangers mixed, like a
/// token group's collisions).
fn candidate_pairs(ordered: &[OrderedRanking], fan: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in 0..ordered.len() {
        for d in 1..=fan {
            let j = i + d;
            if j < ordered.len() {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

fn ordered_corpus(n: usize, k: usize) -> Vec<OrderedRanking> {
    let data = CorpusProfile::dblp_like(n, k).generate();
    let freq = FrequencyTable::from_rankings(&data);
    data.iter()
        .map(|r| OrderedRanking::by_frequency(r, &freq))
        .collect()
}

/// Per-candidate verification: naive scan vs. item-sorted merge at one `k`.
fn bench_verify(k: usize, opts: &Opts) -> Json {
    let n = if opts.quick { 200 } else { 600 };
    let ordered = ordered_corpus(n, k);
    let pairs = candidate_pairs(&ordered, 6);
    let theta_raw = raw_threshold(k, THETA);
    // cast(candidate counts are far below 2^53 — exact in f64)
    let per_candidate = |total_secs: f64| -> f64 { total_secs / pairs.len() as f64 * 1e9 };

    let run = |threshold: u64, merge: bool| -> f64 {
        median_secs(opts.trials, opts.warmup, || {
            let mut acc = 0u64;
            for &(i, j) in &pairs {
                let (a, b) = (&ordered[i], &ordered[j]);
                let d = if merge {
                    footrule_sorted_within(a.pairs_by_item(), b.pairs_by_item(), threshold)
                } else {
                    footrule_pairs_within(a.pairs(), b.pairs(), threshold)
                };
                acc = acc.wrapping_add(d.unwrap_or(u64::MAX));
            }
            acc
        })
    };

    // Differential spot check alongside the measurement: the two paths must
    // agree on every candidate before their timings mean anything.
    for &(i, j) in &pairs {
        let (a, b) = (&ordered[i], &ordered[j]);
        assert_eq!(
            footrule_pairs_within(a.pairs(), b.pairs(), theta_raw),
            footrule_sorted_within(a.pairs_by_item(), b.pairs_by_item(), theta_raw),
            "scan and merge disagree at k = {k}"
        );
    }

    let scan_theta = per_candidate(run(theta_raw, false));
    let merge_theta = per_candidate(run(theta_raw, true));
    let scan_full = per_candidate(run(u64::MAX, false));
    let merge_full = per_candidate(run(u64::MAX, true));
    println!(
        "verify k={k:<3} θ={THETA}: scan {scan_theta:8.1} ns/cand  merge {merge_theta:8.1} ns/cand \
         ({:4.2}x)   full: scan {scan_full:8.1}  merge {merge_full:8.1} ({:4.2}x)",
        scan_theta / merge_theta,
        scan_full / merge_full,
    );
    Json::obj()
        .with("k", Json::num_usize(k))
        .with("theta", Json::num(THETA))
        .with("threshold_raw", Json::num_u64(theta_raw))
        .with("candidates", Json::num_usize(pairs.len()))
        .with("scan_ns_per_candidate", Json::num(scan_theta))
        .with("merge_ns_per_candidate", Json::num(merge_theta))
        .with("speedup", Json::num(scan_theta / merge_theta))
        .with("scan_full_ns_per_candidate", Json::num(scan_full))
        .with("merge_full_ns_per_candidate", Json::num(merge_full))
        .with("speedup_full", Json::num(scan_full / merge_full))
}

/// One token group through the three kernel configurations.
fn bench_group_kernels(opts: &Opts) -> Json {
    let k = 10;
    let n = if opts.quick { 2_000 } else { 6_000 };
    let ordered = ordered_corpus(n, k);
    let theta_raw = raw_threshold(k, THETA);
    let prefix_len = overlap_prefix_len(k, theta_raw);

    // The group for the corpus's most frequent item — the hottest posting
    // list, exactly the group the kernels spend their time in.
    let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for r in &ordered {
        for &(item, _) in r.prefix(prefix_len) {
            *counts.entry(item).or_default() += 1;
        }
    }
    let (&token, _) = counts
        .iter()
        .max_by_key(|&(_, c)| *c)
        .expect("corpus is non-empty");
    let entries: Vec<TokenEntry> = ordered
        .iter()
        .filter_map(|r| {
            r.rank_of(token)
                // cast(rank < k ≤ MAX_K = u16::MAX by Ranking's construction invariant)
                .map(|rank| TokenEntry::plain(rank as u16, Arc::new(r.clone())))
        })
        .collect();
    let thresholds = GroupThresholds::Uniform(theta_raw);

    let warm = median_secs(opts.trials, opts.warmup, || {
        with_group_scratch(|scratch| {
            join_group_indexed(
                &entries,
                |_| prefix_len,
                &thresholds,
                true,
                JoinMode::SelfJoin,
                &JoinStats::default(),
                scratch,
            )
            .len() as u64
        })
    });
    let cold = median_secs(opts.trials, opts.warmup, || {
        let mut scratch = GroupScratch::new();
        join_group_indexed(
            &entries,
            |_| prefix_len,
            &thresholds,
            true,
            JoinMode::SelfJoin,
            &JoinStats::default(),
            &mut scratch,
        )
        .len() as u64
    });
    let nested = median_secs(opts.trials, opts.warmup, || {
        join_group_nested_loop(
            &entries,
            &thresholds,
            true,
            JoinMode::SelfJoin,
            &JoinStats::default(),
        )
        .len() as u64
    });
    println!(
        "group  |group|={:<5} indexed warm {:9.1} µs  cold {:9.1} µs  nested-loop {:9.1} µs",
        entries.len(),
        warm * 1e6,
        cold * 1e6,
        nested * 1e6,
    );
    Json::obj()
        .with("group_size", Json::num_usize(entries.len()))
        .with("k", Json::num_usize(k))
        .with("prefix_len", Json::num_usize(prefix_len))
        .with("indexed_warm_scratch_us", Json::num(warm * 1e6))
        .with("indexed_cold_scratch_us", Json::num(cold * 1e6))
        .with("nested_loop_us", Json::num(nested * 1e6))
}

/// Small end-to-end self-joins (the kernels in their natural habitat).
fn bench_end_to_end(opts: &Opts) -> Vec<Json> {
    let n = if opts.quick { 400 } else { 1_500 };
    let data: Vec<Ranking> = CorpusProfile::dblp_like(n, 10).generate();
    let config = JoinConfig::new(THETA);
    let trials = opts.trials.min(5);
    let mut rows = Vec::new();
    type Join = fn(
        &Cluster,
        &[Ranking],
        &JoinConfig,
    ) -> Result<topk_simjoin::JoinOutcome, topk_simjoin::JoinError>;
    for (name, join) in [("vj", vj_join as Join), ("cl-p", clp_join as Join)] {
        let mut pair_count = 0usize;
        let secs = median_secs(trials, opts.warmup.min(1), || {
            let cluster = Cluster::new(ClusterConfig::local(4));
            let outcome = join(&cluster, &data, &config).expect("join runs");
            pair_count = outcome.pairs.len();
            outcome.pairs.len() as u64
        });
        println!(
            "e2e    {name:<5} n={n:<6} {:9.1} ms  ({pair_count} pairs)",
            secs * 1e3
        );
        rows.push(
            Json::obj()
                .with("join", Json::str(name))
                .with("records", Json::num_usize(n))
                .with("theta", Json::num(THETA))
                .with("median_ms", Json::num(secs * 1e3))
                .with("result_pairs", Json::num_usize(pair_count)),
        );
    }
    rows
}

/// Total wall of a label's join-phase stages plus the min-slot occupancy of
/// the dominant (longest-span) one — the straggler indicator skew-aware
/// splitting is meant to raise.
fn join_phase(analytics: &ExecutorAnalytics, label: &str) -> (f64, f64) {
    let prefix = format!("{label}/");
    let mut wall_ms = 0.0;
    let mut dominant: Option<&StageAnalytics> = None;
    for stage in &analytics.stages {
        if stage.stage.starts_with(&prefix) && stage.stage.contains("join") {
            wall_ms += stage.span.as_secs_f64() * 1e3;
            if dominant.is_none_or(|d| stage.span > d.span) {
                dominant = Some(stage);
            }
        }
    }
    (
        wall_ms,
        dominant.map_or(1.0, StageAnalytics::min_slot_occupancy),
    )
}

/// Skewed-Zipf scenario (ISSUE 5): a small, heavily skewed vocabulary under
/// the rank-ordered prefix concentrates most of the corpus in a few hot
/// posting lists. VJ runs with skew handling off and with
/// [`SkewBudget::Auto`] on fresh traced clusters; the split run must return
/// bit-identical pairs, its run report (with the split/steal counters) must
/// validate, and — outside `--quick` — it must show strictly lower
/// join-phase wall and higher min-slot occupancy than the unsplit run.
fn bench_skew(opts: &Opts) -> Json {
    let n = if opts.quick { 600 } else { 4_000 };
    let slots = 4usize;
    let profile = CorpusProfile {
        name: format!("ZIPF-HOT(n={n},k=10)"),
        num_records: n,
        vocab_size: 256,
        zipf_skew: 1.4,
        k: 10,
        near_dup_rate: 0.2,
        seed: 0x51C3,
    };
    let data = profile.generate();

    let run = |algorithm: &str, skew: SkewBudget| {
        let cluster = Cluster::with_trace(ClusterConfig::local(slots), TraceCollector::enabled());
        let config = JoinConfig::new(THETA)
            .with_prefix(PrefixKind::Ordered)
            .with_skew(skew);
        let outcome = vj_join(&cluster, &data, &config).expect("join runs");
        let pairs = outcome.pairs.clone();
        let report = RunReport::capture(
            algorithm,
            &profile.name,
            n,
            &cluster,
            &config,
            &outcome,
            slots,
        );
        (report, pairs)
    };

    let (off, off_pairs) = run("VJ", SkewBudget::Off);
    let (auto, auto_pairs) = run("VJ+skew", SkewBudget::Auto);

    assert_eq!(
        off_pairs, auto_pairs,
        "skew splitting changed the VJ result set"
    );
    assert_eq!(off.stats.skew_chunks, 0, "Off must never split");
    assert!(
        auto.stats.posting_lists_split > 0 && auto.stats.skew_chunks > 0,
        "the Zipf corpus must trigger Auto splitting: {:?}",
        auto.stats
    );
    report::validate(&runs_to_json(&[off.clone(), auto.clone()]))
        .expect("skew run reports must validate");

    let off_analytics = off.analytics.as_ref().expect("traced run has analytics");
    let auto_analytics = auto.analytics.as_ref().expect("traced run has analytics");
    let (off_wall, off_min_occ) = join_phase(off_analytics, "vj");
    let (auto_wall, auto_min_occ) = join_phase(auto_analytics, "vj");
    if !opts.quick {
        assert!(
            auto_wall < off_wall,
            "split join phase must beat unsplit: {auto_wall:.1} ms vs {off_wall:.1} ms"
        );
        assert!(
            auto_min_occ > off_min_occ,
            "splitting must raise min-slot occupancy: {auto_min_occ:.3} vs {off_min_occ:.3}"
        );
    }
    println!(
        "skew   n={n:<6} join wall off {off_wall:9.1} ms → auto {auto_wall:9.1} ms  \
         min-occ {off_min_occ:5.3} → {auto_min_occ:5.3}  \
         ({} split, {} chunks, {} steals)",
        auto.stats.posting_lists_split, auto.stats.skew_chunks, auto.stats.skew_steals,
    );

    // Telemetry ablation: the identical Auto run with the live metrics plane
    // off vs. on (registry + heartbeat sampler). The record path is a few
    // relaxed atomic adds per task, so the budget is ≤2% of join wall.
    let ablation_trials = if opts.quick { 1 } else { 3 };
    let ablation = |telemetry: bool| -> f64 {
        median_secs(ablation_trials, 1, || {
            let mut cluster_config = ClusterConfig::local(slots);
            if telemetry {
                cluster_config = cluster_config.with_heartbeat(Duration::from_millis(250));
            }
            let cluster = Cluster::new(cluster_config);
            let config = JoinConfig::new(THETA)
                .with_prefix(PrefixKind::Ordered)
                .with_skew(SkewBudget::Auto);
            let outcome = vj_join(&cluster, &data, &config).expect("join runs");
            outcome.pairs.len() as u64
        })
    };
    let telemetry_off_secs = ablation(false);
    let telemetry_on_secs = ablation(true);
    let telemetry_overhead_pct =
        (telemetry_on_secs - telemetry_off_secs) / telemetry_off_secs * 100.0;
    println!(
        "telem  n={n:<6} join wall off {:9.1} ms → telemetry+heartbeat {:9.1} ms  ({:+.2}%)",
        telemetry_off_secs * 1e3,
        telemetry_on_secs * 1e3,
        telemetry_overhead_pct,
    );
    Json::obj()
        .with("dataset", Json::str(&profile.name))
        .with("records", Json::num_usize(n))
        .with("vocab_size", Json::num_u64(u64::from(profile.vocab_size)))
        .with("zipf_skew", Json::num(profile.zipf_skew))
        .with("theta", Json::num(THETA))
        .with("slots", Json::num_usize(slots))
        .with("result_pairs", Json::num_usize(off_pairs.len()))
        .with("off_join_wall_ms", Json::num(off_wall))
        .with("auto_join_wall_ms", Json::num(auto_wall))
        .with("off_min_slot_occupancy", Json::num(off_min_occ))
        .with("auto_min_slot_occupancy", Json::num(auto_min_occ))
        .with(
            "groups_split",
            Json::num_u64(auto.stats.posting_lists_split),
        )
        .with("skew_chunks", Json::num_u64(auto.stats.skew_chunks))
        .with("skew_steals", Json::num_u64(auto.stats.skew_steals))
        .with("off_seconds", Json::num(off.seconds))
        .with("auto_seconds", Json::num(auto.seconds))
        .with("telemetry_off_seconds", Json::num(telemetry_off_secs))
        .with("telemetry_on_seconds", Json::num(telemetry_on_secs))
        .with("telemetry_overhead_pct", Json::num(telemetry_overhead_pct))
}

/// The R-S scenario (ISSUE 9): a standing corpus joined against a smaller
/// arrival relation, once as a batch R-S join with every footrule R-S
/// driver (bit-identical pair sets asserted) and once as mini-batch
/// arrival streaming (`ArrivalJoin`), whose cross-relation pairs must
/// reproduce the batch result exactly.
fn bench_rs(opts: &Opts) -> Json {
    let (corpus_n, arrival_n) = if opts.quick {
        (600, 150)
    } else {
        (4_000, 1_000)
    };
    let batch_size = 64usize;
    let slots = 4usize;
    let corpus_profile = CorpusProfile::orku_like(corpus_n, 10);
    let corpus = corpus_profile.generate();
    // Arrivals perturb a sample of the corpus (one adjacent swap each), so
    // cross-relation near-duplicates exist at θ. Ids are shifted past the
    // corpus's 0-based ids: ArrivalJoin requires global uniqueness, and the
    // offset makes "is this a cross pair" decidable from the id alone.
    // cast(corpus_n is a small record count, far below u64::MAX)
    let id_offset = corpus_n as u64;
    let arrivals: Vec<Ranking> = corpus
        .iter()
        .take(arrival_n)
        .map(|r| {
            let mut items = r.items().to_vec();
            let i = r.id() as usize % (items.len() - 1);
            items.swap(i, i + 1);
            Ranking::new_unchecked(r.id() + id_offset, items)
        })
        .collect();

    type RsDriver = fn(
        &Cluster,
        &[Ranking],
        &[Ranking],
        &JoinConfig,
    ) -> Result<topk_simjoin::JoinOutcome, topk_simjoin::JoinError>;
    let drivers: [(&str, RsDriver); 3] = [
        ("VJ-RS", vj_join_rs),
        ("VJ-NL-RS", vj_nl_join_rs),
        ("CL-RS", cl_join_rs),
    ];
    let config = JoinConfig::new(THETA)
        .with_prefix(PrefixKind::Ordered)
        .with_skew(SkewBudget::Auto);

    let mut reports = Vec::new();
    let mut driver_rows = Vec::new();
    let mut reference: Option<Vec<(u64, u64)>> = None;
    for (name, driver) in drivers {
        let cluster = Cluster::with_trace(ClusterConfig::local(slots), TraceCollector::enabled());
        let outcome = driver(&cluster, &corpus, &arrivals, &config).expect("R-S join runs");
        match &reference {
            None => reference = Some(outcome.pairs.clone()),
            Some(expected) => assert_eq!(
                &outcome.pairs, expected,
                "{name} disagrees with the first R-S driver"
            ),
        }
        let report = RunReport::capture(
            name,
            &format!("{}⋈arrivals", corpus_profile.name),
            corpus_n + arrival_n,
            &cluster,
            &config,
            &outcome,
            slots,
        );
        println!(
            "rs     {name:<9} corpus {corpus_n} × arrivals {arrival_n}  \
             {:9.1} ms  {} pairs",
            report.seconds * 1e3,
            outcome.pairs.len(),
        );
        driver_rows.push(
            Json::obj()
                .with("algorithm", Json::str(name))
                .with("seconds", Json::num(report.seconds))
                .with("result_pairs", Json::num_usize(outcome.pairs.len())),
        );
        reports.push(report);
    }
    report::validate(&runs_to_json(&reports)).expect("R-S run reports must validate");
    let rs_pairs = reference.expect("at least one driver ran");
    assert!(
        !rs_pairs.is_empty(),
        "perturbed arrivals must produce cross pairs — an empty result \
         would make the parity checks vacuous"
    );

    // Stream the same arrivals in mini-batches; the cross-relation subset
    // of the union must equal the batch R-S result.
    let stream_start = std::time::Instant::now();
    let mut joiner =
        topk_simjoin::ArrivalJoin::new(&corpus, THETA).expect("corpus is a valid standing index");
    let mut streamed: Vec<(u64, u64)> = Vec::new();
    for batch in arrivals.chunks(batch_size) {
        streamed.extend(joiner.join_arrivals(batch).expect("valid batch").pairs);
    }
    let stream_secs = stream_start.elapsed().as_secs_f64();
    let mut cross: Vec<(u64, u64)> = streamed
        .iter()
        .copied()
        // Cross pairs have exactly one member below the id offset; the
        // normalized (min, max) orientation puts the corpus id first.
        .filter(|&(a, b)| a < id_offset && b >= id_offset)
        .collect();
    cross.sort_unstable();
    let mut expected: Vec<(u64, u64)> = rs_pairs.iter().copied().collect();
    expected.sort_unstable();
    assert_eq!(
        cross, expected,
        "arrival streaming must reproduce the batch R-S cross pairs"
    );
    println!(
        "rs     arrivals  {} batches of ≤{batch_size}  {:9.1} ms  \
         {} pairs ({} cross + {} arrival-internal)",
        joiner.batches(),
        stream_secs * 1e3,
        streamed.len(),
        cross.len(),
        streamed.len() - cross.len(),
    );

    Json::obj()
        .with("dataset", Json::str(&corpus_profile.name))
        .with("corpus_records", Json::num_usize(corpus_n))
        .with("arrival_records", Json::num_usize(arrival_n))
        .with("k", Json::num_usize(10))
        .with("theta", Json::num(THETA))
        .with("slots", Json::num_usize(slots))
        .with("batch_size", Json::num_usize(batch_size))
        .with("batches", Json::num_u64(joiner.batches()))
        .with("result_pairs", Json::num_usize(rs_pairs.len()))
        .with("streamed_pairs", Json::num_usize(streamed.len()))
        .with(
            "arrival_internal_pairs",
            Json::num_usize(streamed.len() - cross.len()),
        )
        .with("arrivals_seconds", Json::num(stream_secs))
        .with("drivers", Json::Arr(driver_rows))
}

fn main() {
    let opts = parse_opts();
    let ks: &[usize] = if opts.quick {
        &[10, 20]
    } else {
        &[5, 10, 20, 25, 50]
    };

    println!(
        "bench_kernels: trials = {}, warmup = {}, quick = {}",
        opts.trials, opts.warmup, opts.quick
    );
    let verify: Vec<Json> = ks.iter().map(|&k| bench_verify(k, &opts)).collect();
    let groups = bench_group_kernels(&opts);
    let end_to_end = bench_end_to_end(&opts);
    let skew = bench_skew(&opts);
    let rs = bench_rs(&opts);

    let headline = verify
        .iter()
        .find(|row| row.get("k").and_then(Json::as_u64) == Some(20))
        .map_or(Json::Null, |row| {
            Json::obj()
                .with("k", Json::num_usize(20))
                .with("speedup", row.get("speedup").cloned().unwrap_or(Json::Null))
                .with(
                    "speedup_full",
                    row.get("speedup_full").cloned().unwrap_or(Json::Null),
                )
        });

    let doc = Json::obj()
        .with("schema", Json::str("topk-simjoin/bench-kernels/v1"))
        .with(
            "config",
            Json::obj()
                .with("trials", Json::num_usize(opts.trials))
                .with("warmup", Json::num_usize(opts.warmup))
                .with("quick", Json::Bool(opts.quick)),
        )
        .with("headline", headline)
        .with("verify", Json::Arr(verify))
        .with("group_kernels", groups)
        .with("end_to_end", Json::Arr(end_to_end))
        .with("skew", skew)
        .with("rs", rs);

    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&opts.out, text).expect("write bench output file");
    println!("wrote {}", opts.out.display());
}
