//! Process-wide observability capture for the benchmark harness.
//!
//! The figure runners in [`crate::figures`] create one fresh [`Cluster`]
//! per measured run, so a trace/report consumer cannot simply hold a cluster
//! handle. Instead, a harness frontend (the `experiments` binary, an
//! example) [`Capture::install`]s a process-wide capture once; from then on
//! every `measure*` call runs its cluster with a [`TraceCollector::fork`] of
//! the shared collector, merges the run's events back (one comparable
//! timeline across runs) and pushes a [`RunReport`].
//!
//! [`Capture::install_with`] additionally switches on the live metrics
//! plane: every measured cluster runs with telemetry and a heartbeat
//! sampler, an optional capture-owned HTTP endpoint serves `/metrics` and
//! `/snapshot` across runs (each new cluster's registry is swapped into the
//! shared [`TelemetrySource`], so one bound port outlives every short-lived
//! cluster), and each run's final telemetry snapshot is retained for a
//! `--metrics-out` style export.
//!
//! When nothing is installed the harness behaves exactly as before: clusters
//! get the default disabled collector, telemetry stays a no-op, and the
//! measured runs pay nothing.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use minispark::{Cluster, ClusterConfig, Json, LiveServer, TelemetrySource, TraceCollector};
use topk_simjoin::RunReport;

static CAPTURE: OnceLock<Capture> = OnceLock::new();

/// Heartbeat sampling cadence for captured runs: coarse enough to stay far
/// under the ≤2% overhead budget, fine enough to resolve per-stage shape.
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(250);

/// Schema identifier of the [`Capture::metrics_document`] batch.
pub const SNAPSHOTS_SCHEMA: &str = "minispark/telemetry-snapshots/v1";

/// Telemetry options of one capture installation.
#[derive(Debug, Default, Clone)]
pub struct CaptureSettings {
    /// Bind the live `/metrics` + `/snapshot` endpoint on this port
    /// (`0` = ephemeral).
    pub live_port: Option<u16>,
    /// Retain each run's final telemetry snapshot for export.
    pub metrics_out: Option<PathBuf>,
}

impl CaptureSettings {
    /// Whether these settings need telemetry-enabled clusters.
    pub fn telemetry(&self) -> bool {
        self.live_port.is_some() || self.metrics_out.is_some()
    }
}

/// The process-wide trace collector and run-report accumulator.
#[derive(Debug)]
pub struct Capture {
    trace: TraceCollector,
    reports: Mutex<Vec<RunReport>>,
    settings: CaptureSettings,
    /// The shared registry slot plus the server holding it open; `None`
    /// without `live_port` (or if the bind failed — reported, not fatal).
    live: Option<(TelemetrySource, LiveServer)>,
    snapshots: Mutex<Vec<Json>>,
}

impl Capture {
    /// Installs (or returns the already-installed) process-wide capture with
    /// an enabled collector and default (telemetry-off) settings. Idempotent.
    pub fn install() -> &'static Capture {
        Self::install_with(CaptureSettings::default())
    }

    /// Installs the process-wide capture with explicit telemetry settings.
    /// The first installation wins; later calls return it unchanged.
    pub fn install_with(settings: CaptureSettings) -> &'static Capture {
        CAPTURE.get_or_init(|| {
            let live = settings.live_port.and_then(|port| {
                let source = TelemetrySource::new(minispark::TelemetryRegistry::enabled());
                match LiveServer::start(port, source.clone()) {
                    Ok(server) => {
                        eprintln!("# live metrics endpoint: http://{}/metrics", server.addr());
                        Some((source, server))
                    }
                    Err(e) => {
                        eprintln!("# live endpoint bind on port {port} failed: {e}");
                        None
                    }
                }
            });
            Capture {
                trace: TraceCollector::enabled(),
                reports: Mutex::new(Vec::new()),
                settings,
                live,
                snapshots: Mutex::new(Vec::new()),
            }
        })
    }

    /// The installed capture, if any. The figure runners check this on
    /// every measurement.
    pub fn active() -> Option<&'static Capture> {
        CAPTURE.get()
    }

    /// The shared collector (fork it per run; merge back with
    /// [`TraceCollector::extend`]).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// The settings this capture was installed with.
    pub fn settings(&self) -> &CaptureSettings {
        &self.settings
    }

    /// The live endpoint's bound address, if one is serving.
    pub fn live_addr(&self) -> Option<std::net::SocketAddr> {
        self.live.as_ref().map(|(_, server)| server.addr())
    }

    /// Applies the capture's telemetry settings to a run's cluster config:
    /// with telemetry on, every measured cluster also runs the heartbeat
    /// sampler so its reports carry the time series.
    pub fn cluster_config(&self, config: ClusterConfig) -> ClusterConfig {
        if self.settings.telemetry() {
            config.with_heartbeat(HEARTBEAT_INTERVAL)
        } else {
            config
        }
    }

    /// Points the live endpoint at `cluster`'s registry. Call right after
    /// creating each measured cluster; scrapes then observe the new run
    /// without the server rebinding.
    pub fn attach(&self, cluster: &Cluster) {
        if let Some((source, _)) = &self.live {
            source.set(cluster.telemetry().clone());
        }
    }

    /// Records the end of one measured run: retains the cluster's final
    /// telemetry snapshot (when telemetry is on) for [`Self::metrics_document`].
    pub fn finish_run(&self, cluster: &Cluster) {
        if cluster.telemetry().is_enabled() {
            // Snapshot first: it takes the registry lock internally, and a
            // concurrent scrape must never wait on the snapshots lock (and
            // vice versa) just because a run happened to finish.
            let doc = cluster.telemetry().snapshot().to_json();
            self.snapshots
                .lock()
                .expect("capture snapshot lock poisoned")
                .push(doc);
        }
    }

    /// Appends one finished run's report.
    pub fn push(&self, report: RunReport) {
        self.reports
            .lock()
            .expect("capture report lock poisoned")
            .push(report);
    }

    /// A copy of all reports accumulated so far, in run order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.reports
            .lock()
            .expect("capture report lock poisoned")
            .clone()
    }

    /// All retained per-run telemetry snapshots as one
    /// `minispark/telemetry-snapshots/v1` document.
    pub fn metrics_document(&self) -> Json {
        let snapshots = self
            .snapshots
            .lock()
            .expect("capture snapshot lock poisoned")
            .clone();
        Json::obj()
            .with("schema", Json::str(SNAPSHOTS_SCHEMA))
            .with("snapshots", Json::Arr(snapshots))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_keep_telemetry_off() {
        assert!(!CaptureSettings::default().telemetry());
    }

    #[test]
    fn any_telemetry_flag_switches_telemetry_on() {
        let live = CaptureSettings {
            live_port: Some(0),
            ..CaptureSettings::default()
        };
        assert!(live.telemetry());
        let metrics = CaptureSettings {
            metrics_out: Some(PathBuf::from("metrics.json")),
            ..CaptureSettings::default()
        };
        assert!(metrics.telemetry());
    }
}
