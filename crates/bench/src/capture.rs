//! Process-wide observability capture for the benchmark harness.
//!
//! The figure runners in [`crate::figures`] create one fresh [`Cluster`]
//! per measured run, so a trace/report consumer cannot simply hold a cluster
//! handle. Instead, a harness frontend (the `experiments` binary, an
//! example) [`Capture::install`]s a process-wide capture once; from then on
//! every `measure*` call runs its cluster with a [`TraceCollector::fork`] of
//! the shared collector, merges the run's events back (one comparable
//! timeline across runs) and pushes a [`RunReport`].
//!
//! When nothing is installed the harness behaves exactly as before: clusters
//! get the default disabled collector and pay nothing.
//!
//! [`Cluster`]: minispark::Cluster

use std::sync::{Mutex, OnceLock};

use minispark::TraceCollector;
use topk_simjoin::RunReport;

static CAPTURE: OnceLock<Capture> = OnceLock::new();

/// The process-wide trace collector and run-report accumulator.
#[derive(Debug)]
pub struct Capture {
    trace: TraceCollector,
    reports: Mutex<Vec<RunReport>>,
}

impl Capture {
    /// Installs (or returns the already-installed) process-wide capture with
    /// an enabled collector. Idempotent.
    pub fn install() -> &'static Capture {
        CAPTURE.get_or_init(|| Capture {
            trace: TraceCollector::enabled(),
            reports: Mutex::new(Vec::new()),
        })
    }

    /// The installed capture, if any. The figure runners check this on
    /// every measurement.
    pub fn active() -> Option<&'static Capture> {
        CAPTURE.get()
    }

    /// The shared collector (fork it per run; merge back with
    /// [`TraceCollector::extend`]).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// Appends one finished run's report.
    pub fn push(&self, report: RunReport) {
        self.reports
            .lock()
            .expect("capture report lock poisoned")
            .push(report);
    }

    /// A copy of all reports accumulated so far, in run order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.reports
            .lock()
            .expect("capture report lock poisoned")
            .clone()
    }
}
