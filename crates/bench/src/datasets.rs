//! Benchmark workloads: scaled synthetic stand-ins for the paper's DBLP and
//! ORKU corpora (§7 "Datasets"), including the ×N increased variants.

use topk_datagen::{increase_dataset, CorpusProfile};
use topk_rankings::Ranking;

/// Base record counts at `TOPK_SCALE = 1`. The paper's corpora hold 1.2M
/// (DBLP) and 2M (ORKU) top-10 rankings; the defaults here are scaled down
/// ~300× so a full figure sweep runs on one machine in minutes. Raise
/// `TOPK_SCALE` to approach the paper's sizes.
pub const DBLP_BASE: usize = 4_000;
/// Base ORKU record count at scale 1 (ORKU is the larger corpus, §7).
pub const ORKU_BASE: usize = 6_000;
/// Base record count for the k = 25 ORKU extract (the paper extracts 1.5M
/// of the 2M records for k = 25).
pub const ORKU_K25_BASE: usize = 4_000;

/// The scale factor from the `TOPK_SCALE` environment variable.
pub fn scale() -> f64 {
    std::env::var("TOPK_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .unwrap_or(1.0)
}

fn scaled(base: usize) -> usize {
    // cast(benchmark sizes are far below 2^53 — exact in f64, and the round is ≥ 0)
    ((base as f64 * scale()).round() as usize).max(50)
}

/// A named benchmark dataset.
#[derive(Clone)]
pub struct Workload {
    /// Display name used in figure rows (e.g. `"DBLPx5"`).
    pub name: String,
    /// The rankings.
    pub data: Vec<Ranking>,
}

impl Workload {
    /// Ranking length of the workload.
    pub fn k(&self) -> usize {
        self.data.first().map_or(0, topk_rankings::Ranking::k)
    }
}

/// The DBLP-like base corpus (top-10).
pub fn dblp() -> Workload {
    Workload {
        name: "DBLP".into(),
        data: CorpusProfile::dblp_like(scaled(DBLP_BASE), 10).generate(),
    }
}

/// DBLP increased ×`times` with the paper's method.
pub fn dblp_x(times: usize) -> Workload {
    let base = dblp();
    Workload {
        name: format!("DBLPx{times}"),
        data: increase_dataset(&base.data, times, 0xD0 + times as u64),
    }
}

/// The ORKU-like base corpus (top-10).
pub fn orku() -> Workload {
    Workload {
        name: "ORKU".into(),
        data: CorpusProfile::orku_like(scaled(ORKU_BASE), 10).generate(),
    }
}

/// ORKU increased ×`times`.
pub fn orku_x(times: usize) -> Workload {
    let base = orku();
    Workload {
        name: format!("ORKUx{times}"),
        data: increase_dataset(&base.data, times, 0x04 + times as u64),
    }
}

/// The k = 25 ORKU extract of §7 "Increasing the size of the rankings".
pub fn orku_k25() -> Workload {
    Workload {
        name: "ORKU-k25".into(),
        data: CorpusProfile::orku_like(scaled(ORKU_K25_BASE), 25).generate(),
    }
}

/// A δ default proportional to the workload. The paper chooses δ per
/// dataset at roughly `n/4000 … n/400` (e.g. 500–5000 for the 2M-record
/// ORKU, §7.1); scaled to our corpus sizes this lands at about `n/150`,
/// small enough that the hottest posting lists actually split (Figure 10
/// shows the optimum is shallow, so the exact value matters little).
pub fn default_delta(workload: &Workload) -> usize {
    (workload.data.len() / 150).max(25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shape() {
        let d = dblp();
        assert_eq!(d.k(), 10);
        assert!(d.data.len() >= 50);
        let o25 = orku_k25();
        assert_eq!(o25.k(), 25);
    }

    #[test]
    fn increase_multiplies_size() {
        let d = dblp();
        let d5 = dblp_x(5);
        assert_eq!(d5.data.len(), 5 * d.data.len());
        assert_eq!(d5.name, "DBLPx5");
    }

    #[test]
    fn default_delta_scales_with_size() {
        let d = dblp();
        assert!(default_delta(&d) >= 25);
        assert_eq!(default_delta(&d), (d.data.len() / 150).max(25));
    }
}
