//! One runner per table/figure of the paper's evaluation (§7).
//!
//! Every runner reproduces the corresponding sweep — same series, same
//! parameter grids (thresholds, θc, δ ranges, node counts, partition
//! counts), scaled workloads — and returns the measured [`Row`]s.
//! `EXPERIMENTS.md` records one full run next to the paper's findings.

use minispark::{Cluster, ClusterConfig};
use topk_rankings::Ranking;
use topk_simjoin::{Algorithm, JoinConfig};

use crate::datasets::{self, Workload};
use crate::report::Row;

/// The θ grid of the evaluation (x-axis of Figures 6, 7 and 11).
pub const THETAS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// The paper's fixed clustering threshold (§7.1: "in all cases, the
/// clustering threshold for the CL and CL-P algorithms is set to 0.03").
pub const THETA_C: f64 = 0.03;

/// Executes one algorithm run and captures a [`Row`]. The simulated wall
/// time is computed for the execution cluster's own slot count.
pub fn measure(
    figure: &'static str,
    cluster_config: ClusterConfig,
    workload: &Workload,
    algorithm: Algorithm,
    config: &JoinConfig,
) -> Row {
    let slots = cluster_config.task_slots();
    let nodes = cluster_config.nodes;
    measure_with_sim_slots(
        figure,
        cluster_config,
        slots,
        nodes,
        workload,
        algorithm,
        config,
    )
}

/// Like [`measure`], but simulates the wall time for `sim_slots` concurrent
/// cores while *executing* on `exec_config`.
///
/// This decouples measurement from simulation: on hosts with few physical
/// cores, executing with many threads would contend and pollute the
/// per-task timings, so scalability sweeps (Figure 7) execute with the
/// host's real parallelism and replay the measured task durations through
/// the LPT schedule of the simulated cluster.
#[allow(clippy::too_many_arguments)]
pub fn measure_with_sim_slots(
    figure: &'static str,
    exec_config: ClusterConfig,
    sim_slots: usize,
    nodes: usize,
    workload: &Workload,
    algorithm: Algorithm,
    config: &JoinConfig,
) -> Row {
    let capture = crate::capture::Capture::active();
    // An installed capture may switch on telemetry + heartbeat for every
    // measured cluster (live endpoint, snapshot export).
    let exec_config = match capture {
        Some(cap) => cap.cluster_config(exec_config),
        None => exec_config,
    };
    let cluster = match capture {
        // Forked collector: the run records onto its own buffer (isolated
        // analytics) while sharing the capture's epoch (one timeline).
        Some(cap) => Cluster::with_trace(exec_config.clone(), cap.trace().fork()),
        None => Cluster::new(exec_config.clone()),
    };
    if let Some(cap) = capture {
        // Swap this run's registry into the shared live endpoint.
        cap.attach(&cluster);
    }
    let run_span = cluster.trace().span(format!(
        "run/{figure}/{}/{}@{}",
        workload.name,
        algorithm.name(),
        config.theta
    ));
    let outcome = algorithm
        .run(&cluster, &workload.data, config)
        .expect("benchmark join failed");
    drop(run_span);
    let sim = cluster.metrics().simulated_total(sim_slots);
    if let Some(cap) = capture {
        cap.push(topk_simjoin::RunReport::capture(
            algorithm.name(),
            &workload.name,
            workload.data.len(),
            &cluster,
            config,
            &outcome,
            sim_slots,
        ));
        cap.trace().extend(cluster.trace().snapshot().events);
        cap.finish_run(&cluster);
    }
    Row {
        figure,
        dataset: workload.name.clone(),
        algorithm: algorithm.name(),
        theta: config.theta,
        theta_c: config.cluster_threshold,
        delta: config.partition_threshold,
        partitions: config.effective_partitions(exec_config.default_partitions),
        nodes,
        k: workload.k(),
        n: workload.data.len(),
        seconds: outcome.elapsed.as_secs_f64(),
        sim_seconds: sim.as_secs_f64(),
        pairs: outcome.pairs.len(),
        stats: outcome.stats,
    }
}

/// Execution config: the host's real parallelism (clean per-task timings).
fn harness_exec() -> ClusterConfig {
    let slots = std::thread::available_parallelism().map_or(8, std::num::NonZero::get);
    // 286 reduce partitions, like the paper's runs.
    ClusterConfig::local(slots).with_default_partitions(286)
}

/// All figures except the scalability sweep report `sim_seconds` for the
/// paper's Table-3 cluster (8 nodes × 24 executors × 5 cores = 120 slots):
/// tasks are timed for real on the host, their overlap is simulated (LPT).
fn paper_sim_slots() -> usize {
    ClusterConfig::paper_table3().task_slots()
}

/// The standard figure measurement: execute on the host, simulate the
/// paper's Table-3 cluster.
fn measure_paper_cluster(
    figure: &'static str,
    workload: &Workload,
    algorithm: Algorithm,
    config: &JoinConfig,
) -> Row {
    measure_with_sim_slots(
        figure,
        harness_exec(),
        paper_sim_slots(),
        ClusterConfig::paper_table3().nodes,
        workload,
        algorithm,
        config,
    )
}

fn join_config(theta: f64, workload: &Workload) -> JoinConfig {
    JoinConfig::new(theta)
        .with_cluster_threshold(THETA_C)
        .with_partition_threshold(datasets::default_delta(workload))
}

/// Table 3: the cluster configuration used by the evaluation. Returns a row
/// per derived quantity so the harness can print the simulated equivalent.
pub fn table3() -> Vec<(String, String)> {
    let paper = ClusterConfig::paper_table3();
    let local = harness_exec();
    vec![
        ("spark.driver.memory".into(), "12G (paper)".into()),
        ("spark.executor.memory".into(), "8GB (paper)".into()),
        (
            "spark.executor.instances".into(),
            format!("{} (paper) / simulated: {}", 24, local.executor_instances()),
        ),
        (
            "spark.executor.cores".into(),
            format!("{} (paper) / simulated: {}", 5, local.cores_per_executor),
        ),
        (
            "task slots".into(),
            format!(
                "{} (paper) / simulated: {}",
                paper.task_slots(),
                local.task_slots()
            ),
        ),
        (
            "default partitions".into(),
            format!(
                "{} (paper) / simulated: {}",
                paper.default_partitions, local.default_partitions
            ),
        ),
    ]
}

/// Figure 6 (a–e): all four algorithms over θ ∈ {0.1..0.4} on DBLP,
/// DBLPx5, DBLPx10, ORKU and ORKUx5.
pub fn fig6() -> Vec<Row> {
    let workloads = [
        datasets::dblp(),
        datasets::dblp_x(5),
        datasets::dblp_x(10),
        datasets::orku(),
        datasets::orku_x(5),
    ];
    let mut rows = Vec::new();
    for workload in &workloads {
        for &theta in &THETAS {
            for algo in Algorithm::paper_lineup() {
                rows.push(measure_paper_cluster(
                    "fig6",
                    workload,
                    algo,
                    &join_config(theta, workload),
                ));
            }
        }
    }
    rows
}

/// Figure 7: CL-P on 4 vs. 8 nodes (DBLPx5 and ORKU), 3 cores/executor.
/// Executed at the host's parallelism; node scaling is reflected in the
/// `sim_seconds` column (see [`measure_with_sim_slots`]).
pub fn fig7() -> Vec<Row> {
    let workloads = [datasets::dblp_x(5), datasets::orku()];
    let mut rows = Vec::new();
    for workload in &workloads {
        for nodes in [4usize, 8] {
            for &theta in &THETAS {
                let sim_slots = ClusterConfig::paper_scalability(nodes).task_slots();
                // Enough partitions that the 8-node cluster's 72 slots can
                // all be used (the paper runs 286 partitions for the same
                // reason).
                let config = join_config(theta, workload).with_partitions(2 * sim_slots.max(72));
                rows.push(measure_with_sim_slots(
                    "fig7",
                    harness_exec(),
                    sim_slots,
                    nodes,
                    workload,
                    Algorithm::ClP,
                    &config,
                ));
            }
        }
    }
    rows
}

/// Figure 8: CL-P as the DBLP dataset grows ×1 → ×5 → ×10.
pub fn fig8() -> Vec<Row> {
    let mut rows = Vec::new();
    for times in [1usize, 5, 10] {
        let workload = if times == 1 {
            datasets::dblp()
        } else {
            datasets::dblp_x(times)
        };
        for &theta in &THETAS {
            rows.push(measure_paper_cluster(
                "fig8",
                &workload,
                Algorithm::ClP,
                &join_config(theta, &workload),
            ));
        }
    }
    rows
}

/// Figure 9: CL under varying clustering threshold θc (DBLP, DBLPx5, ORKU).
pub fn fig9() -> Vec<Row> {
    let workloads = [datasets::dblp(), datasets::dblp_x(5), datasets::orku()];
    let theta_cs = [0.01, 0.02, 0.03, 0.05, 0.1];
    let mut rows = Vec::new();
    for workload in &workloads {
        for &theta in &THETAS {
            for &theta_c in &theta_cs {
                let config = join_config(theta, workload).with_cluster_threshold(theta_c);
                rows.push(measure_paper_cluster(
                    "fig9",
                    workload,
                    Algorithm::Cl,
                    &config,
                ));
            }
        }
    }
    rows
}

/// Figure 10: CL-P under varying partitioning threshold δ (ORKU, ORKUx5,
/// DBLPx5). The paper varies δ over dataset-dependent ranges and plots two
/// θ values per dataset; we scale the δ grid to the workload size.
pub fn fig10() -> Vec<Row> {
    let mut rows = Vec::new();
    let cases = [
        (datasets::orku(), [0.3, 0.4]),
        (datasets::orku_x(5), [0.1, 0.2]),
        (datasets::dblp_x(5), [0.3, 0.4]),
    ];
    for (workload, thetas) in &cases {
        let base = datasets::default_delta(workload);
        let deltas = [base / 8, base / 4, base / 2, base, base * 2, base * 5];
        for &theta in thetas {
            for &delta in &deltas {
                let config = join_config(theta, workload).with_partition_threshold(delta.max(1));
                rows.push(measure_paper_cluster(
                    "fig10",
                    workload,
                    Algorithm::ClP,
                    &config,
                ));
            }
        }
    }
    rows
}

/// Figure 11: rankings of size k = 25 (ORKU extract), all four algorithms.
/// The paper fixes θc = 0.03 and δ = 5000 here; we keep θc and scale δ.
pub fn fig11() -> Vec<Row> {
    let workload = datasets::orku_k25();
    let mut rows = Vec::new();
    for &theta in &THETAS {
        for algo in Algorithm::paper_lineup() {
            rows.push(measure_paper_cluster(
                "fig11",
                &workload,
                algo,
                &join_config(theta, &workload),
            ));
        }
    }
    rows
}

/// Figure 12: VJ, VJ-NL and CL under a varying number of partitions
/// (DBLP and DBLPx5, θ = 0.3; paper grid {86, 186, 286}).
pub fn fig12() -> Vec<Row> {
    let workloads = [datasets::dblp(), datasets::dblp_x(5)];
    let partitions = [86usize, 186, 286];
    let mut rows = Vec::new();
    for workload in &workloads {
        for &parts in &partitions {
            for algo in [Algorithm::Vj, Algorithm::VjNl, Algorithm::Cl] {
                let config = join_config(0.3, workload).with_partitions(parts);
                rows.push(measure_paper_cluster("fig12", workload, algo, &config));
            }
        }
    }
    rows
}

/// Per-phase wall-time breakdown of one CL-P run (the Figure-2 pipeline
/// made visible): Ordering, Clustering, Joining, Expansion and the final
/// dedup, as fractions of the total.
pub fn phase_breakdown(theta: f64) -> Vec<(String, f64)> {
    let workload = datasets::orku();
    let cluster = Cluster::new(harness_exec());
    let config = join_config(theta, &workload);
    Algorithm::ClP
        .run(&cluster, &workload.data, &config)
        .expect("join failed");
    cluster
        .metrics()
        .phase_wall_times()
        .into_iter()
        .map(|(phase, wall)| (phase, wall.as_secs_f64()))
        .collect()
}

/// Ablation sweep (beyond the paper's figures): quantifies each design
/// ingredient by disabling it — the expansion triangle bounds, Lemma 5.3's
/// mixed centroid thresholds, the sound singleton prefix, the position
/// filter, and the frequency ordering (ordered prefix instead).
pub fn ablations() -> Vec<Row> {
    let workload = datasets::orku();
    let mut rows = Vec::new();
    for &theta in &[0.2, 0.4] {
        let base = join_config(theta, &workload);
        let cases: Vec<(Algorithm, JoinConfig)> = vec![
            (Algorithm::Cl, base.clone()),
            (Algorithm::Cl, base.clone().with_triangle_bounds(false)),
            (Algorithm::Cl, base.clone().with_lemma53(false)),
            (Algorithm::Cl, {
                let mut c = base.clone();
                c.strict_paper_prefixes = true;
                c
            }),
            (Algorithm::VjNl, base.clone()),
            (Algorithm::VjNl, base.clone().with_position_filter(false)),
            (
                Algorithm::VjNl,
                base.clone().with_prefix(topk_rankings::PrefixKind::Ordered),
            ),
        ];
        for (algo, config) in cases {
            rows.push(measure_paper_cluster("ablations", &workload, algo, &config));
        }
    }
    rows
}

/// Figure 13: CL-P under a varying number of partitions (DBLPx5, θ = 0.3;
/// paper grid {286, 386, 486, 586, 686}).
pub fn fig13() -> Vec<Row> {
    let workload = datasets::dblp_x(5);
    let mut rows = Vec::new();
    for parts in [286usize, 386, 486, 586, 686] {
        let config = join_config(0.3, &workload).with_partitions(parts);
        rows.push(measure_paper_cluster(
            "fig13",
            &workload,
            Algorithm::ClP,
            &config,
        ));
    }
    rows
}

/// The R-S experiment: the scaled ORKU-like corpus (left relation) joined
/// against an external `right` relation with every Footrule R-S driver, at
/// θ ∈ {0.1, 0.3}. All drivers are asserted pairwise identical, and — while
/// the cross product stays below a brute-force budget — checked against the
/// exact bipartite reference.
pub fn rs_join_rows(right: &[Ranking], right_name: &str) -> Vec<Row> {
    let left = datasets::orku();
    let dataset = format!("{}⋈{right_name}", left.name);
    let capture = crate::capture::Capture::active();
    let exec_config = {
        let base = harness_exec();
        match capture {
            Some(cap) => cap.cluster_config(base),
            None => base,
        }
    };
    type RsDriver = fn(
        &Cluster,
        &[Ranking],
        &[Ranking],
        &JoinConfig,
    ) -> Result<topk_simjoin::JoinOutcome, topk_simjoin::JoinError>;
    let drivers: [(&'static str, RsDriver); 3] = [
        ("VJ-RS", topk_simjoin::vj_join_rs),
        ("VJ-NL-RS", topk_simjoin::vj_nl_join_rs),
        ("CL-RS", topk_simjoin::cl_join_rs),
    ];
    let mut rows = Vec::new();
    for &theta in &[0.1, 0.3] {
        let config = JoinConfig::new(theta).with_cluster_threshold(THETA_C);
        let mut reference: Option<Vec<(u64, u64)>> = None;
        if left.data.len().saturating_mul(right.len()) <= 4_000_000 {
            let cluster = Cluster::new(exec_config.clone());
            reference = Some(
                topk_simjoin::brute_force_join_rs(&cluster, &left.data, right, theta)
                    .expect("R-S reference join failed")
                    .pairs,
            );
        } else {
            eprintln!(
                "# rs: skipping brute-force check at θ = {theta} ({} × {} cross pairs)",
                left.data.len(),
                right.len()
            );
        }
        for (name, driver) in drivers {
            let cluster = match capture {
                Some(cap) => Cluster::with_trace(exec_config.clone(), cap.trace().fork()),
                None => Cluster::new(exec_config.clone()),
            };
            if let Some(cap) = capture {
                cap.attach(&cluster);
            }
            let run_span = cluster
                .trace()
                .span(format!("run/rs/{dataset}/{name}@{theta}"));
            let outcome = driver(&cluster, &left.data, right, &config).expect("R-S join failed");
            drop(run_span);
            if let Some(expected) = &reference {
                assert_eq!(
                    &outcome.pairs, expected,
                    "{name} disagrees with the brute-force R-S reference at θ = {theta}"
                );
            }
            if let Some(first) = rows.last() {
                let prior: &Row = first;
                if prior.theta == theta {
                    // All drivers of one θ must agree pairwise.
                    assert_eq!(
                        prior.pairs,
                        outcome.pairs.len(),
                        "{name} disagrees with {} at θ = {theta}",
                        prior.algorithm
                    );
                }
            }
            let sim = cluster.metrics().simulated_total(paper_sim_slots());
            if let Some(cap) = capture {
                cap.push(topk_simjoin::RunReport::capture(
                    name,
                    &dataset,
                    left.data.len() + right.len(),
                    &cluster,
                    &config,
                    &outcome,
                    paper_sim_slots(),
                ));
                cap.trace().extend(cluster.trace().snapshot().events);
                cap.finish_run(&cluster);
            }
            rows.push(Row {
                figure: "rs",
                dataset: dataset.clone(),
                algorithm: name,
                theta,
                theta_c: config.cluster_threshold,
                delta: config.partition_threshold,
                partitions: config.effective_partitions(exec_config.default_partitions),
                nodes: 1,
                k: left.k(),
                n: left.data.len() + right.len(),
                seconds: outcome.elapsed.as_secs_f64(),
                sim_seconds: sim.as_secs_f64(),
                pairs: outcome.pairs.len(),
                stats: outcome.stats,
            });
        }
    }
    rows
}

/// The arrival-stream experiment: the scaled ORKU-like corpus as the
/// standing index, the external `arrivals` relation consumed in mini-batches
/// of `batch_size` at θ = 0.2. While the cross product stays below a
/// brute-force budget, the union of batch outputs is checked against the
/// one-shot reference (corpus × arrivals ∪ arrivals × arrivals).
pub fn arrivals_rows(arrivals: &[Ranking], arrivals_name: &str, batch_size: usize) -> Vec<Row> {
    const THETA: f64 = 0.2;
    let corpus = datasets::orku();
    let dataset = format!("{}←{arrivals_name}", corpus.name);
    let start = std::time::Instant::now();
    let mut joiner = topk_simjoin::ArrivalJoin::new(&corpus.data, THETA)
        .expect("arrival corpus must be a valid relation");
    let mut pairs = Vec::new();
    for batch in arrivals.chunks(batch_size.max(1)) {
        pairs.extend(
            joiner
                .join_arrivals(batch)
                .expect("arrival batch join failed")
                .pairs,
        );
    }
    let elapsed = start.elapsed();
    pairs.sort_unstable();
    if corpus.data.len().saturating_mul(arrivals.len()) <= 4_000_000 {
        let cluster = Cluster::new(harness_exec());
        let mut expected: Vec<(u64, u64)> =
            topk_simjoin::brute_force_join_rs(&cluster, &corpus.data, arrivals, THETA)
                .expect("arrival reference join failed")
                .pairs
                .into_iter()
                .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
                .collect();
        expected.extend(
            topk_simjoin::brute_force_join(&cluster, arrivals, THETA)
                .expect("arrival reference join failed")
                .pairs,
        );
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(
            pairs, expected,
            "batched arrival join disagrees with the one-shot reference"
        );
    } else {
        eprintln!(
            "# arrivals: skipping one-shot check ({} × {} cross pairs)",
            corpus.data.len(),
            arrivals.len()
        );
    }
    vec![Row {
        figure: "arrivals",
        dataset,
        algorithm: "ARRIVALS",
        theta: THETA,
        theta_c: 0.0,
        delta: batch_size,
        partitions: 0,
        nodes: 1,
        k: corpus.k(),
        n: corpus.data.len() + arrivals.len(),
        seconds: elapsed.as_secs_f64(),
        // The arrival joiner is a single in-memory index probe per record —
        // one slot, so simulated equals measured.
        sim_seconds: elapsed.as_secs_f64(),
        pairs: pairs.len(),
        stats: joiner.stats(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_and_arrival_runners_verify_against_references() {
        std::env::set_var("TOPK_SCALE", "0.02");
        let other = topk_datagen::CorpusProfile::orku_like(80, 10)
            .with_seed(41)
            .generate();
        let rows = rs_join_rows(&other, "other");
        // 3 drivers × 2 thresholds, internally cross-checked + brute-forced.
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.figure == "rs"));
        // Arrival ids must be disjoint from the corpus ids.
        let shifted: Vec<Ranking> = other
            .iter()
            .map(|r| Ranking::new_unchecked(r.id() + 1_000_000, r.items().to_vec()))
            .collect();
        let arrival_rows = arrivals_rows(&shifted, "other", 13);
        assert_eq!(arrival_rows.len(), 1);
        assert_eq!(arrival_rows[0].delta, 13);
        std::env::remove_var("TOPK_SCALE");
    }

    #[test]
    fn measure_produces_consistent_rows() {
        std::env::set_var("TOPK_SCALE", "0.05");
        let workload = datasets::dblp();
        let row = measure(
            "test",
            ClusterConfig::local(2),
            &workload,
            Algorithm::VjNl,
            &join_config(0.2, &workload),
        );
        assert_eq!(row.algorithm, "VJ-NL");
        assert_eq!(row.n, workload.data.len());
        assert!(row.seconds > 0.0);
        std::env::remove_var("TOPK_SCALE");
    }

    #[test]
    fn table3_lists_the_spark_parameters() {
        let rows = table3();
        assert!(rows.iter().any(|(k, _)| k.contains("executor.cores")));
        assert!(rows.iter().any(|(k, _)| k.contains("driver.memory")));
    }
}
