//! Benchmark harness for the EDBT 2020 reproduction.
//!
//! Every table and figure of the paper's evaluation (§7) has a runner in
//! [`figures`] that produces the same series the paper plots, as
//! [`report::Row`]s. Two frontends share these runners:
//!
//! * the `experiments` binary — full sweeps, CSV output (the numbers in
//!   `EXPERIMENTS.md` come from it),
//! * the Criterion benches under `benches/` — one target per figure, sized
//!   for quick regression runs.
//!
//! Workload sizes scale with the `TOPK_SCALE` environment variable
//! (default 1.0); the synthetic corpora stand in for DBLP/ORKU as described
//! in `DESIGN.md`.

#![warn(missing_docs)]

pub mod capture;
pub mod datasets;
pub mod figures;
pub mod report;

pub use datasets::Workload;
pub use report::Row;
