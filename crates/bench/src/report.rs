//! Result rows and CSV reporting for the experiment harness.

use topk_simjoin::StatsSnapshot;

/// One measured data point of a figure/table series.
#[derive(Debug, Clone)]
pub struct Row {
    /// Figure/table id, e.g. `"fig6"`.
    pub figure: &'static str,
    /// Dataset name, e.g. `"DBLPx5"`.
    pub dataset: String,
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Join threshold θ.
    pub theta: f64,
    /// Clustering threshold θc (0 for non-CL algorithms).
    pub theta_c: f64,
    /// Partitioning threshold δ (0 when unused).
    pub delta: usize,
    /// Reduce-side partitions.
    pub partitions: usize,
    /// Simulated cluster nodes.
    pub nodes: usize,
    /// Ranking length.
    pub k: usize,
    /// Dataset size.
    pub n: usize,
    /// Wall-clock seconds of the run on the host.
    pub seconds: f64,
    /// Simulated wall-clock seconds on the configured cluster (per-task
    /// times measured for real, overlap simulated via LPT scheduling onto
    /// the cluster's task slots — see `minispark::StageMetrics::simulated_wall`).
    pub sim_seconds: f64,
    /// Result pairs.
    pub pairs: usize,
    /// Filter counters of the run.
    pub stats: StatsSnapshot,
}

impl Row {
    /// The CSV header matching [`Row::to_csv`].
    pub fn csv_header() -> &'static str {
        "figure,dataset,algorithm,theta,theta_c,delta,partitions,nodes,k,n,seconds,sim_seconds,pairs,candidates,position_pruned,verified,triangle_pruned,triangle_accepted,clusters,singletons,splits,rs_joins"
    }

    /// One CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{},{},{},{},{},{},{},{},{},{}",
            self.figure,
            self.dataset,
            self.algorithm,
            self.theta,
            self.theta_c,
            self.delta,
            self.partitions,
            self.nodes,
            self.k,
            self.n,
            self.seconds,
            self.sim_seconds,
            self.pairs,
            self.stats.candidates,
            self.stats.position_pruned,
            self.stats.verified,
            self.stats.triangle_pruned,
            self.stats.triangle_accepted,
            self.stats.clusters,
            self.stats.singletons,
            self.stats.posting_lists_split,
            self.stats.rs_joins,
        )
    }
}

/// Prints rows as CSV (header + lines) to stdout.
pub fn print_csv(rows: &[Row]) {
    println!("{}", Row::csv_header());
    for row in rows {
        println!("{}", row.to_csv());
    }
}

/// Writes rows as a CSV file.
pub fn write_csv(path: &std::path::Path, rows: &[Row]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{}", Row::csv_header())?;
    for row in rows {
        writeln!(out, "{}", row.to_csv())?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        Row {
            figure: "fig6",
            dataset: "DBLP".into(),
            algorithm: "CL-P",
            theta: 0.3,
            theta_c: 0.03,
            delta: 200,
            partitions: 16,
            nodes: 1,
            k: 10,
            n: 4000,
            seconds: 1.25,
            sim_seconds: 0.5,
            pairs: 42,
            stats: StatsSnapshot::default(),
        }
    }

    #[test]
    fn csv_line_has_header_arity() {
        let row = sample_row();
        let header_fields = Row::csv_header().split(',').count();
        let line_fields = row.to_csv().split(',').count();
        assert_eq!(header_fields, line_fields);
        assert!(row.to_csv().starts_with("fig6,DBLP,CL-P,0.3,"));
    }

    #[test]
    fn write_csv_round_trips() {
        let path = std::env::temp_dir().join(format!("topk-bench-test-{}.csv", std::process::id()));
        write_csv(&path, &[sample_row(), sample_row()]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(&path).unwrap();
    }
}
