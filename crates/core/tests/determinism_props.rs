//! Schedule-independence property suite — the determinism checker's entry
//! point for the paper's join kernels (ISSUE 3, satellite 3).
//!
//! For each driver — VJ, VJ-NL, CL, CL-P, the Jaccard variants and the
//! variable-length join — the same seed and configuration is run under task
//! slot counts `{1, 2, 4, 7}` and eight deterministic schedules (plus the
//! real thread pool as the reference), and every run must produce the
//! bit-identical sorted pair set and stable stage-count metrics. A parallel
//! all-pairs similarity join is only correct if its output is partition-
//! and interleaving-independent; this suite is the executable form of that
//! claim.
//!
//! Deliberately written without `proptest`: the schedule space is explored
//! by `minispark::check::schedule_matrix` from fixed seeds, so failures
//! replay exactly (`Schedule::Seeded(n)` in the error names the schedule).

use minispark::{check_determinism, schedule_matrix, ClusterConfig, Schedule};
use topk_rankings::Ranking;
use topk_simjoin::{
    jaccard_clp_join, jaccard_vj_join, varlen_join, varlen_join_with_skew, Algorithm,
    JaccardConfig, JoinConfig, SkewBudget,
};

const SLOT_COUNTS: [usize; 4] = [1, 2, 4, 7];
const SCHEDULE_SEED: u64 = 0x70_4B_52_4A; // "topk-rank-join"

fn schedules() -> Vec<Schedule> {
    let m = schedule_matrix(8, SCHEDULE_SEED);
    assert_eq!(m.len(), 8, "the issue asks for 8 random schedules");
    m
}

/// A deterministic xorshift so the corpus is identical on every run and
/// platform (no `rand` involvement, no global state).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A small corpus of length-`k` rankings over a token universe narrow
/// enough that near-duplicates (and hence clusters and result pairs) exist.
fn corpus(n: u64, k: usize, universe: u32, seed: u64) -> Vec<Ranking> {
    let mut rng = Rng(seed | 1);
    let mut data = Vec::new();
    for id in 0..n {
        let mut items: Vec<u32> = Vec::with_capacity(k);
        while items.len() < k {
            let tok = (rng.next() % u64::from(universe)) as u32;
            if !items.contains(&tok) {
                items.push(tok);
            }
        }
        data.push(Ranking::new(id, items).expect("distinct items by construction"));
    }
    data
}

/// Mixed-length rankings for the variable-length driver.
fn varlen_corpus(n: u64, universe: u32, seed: u64) -> Vec<Ranking> {
    let mut rng = Rng(seed | 1);
    let mut data = Vec::new();
    for id in 0..n {
        let k = 4 + (rng.next() % 4) as usize; // lengths 4..=7
        let mut items: Vec<u32> = Vec::with_capacity(k);
        while items.len() < k {
            let tok = (rng.next() % u64::from(universe)) as u32;
            if !items.contains(&tok) {
                items.push(tok);
            }
        }
        data.push(Ranking::new(id, items).expect("distinct items by construction"));
    }
    data
}

/// The base cluster configuration: partition counts are pinned so stage
/// shapes do not vary with the probed slot count.
fn base_config() -> ClusterConfig {
    ClusterConfig::local(2).with_default_partitions(5)
}

/// Runs one footrule algorithm through the determinism checker.
fn assert_footrule_deterministic(algo: Algorithm) {
    assert_footrule_deterministic_with_skew(algo, SkewBudget::Off);
}

/// Like [`assert_footrule_deterministic`] but with a skew policy. Only
/// `SkewBudget::Off` and `Fixed` keep the stage shape slot-independent
/// (`Auto` derives its budget from the probed slot count), so those are the
/// policies this suite may explore.
fn assert_footrule_deterministic_with_skew(algo: Algorithm, skew: SkewBudget) {
    let data = corpus(48, 7, 40, 0xD5EED);
    let config = JoinConfig::new(0.35)
        .with_cluster_threshold(0.05)
        .with_partition_threshold(6)
        .with_skew(skew);
    let schedules = schedules();
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules, |cluster| {
        let out = algo
            .run(cluster, &data, &config)
            .expect("join must succeed");
        out.pairs
    })
    .unwrap_or_else(|failure| panic!("{} is schedule-dependent: {failure}", algo.name()));
    assert_eq!(
        outcome.runs,
        SLOT_COUNTS.len() * (schedules.len() + 1),
        "each slot count runs the thread pool plus every schedule"
    );
    assert!(
        !outcome.reference.is_empty(),
        "{}: the corpus is built to produce result pairs — an empty \
         reference would make this test vacuous",
        algo.name()
    );
}

#[test]
fn vj_is_schedule_independent() {
    assert_footrule_deterministic(Algorithm::Vj);
}

#[test]
fn vj_nl_is_schedule_independent() {
    assert_footrule_deterministic(Algorithm::VjNl);
}

#[test]
fn cl_is_schedule_independent() {
    assert_footrule_deterministic(Algorithm::Cl);
}

#[test]
fn cl_p_is_schedule_independent() {
    assert_footrule_deterministic(Algorithm::ClP);
}

#[test]
fn vj_with_skew_splitting_is_schedule_independent() {
    // ISSUE 5, satellites 2 + 4: a fixed split budget routes hot groups
    // through the chunk spread / chunk-pair R-S stages and funnels their
    // hits into the keep-first `vj/dedup-pairs` reducer from many more
    // producer tasks — the dedup stage must stay value-deterministic under
    // every schedule, and the stage-metrics fingerprint must not drift.
    assert_footrule_deterministic_with_skew(Algorithm::Vj, SkewBudget::Fixed(4));
}

#[test]
fn vj_nl_with_skew_splitting_is_schedule_independent() {
    assert_footrule_deterministic_with_skew(Algorithm::VjNl, SkewBudget::Fixed(3));
}

#[test]
fn cl_with_skew_splitting_is_schedule_independent() {
    // CL threads the budget through both the θc clustering self-join (its
    // `cl/cluster/dedup-centroids` reducer) and the centroid join.
    assert_footrule_deterministic_with_skew(Algorithm::Cl, SkewBudget::Fixed(4));
}

#[test]
fn jaccard_vj_is_schedule_independent() {
    let data = corpus(48, 6, 32, 0x1ACCA);
    let config = JaccardConfig::new(0.5).with_cluster_threshold(0.1);
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
        jaccard_vj_join(cluster, &data, &config)
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("jaccard VJ is schedule-dependent: {failure}"));
    assert!(!outcome.reference.is_empty());
}

#[test]
fn jaccard_cl_p_is_schedule_independent() {
    let data = corpus(48, 6, 32, 0x1ACCB);
    let config = JaccardConfig::new(0.5)
        .with_cluster_threshold(0.1)
        .with_partition_threshold(6);
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
        jaccard_clp_join(cluster, &data, &config)
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("jaccard CL-P is schedule-dependent: {failure}"));
    assert!(!outcome.reference.is_empty());
}

#[test]
fn jaccard_vj_with_skew_splitting_is_schedule_independent() {
    // Covers the Jaccard dedup stages (`jaccard-vj/dedup`) with split
    // groups feeding them.
    let data = corpus(48, 6, 32, 0x1ACCA);
    let config = JaccardConfig::new(0.5)
        .with_cluster_threshold(0.1)
        .with_skew(SkewBudget::Fixed(4));
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
        jaccard_vj_join(cluster, &data, &config)
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("jaccard VJ with skew is schedule-dependent: {failure}"));
    assert!(!outcome.reference.is_empty());
}

#[test]
fn varlen_with_skew_splitting_is_schedule_independent() {
    let data = varlen_corpus(48, 28, 0x7A51);
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
        varlen_join_with_skew(cluster, &data, 30, 5, SkewBudget::Fixed(3))
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("varlen join with skew is schedule-dependent: {failure}"));
    assert!(!outcome.reference.is_empty());
}

#[test]
fn varlen_is_schedule_independent() {
    let data = varlen_corpus(48, 28, 0x7A51);
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
        varlen_join(cluster, &data, 30, 5)
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("varlen join is schedule-dependent: {failure}"));
    assert!(!outcome.reference.is_empty());
}
