//! Property tests at the kernel and phase level of `topk-simjoin`.

use std::sync::Arc;

use proptest::prelude::*;
use topk_rankings::{FrequencyTable, OrderedRanking, Ranking};
use topk_simjoin::kernels::{
    join_group_indexed, join_group_nested_loop, join_group_rs, GroupScratch, GroupThresholds,
    TokenEntry,
};
use topk_simjoin::JoinStats;

/// A token group: rankings of length `k` over a small universe that all
/// contain item 0 (the "group token").
fn token_group(n: usize, k: usize, universe: u32) -> impl Strategy<Value = Vec<TokenEntry>> {
    proptest::collection::vec(
        proptest::sample::subsequence((1..universe).collect::<Vec<u32>>(), k - 1).prop_shuffle(),
        1..n,
    )
    .prop_map(move |rows| {
        let rankings: Vec<Ranking> = rows
            .into_iter()
            .enumerate()
            .map(|(id, mut items)| {
                // Put the shared token 0 at a pseudo-random position.
                let pos = id % k;
                items.insert(pos.min(items.len()), 0);
                Ranking::new_unchecked(id as u64, items)
            })
            .collect();
        let freq = FrequencyTable::from_rankings(&rankings);
        rankings
            .iter()
            .map(|r| {
                let ordered = OrderedRanking::by_frequency(r, &freq);
                let rank = ordered.rank_of(0).expect("token 0 present") as u16;
                TokenEntry::plain(rank, Arc::new(ordered))
            })
            .collect()
    })
}

fn normalize(results: Vec<(usize, usize, u64)>, entries: &[TokenEntry]) -> Vec<(u64, u64, u64)> {
    let mut out: Vec<(u64, u64, u64)> = results
        .into_iter()
        .map(|(i, j, d)| {
            let (a, b) = (entries[i].ranking.id(), entries[j].ranking.id());
            (a.min(b), a.max(b), d)
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The two kernel styles must find the identical pair set: the group
    // token is in every member's prefix, so the indexed kernel's prefix
    // probing covers all pairs the nested loop enumerates.
    #[test]
    fn indexed_kernel_equals_nested_loop(
        entries in token_group(14, 6, 20),
        theta_raw in 0u64..=42,
        prefix_len in 1usize..=6,
        pos_filter in any::<bool>(),
    ) {
        let s1 = JoinStats::default();
        let nl = normalize(
            join_group_nested_loop(&entries, &GroupThresholds::Uniform(theta_raw), pos_filter, &s1),
            &entries,
        );
        let s2 = JoinStats::default();
        let ix = normalize(
            join_group_indexed(
                &entries,
                |_| prefix_len,
                &GroupThresholds::Uniform(theta_raw),
                pos_filter,
                &s2,
                &mut GroupScratch::new(),
            ),
            &entries,
        );
        // The indexed kernel only probes `prefix_len` tokens — completeness
        // within a group needs the group token inside that prefix. With the
        // full prefix the sets must match exactly.
        if prefix_len == 6 {
            prop_assert_eq!(&ix, &nl);
        } else {
            // Shorter prefixes can only lose pairs, never invent them.
            for hit in &ix {
                prop_assert!(nl.contains(hit), "indexed invented {hit:?}");
            }
        }
    }

    // The R-S kernel over a split of the group equals the nested loop
    // restricted to cross-split pairs.
    #[test]
    fn rs_kernel_covers_cross_pairs(
        entries in token_group(14, 6, 20),
        theta_raw in 0u64..=42,
        split_at in 0usize..14,
    ) {
        let split_at = split_at.min(entries.len());
        let (left, right) = entries.split_at(split_at);
        let s = JoinStats::default();
        let rs: Vec<(u64, u64, u64)> = {
            let mut out: Vec<(u64, u64, u64)> =
                join_group_rs(left, right, &GroupThresholds::Uniform(theta_raw), false, &s)
                    .into_iter()
                    .map(|(i, j, d)| {
                        let (a, b) = (left[i].ranking.id(), right[j].ranking.id());
                        (a.min(b), a.max(b), d)
                    })
                    .collect();
            out.sort_unstable();
            out
        };
        let s2 = JoinStats::default();
        let all = normalize(
            join_group_nested_loop(&entries, &GroupThresholds::Uniform(theta_raw), false, &s2),
            &entries,
        );
        let left_ids: std::collections::HashSet<u64> =
            left.iter().map(|e| e.ranking.id()).collect();
        let right_ids: std::collections::HashSet<u64> =
            right.iter().map(|e| e.ranking.id()).collect();
        let expected: Vec<(u64, u64, u64)> = all
            .into_iter()
            .filter(|(a, b, _)| {
                (left_ids.contains(a) && right_ids.contains(b))
                    || (left_ids.contains(b) && right_ids.contains(a))
            })
            .collect();
        prop_assert_eq!(rs, expected);
    }

    // Verification counters are consistent: results ≤ verified ≤ candidates,
    // and position pruning only reduces verifications.
    #[test]
    fn kernel_stats_are_consistent(
        entries in token_group(12, 5, 16),
        theta_raw in 0u64..=30,
    ) {
        let stats = JoinStats::default();
        let results =
            join_group_nested_loop(&entries, &GroupThresholds::Uniform(theta_raw), true, &stats);
        let snap = stats.snapshot();
        prop_assert_eq!(snap.result_pairs as usize, results.len());
        prop_assert!(snap.verified <= snap.candidates);
        prop_assert_eq!(snap.verified + snap.position_pruned, snap.candidates);
    }
}
