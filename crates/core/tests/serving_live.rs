//! Concurrent + durability integration tests for the online serving layer.
//!
//! Three properties, matching the serving design (DESIGN.md §16):
//!
//! 1. **No duplicate ids under concurrency** — while writers upsert and
//!    delete over live HTTP, every `/query` response names each ranking id
//!    at most once (the tombstoned-slot upsert keeps "one live slot per id"
//!    true at every instant a reader can observe).
//! 2. **Deterministic convergence** — writers owning disjoint id ranges
//!    interleave arbitrarily, yet the final state equals each writer's
//!    operations replayed serially.
//! 3. **Kill-and-restart equivalence** — a server restarted from its WAL
//!    (even with a torn tail appended) answers every query bit-identically
//!    to a server that never went down.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use minispark::Json;
use topk_rankings::{Ranking, RankingId};
use topk_simjoin::serving::FOREIGN_QUERY_ID;
use topk_simjoin::{ServingConfig, ServingIndex, ServingServer};

type TestResult = Result<(), Box<dyn std::error::Error>>;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "topk-serving-live-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A k=6 ranking: a permutation of `0..6` rotated by `seed`, with one
/// adjacent transposition chosen by `seed` — every pair of such rankings
/// is close, so queries return rich result sets.
fn permuted(id: RankingId, seed: u64) -> Ranking {
    let mut items: Vec<u32> = (0..6).map(|i| (i + seed as u32) % 6).collect();
    let swap = (seed as usize) % 5;
    items.swap(swap, swap + 1);
    Ranking::new(id, items).expect("rotation of distinct items stays distinct")
}

fn http(addr: SocketAddr, head: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let payload = body.unwrap_or("");
    let request = format!(
        "{head} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn upsert_body(rankings: &[Ranking]) -> String {
    let docs: Vec<String> = rankings
        .iter()
        .map(|r| {
            let items: Vec<String> = r.items().iter().map(u32::to_string).collect();
            format!(r#"{{"id": {}, "items": [{}]}}"#, r.id(), items.join(","))
        })
        .collect();
    format!("[{}]", docs.join(","))
}

/// Extracts the match ids from a `/query` or `/nearest` JSON response.
fn match_ids(body: &str) -> Vec<u64> {
    let doc = Json::parse(body).expect("response is JSON");
    doc.get("matches")
        .and_then(Json::as_arr)
        .expect("matches array")
        .iter()
        .map(|m| m.get("id").and_then(Json::as_u64).expect("numeric id"))
        .collect()
}

#[test]
fn concurrent_writers_and_readers_see_no_duplicate_ids() -> TestResult {
    const WRITERS: usize = 3;
    const READERS: usize = 3;
    const OPS_PER_WRITER: u64 = 40;
    const IDS_PER_WRITER: u64 = 8;

    let service = Arc::new(ServingIndex::ephemeral(
        // Aggressive compaction so readers also race rebuilds.
        ServingConfig::new(0.5).with_compact_ratio(0.2),
    )?);
    let server = ServingServer::start(0, Arc::clone(&service), 4)?;
    let addr = server.addr();

    let mut handles = Vec::new();
    for w in 0..WRITERS as u64 {
        handles.push(std::thread::spawn(move || {
            // Each writer owns ids [w*IDS, (w+1)*IDS): re-upserting its own
            // ids over and over forces constant replacement, and every
            // third op deletes (then later revives) an id.
            for op in 0..OPS_PER_WRITER {
                let id = w * IDS_PER_WRITER + (op % IDS_PER_WRITER);
                if op % 3 == 2 {
                    http(addr, &format!("DELETE /rankings/{id}"), None);
                } else {
                    let r = permuted(id, op + w * 100);
                    let (status, body) = http(addr, "POST /rankings", Some(&upsert_body(&[r])));
                    assert_eq!(status, 200, "writer upsert failed: {body}");
                }
            }
        }));
    }
    for _ in 0..READERS {
        handles.push(std::thread::spawn(move || {
            for probe in 0..60u64 {
                let (status, body) = http(
                    addr,
                    &format!("GET /query?theta=0.5&items=0,1,2,3,4,5&id={FOREIGN_QUERY_ID}"),
                    None,
                );
                assert_eq!(status, 200, "{body}");
                let ids = match_ids(&body);
                let unique: HashSet<u64> = ids.iter().copied().collect();
                assert_eq!(
                    unique.len(),
                    ids.len(),
                    "duplicate ids in a concurrent query response: {ids:?}"
                );
                if probe % 10 == 0 {
                    let (status, metrics) = http(addr, "GET /metrics", None);
                    assert_eq!(status, 200);
                    assert!(metrics.contains("serving_queries_total"), "{metrics}");
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("workload thread");
    }

    // Deterministic convergence: each id's final state depends only on its
    // owning writer's (serial) op sequence, so replay it.
    let mut expected: HashMap<u64, Option<Ranking>> = HashMap::new();
    for w in 0..WRITERS as u64 {
        for op in 0..OPS_PER_WRITER {
            let id = w * IDS_PER_WRITER + (op % IDS_PER_WRITER);
            if op % 3 == 2 {
                expected.insert(id, None);
            } else {
                expected.insert(id, Some(permuted(id, op + w * 100)));
            }
        }
    }
    let live_expected = expected.values().flatten().count();
    assert_eq!(service.len(), live_expected);
    for (id, want) in &expected {
        assert_eq!(service.get(*id).as_ref(), want.as_ref(), "id {id}");
    }
    Ok(())
}

/// Applies the shared workload to a service: interleaved upserts (some
/// replacing), deletes, and batch writes.
fn apply_workload(service: &ServingIndex, ops: &[(u64, u64, bool)]) {
    for &(id, seed, delete) in ops {
        if delete {
            service.delete(id).expect("delete");
        } else {
            service.upsert_batch(&[permuted(id, seed)]).expect("upsert");
        }
    }
}

fn workload() -> Vec<(u64, u64, bool)> {
    (0..120u64)
        .map(|op| {
            let id = op % 17;
            (id, op * 7 + 3, op % 5 == 4)
        })
        .collect()
}

#[test]
fn killed_and_restarted_server_answers_identically() -> TestResult {
    let dir = temp_dir("restart-equivalence");
    // Small snapshot cadence so the workload crosses several
    // snapshot-then-truncate cycles before the "crash".
    let config = ServingConfig::new(0.5).with_snapshot_every(25);
    let ops = workload();
    let (first_half, second_half) = ops.split_at(ops.len() / 2);

    // Reference: one service that never restarts.
    let reference = ServingIndex::ephemeral(config.clone())?;
    apply_workload(&reference, &ops);

    // Victim: restarted twice mid-workload — dropped without any shutdown
    // hook, so recovery runs purely from snapshot + WAL.
    {
        let (victim, _) = ServingIndex::open(&dir, config.clone())?;
        apply_workload(&victim, first_half);
    }
    {
        let (victim, replay) = ServingIndex::open(&dir, config.clone())?;
        assert!(
            replay.snapshot_rankings > 0 || replay.wal_records > 0,
            "the first half must have left durable state"
        );
        apply_workload(&victim, second_half);
    }
    // Simulate a torn final append before the last restart.
    let wal_path = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path)?;
    bytes.extend_from_slice(&[42, 42, 42]);
    std::fs::write(&wal_path, &bytes)?;

    let (victim, replay) = ServingIndex::open(&dir, config)?;
    assert_eq!(
        replay.dropped_bytes, 3,
        "the torn tail is dropped, not fatal"
    );

    // Bit-identical answers across the full query surface.
    assert_eq!(victim.len(), reference.len());
    for probe in 0..23u64 {
        let query = permuted(FOREIGN_QUERY_ID, probe);
        for theta in [0.1, 0.3, 0.5] {
            let got = victim.query(&query, theta)?;
            let want = reference.query(&query, theta)?;
            assert_eq!(got, want, "theta {theta} probe {probe}");
        }
        assert_eq!(victim.nearest(&query, 5)?, reference.nearest(&query, 5)?);
    }
    for id in 0..17u64 {
        assert_eq!(victim.get(id), reference.get(id), "id {id}");
    }
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}

#[test]
fn http_server_restart_preserves_every_response() -> TestResult {
    let dir = temp_dir("http-restart");
    let config = ServingConfig::new(0.4).with_snapshot_every(10);

    let queries: Vec<String> = (0..6)
        .map(|i| {
            format!(
                "GET /query?theta=0.4&items={},{},{},{},{},{}",
                i % 6,
                (i + 1) % 6,
                (i + 2) % 6,
                (i + 3) % 6,
                (i + 4) % 6,
                (i + 5) % 6
            )
        })
        .collect();

    let before: Vec<String> = {
        let (service, _) = ServingIndex::open(&dir, config.clone())?;
        let server = ServingServer::start(0, Arc::new(service), 2)?;
        let addr = server.addr();
        for op in 0..30u64 {
            let r = permuted(op % 11, op);
            let (status, body) = http(addr, "POST /rankings", Some(&upsert_body(&[r])));
            assert_eq!(status, 200, "{body}");
            if op % 4 == 3 {
                http(addr, &format!("DELETE /rankings/{}", (op + 2) % 11), None);
            }
        }
        queries
            .iter()
            .map(|q| {
                let (status, body) = http(addr, q, None);
                assert_eq!(status, 200, "{body}");
                body
            })
            .collect()
        // server + service drop here: the "kill".
    };

    let (service, replay) = ServingIndex::open(&dir, config)?;
    assert!(replay.snapshot_rankings > 0 || replay.wal_records > 0);
    let server = ServingServer::start(0, Arc::new(service), 2)?;
    let addr = server.addr();
    for (q, expected) in queries.iter().zip(&before) {
        let (status, body) = http(addr, q, None);
        assert_eq!(status, 200);
        assert_eq!(&body, expected, "response to {q} changed across restart");
    }
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
