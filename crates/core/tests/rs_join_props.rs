//! Schedule-independence property suite for the two-relation (R-S) join
//! entry points (ISSUE 9, satellite 4).
//!
//! Every R-S driver — VJ, VJ-NL, CL, the Jaccard variant and the
//! variable-length join — is run under task slot counts `{1, 2, 4, 7}` and
//! eight deterministic schedules (plus the real thread pool as reference),
//! and every run must produce the bit-identical sorted pair set. The
//! reference pair set is additionally checked against the bipartite
//! nested-loop baseline, on relations whose id spaces deliberately
//! *overlap* — the regression the self-join-only drivers could never
//! exercise. A skew-budget invariance test on a Zipf-hot R-S dataset
//! closes the loop: `Off`, `Auto` and `Fixed` must agree pairwise even
//! when hot token groups are split into R-S chunk pairs.
//!
//! Deliberately written without `proptest`: the schedule space is explored
//! by `minispark::check::schedule_matrix` from fixed seeds, so failures
//! replay exactly (`Schedule::Seeded(n)` in the error names the schedule).

use minispark::{check_determinism, schedule_matrix, Cluster, ClusterConfig, Schedule};
use topk_rankings::Ranking;
use topk_simjoin::{
    brute_force_join_rs, cl_join_rs, jaccard_brute_force_rs, jaccard_vj_join_rs,
    varlen_brute_force_rs, varlen_join_rs_with_skew, vj_join_rs, vj_nl_join_rs, JaccardConfig,
    JoinConfig, SkewBudget,
};

const SLOT_COUNTS: [usize; 4] = [1, 2, 4, 7];
const SCHEDULE_SEED: u64 = 0x70_4B_52_53; // "topk-rank-RS"

fn schedules() -> Vec<Schedule> {
    let m = schedule_matrix(8, SCHEDULE_SEED);
    assert_eq!(m.len(), 8, "the issue asks for 8 random schedules");
    m
}

/// A deterministic xorshift so the corpora are identical on every run and
/// platform (no `rand` involvement, no global state).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A corpus of length-`k` rankings over a narrow token universe, with ids
/// starting at 0 — both relations use 0-based ids, so their id spaces
/// overlap by construction.
fn corpus(n: u64, k: usize, universe: u32, seed: u64) -> Vec<Ranking> {
    let mut rng = Rng(seed | 1);
    let mut data = Vec::new();
    for id in 0..n {
        let mut items: Vec<u32> = Vec::with_capacity(k);
        while items.len() < k {
            let tok = (rng.next() % u64::from(universe)) as u32;
            if !items.contains(&tok) {
                items.push(tok);
            }
        }
        data.push(Ranking::new(id, items).expect("distinct items by construction"));
    }
    data
}

/// Mixed-length rankings (lengths 4..=7) for the variable-length driver.
fn varlen_corpus(n: u64, universe: u32, seed: u64) -> Vec<Ranking> {
    let mut rng = Rng(seed | 1);
    let mut data = Vec::new();
    for id in 0..n {
        let k = 4 + (rng.next() % 4) as usize;
        let mut items: Vec<u32> = Vec::with_capacity(k);
        while items.len() < k {
            let tok = (rng.next() % u64::from(universe)) as u32;
            if !items.contains(&tok) {
                items.push(tok);
            }
        }
        data.push(Ranking::new(id, items).expect("distinct items by construction"));
    }
    data
}

/// A Zipf-hot corpus: one token opens (almost) every ranking, so its
/// posting list dwarfs the rest and the skew subsystem has a genuinely hot
/// group to split into R-S chunk pairs.
fn zipf_hot_corpus(n: u64, k: usize, universe: u32, seed: u64) -> Vec<Ranking> {
    const HOT_TOKEN: u32 = 0;
    let mut rng = Rng(seed | 1);
    let mut data = Vec::new();
    for id in 0..n {
        let mut items: Vec<u32> = Vec::with_capacity(k);
        // Nine out of ten rankings lead with the hot token.
        if id % 10 != 9 {
            items.push(HOT_TOKEN);
        }
        while items.len() < k {
            let tok = 1 + (rng.next() % u64::from(universe - 1)) as u32;
            if !items.contains(&tok) {
                items.push(tok);
            }
        }
        data.push(Ranking::new(id, items).expect("distinct items by construction"));
    }
    data
}

/// The base cluster configuration: partition counts are pinned so stage
/// shapes do not vary with the probed slot count.
fn base_config() -> ClusterConfig {
    ClusterConfig::local(2).with_default_partitions(5)
}

fn reference_cluster() -> Cluster {
    Cluster::new(base_config())
}

/// The two overlapping-id footrule relations every footrule R-S test uses.
/// The right relation perturbs a subset of the left (one adjacent swap per
/// ranking), so near-duplicates — and hence cross pairs — exist by
/// construction; both sides carry ids 0, 1, 2, … and duplicate tokens
/// across relations abound.
fn footrule_relations() -> (Vec<Ranking>, Vec<Ranking>) {
    let left = corpus(48, 7, 40, 0xD5EED);
    let mut rng = Rng(0xBEEF);
    let right: Vec<Ranking> = left
        .iter()
        .take(36)
        .map(|r| {
            let mut items = r.items().to_vec();
            let i = (rng.next() % (items.len() as u64 - 1)) as usize;
            items.swap(i, i + 1);
            Ranking::new(r.id(), items).expect("a swap keeps items distinct")
        })
        .collect();
    (left, right)
}

/// Runs one footrule R-S driver through the determinism checker and checks
/// its reference pair set against the bipartite nested-loop baseline.
fn assert_rs_deterministic(
    name: &str,
    skew: SkewBudget,
    driver: impl Fn(
        &Cluster,
        &[Ranking],
        &[Ranking],
        &JoinConfig,
    ) -> Result<topk_simjoin::JoinOutcome, topk_simjoin::JoinError>,
) {
    let (left, right) = footrule_relations();
    let config = JoinConfig::new(0.35)
        .with_cluster_threshold(0.05)
        .with_partition_threshold(6)
        .with_skew(skew);
    let schedules = schedules();
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules, |cluster| {
        driver(cluster, &left, &right, &config)
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("{name} is schedule-dependent: {failure}"));
    assert_eq!(
        outcome.runs,
        SLOT_COUNTS.len() * (schedules.len() + 1),
        "each slot count runs the thread pool plus every schedule"
    );
    let expected = brute_force_join_rs(&reference_cluster(), &left, &right, config.theta)
        .expect("baseline must succeed")
        .pairs;
    assert_eq!(
        outcome.reference, expected,
        "{name} disagrees with the bipartite nested-loop baseline"
    );
    assert!(
        !expected.is_empty(),
        "{name}: the corpora are built to produce cross pairs — an empty \
         reference would make this test vacuous"
    );
}

#[test]
fn vj_rs_is_schedule_independent_and_matches_the_baseline() {
    assert_rs_deterministic("VJ-RS", SkewBudget::Off, vj_join_rs);
}

#[test]
fn vj_nl_rs_is_schedule_independent_and_matches_the_baseline() {
    assert_rs_deterministic("VJ-NL-RS", SkewBudget::Off, vj_nl_join_rs);
}

#[test]
fn cl_rs_is_schedule_independent_and_matches_the_baseline() {
    assert_rs_deterministic("CL-RS", SkewBudget::Off, cl_join_rs);
}

#[test]
fn vj_rs_with_skew_splitting_is_schedule_independent() {
    // A fixed budget routes hot token groups through the R-S chunk-pair
    // stages; the dedup reducer must stay value-deterministic under every
    // schedule. (`Auto` derives its budget from the probed slot count, so
    // only `Off`/`Fixed` may enter the determinism checker.)
    assert_rs_deterministic("VJ-RS (skew)", SkewBudget::Fixed(3), vj_join_rs);
}

#[test]
fn jaccard_rs_is_schedule_independent_and_matches_the_baseline() {
    let left = corpus(48, 6, 32, 0x1ACCA);
    let right = corpus(36, 6, 32, 0x1ACCB);
    let config = JaccardConfig::new(0.5).with_cluster_threshold(0.1);
    let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
        jaccard_vj_join_rs(cluster, &left, &right, &config)
            .expect("join must succeed")
            .pairs
    })
    .unwrap_or_else(|failure| panic!("jaccard VJ-RS is schedule-dependent: {failure}"));
    let expected = jaccard_brute_force_rs(&reference_cluster(), &left, &right, config.theta)
        .expect("baseline must succeed")
        .pairs;
    assert_eq!(outcome.reference, expected);
    assert!(!expected.is_empty());
}

#[test]
fn varlen_rs_is_schedule_independent_and_matches_the_baseline() {
    let left = varlen_corpus(48, 28, 0x7A51);
    let right = varlen_corpus(36, 28, 0x7A52);
    for skew in [SkewBudget::Off, SkewBudget::Fixed(3)] {
        let outcome = check_determinism(&base_config(), &SLOT_COUNTS, &schedules(), |cluster| {
            varlen_join_rs_with_skew(cluster, &left, &right, 30, 5, skew)
                .expect("join must succeed")
                .pairs
        })
        .unwrap_or_else(|failure| panic!("varlen R-S ({skew:?}) is schedule-dependent: {failure}"));
        let expected = varlen_brute_force_rs(&reference_cluster(), &left, &right, 30)
            .expect("baseline must succeed")
            .pairs;
        assert_eq!(outcome.reference, expected, "{skew:?}");
        assert!(!expected.is_empty());
    }
}

#[test]
fn rs_skew_budgets_agree_on_a_zipf_hot_dataset() {
    // Off/Auto/Fixed must produce the identical pair set even when the hot
    // token's bipartite group is split into R-S chunk pairs. `Auto` is
    // slot-count-dependent, so this runs on one fixed cluster rather than
    // through the determinism checker.
    let left = zipf_hot_corpus(60, 7, 30, 0x21BF);
    let right = zipf_hot_corpus(45, 7, 30, 0x21C0);
    let cluster = reference_cluster();
    let expected = brute_force_join_rs(&cluster, &left, &right, 0.35)
        .expect("baseline must succeed")
        .pairs;
    assert!(!expected.is_empty(), "hot corpora must produce cross pairs");
    let mut split_seen = false;
    for skew in [SkewBudget::Off, SkewBudget::Auto, SkewBudget::Fixed(1)] {
        let config = JoinConfig::new(0.35)
            .with_partition_threshold(6)
            .with_skew(skew);
        for (name, driver) in [
            ("VJ-RS", vj_join_rs as fn(_, _, _, _) -> _),
            ("VJ-NL-RS", vj_nl_join_rs),
            ("CL-RS", cl_join_rs),
        ] {
            let outcome = driver(&cluster, &left, &right, &config).expect("join must succeed");
            assert_eq!(outcome.pairs, expected, "{name} under {skew:?}");
            split_seen |= outcome.stats.posting_lists_split > 0;
        }
    }
    assert!(
        split_seen,
        "a Zipf-hot dataset under SkewBudget::Fixed(1) must actually split \
         a posting list — otherwise this test never exercises the R-S \
         chunk-pair path"
    );
}
