//! Spill-replay behaviour of the join pipelines.
//!
//! Two properties: (1) forcing the shuffle groups through the spilling
//! group-by must not change any join's pair set, and (2) replaying a
//! spilled partition must re-share `OrderedRanking` allocations through the
//! decode interner instead of materializing one copy per prefix-token
//! occurrence.

use std::collections::HashMap;
use std::sync::Arc;

use minispark::{Cluster, ClusterConfig};
use topk_rankings::{FrequencyTable, OrderedRanking, Ranking};
use topk_simjoin::kernels::TokenEntry;
use topk_simjoin::{clp_join, vj_join, vj_nl_join, JoinConfig, JoinError, JoinOutcome};

const K: usize = 5;

/// A deterministic dataset with plenty of near-duplicate rankings so every
/// join style produces a non-trivial pair set.
fn dataset(n: u64) -> Vec<Ranking> {
    (0..n)
        .map(|id| {
            let base = (id % 7) as u32;
            let items: Vec<u32> = (0..K as u32)
                .map(|pos| (base + pos * (1 + (id % 3) as u32)) % 23)
                .collect();
            // Rotate to vary order between near-identical item sets.
            let rot = (id % K as u64) as usize;
            let mut rotated = items.clone();
            rotated.rotate_left(rot);
            Ranking::new(id, dedup_pad(rotated)).expect("valid ranking")
        })
        .collect()
}

/// Makes the item list distinct (rankings require distinct items) while
/// keeping length `K`.
fn dedup_pad(items: Vec<u32>) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(K);
    let mut next_fill = 100;
    for item in items {
        if out.contains(&item) {
            out.push(next_fill);
            next_fill += 1;
        } else {
            out.push(item);
        }
    }
    out
}

#[test]
fn spilled_joins_match_in_memory_joins() {
    let data = dataset(120);
    let config = JoinConfig::new(0.35);
    let plain = Cluster::new(ClusterConfig::local(2));
    let spilly = Cluster::new(ClusterConfig::local(2).with_spill_budget(8));

    type Join = fn(&Cluster, &[Ranking], &JoinConfig) -> Result<JoinOutcome, JoinError>;
    let runs: [(&str, Join); 3] = [("vj", vj_join), ("vj-nl", vj_nl_join), ("cl-p", clp_join)];
    for (name, join) in runs {
        let baseline = join(&plain, &data, &config).expect("in-memory join");
        let spilled = join(&spilly, &data, &config).expect("spilled join");
        assert_eq!(
            baseline.pairs, spilled.pairs,
            "{name}: spilling changed the pair set"
        );
    }
    assert!(
        spilly.metrics().total_spilled_runs() > 0,
        "the budget must actually force spills"
    );
    assert_eq!(plain.metrics().total_spilled_runs(), 0);
}

#[test]
fn replayed_partitions_share_ranking_allocations() {
    // Emit every ranking once per prefix token — the shape of the real
    // prefix shuffle — and group with a budget small enough that most
    // records go through encode → disk → decode. On a single-thread
    // cluster every decode hits the same interner, so each ranking id may
    // own at most two allocations afterwards: the map-side original (for
    // occurrences that never spilled) and one shared replay copy.
    let cluster = Cluster::new(ClusterConfig::local(1).with_spill_budget(4));
    let freq = FrequencyTable::default();
    let rankings: Vec<Arc<OrderedRanking>> = dataset(40)
        .iter()
        .map(|r| Arc::new(OrderedRanking::by_frequency(r, &freq)))
        .collect();
    let records: Vec<(u32, TokenEntry)> = rankings
        .iter()
        .flat_map(|r| {
            r.pairs()
                .iter()
                .map(|&(item, rank)| (item, TokenEntry::plain(rank, Arc::clone(r))))
                .collect::<Vec<_>>()
        })
        .collect();
    let occurrences_per_id = K;

    let grouped = cluster
        .parallelize(records, 6)
        .group_by_key_spilling("intern-test/group-by-token", 4)
        .collect();
    assert!(
        cluster.metrics().total_spilled_runs() > 0,
        "the budget must actually force spills"
    );

    let mut allocations: HashMap<u64, Vec<*const OrderedRanking>> = HashMap::new();
    let mut total = 0usize;
    for (_, entries) in &grouped {
        for entry in entries {
            total += 1;
            let ptr = Arc::as_ptr(&entry.ranking);
            let ptrs = allocations.entry(entry.ranking.id()).or_default();
            if !ptrs.contains(&ptr) {
                ptrs.push(ptr);
            }
        }
    }
    assert_eq!(total, rankings.len() * occurrences_per_id);
    for (id, ptrs) in &allocations {
        assert!(
            ptrs.len() <= 2,
            "ranking {id} owns {} allocations across its {occurrences_per_id} \
             occurrences; replay must intern, not multiply",
            ptrs.len()
        );
    }
    // Globally the interner must have collapsed most replayed copies: far
    // fewer allocations than occurrences.
    let distinct: usize = allocations.values().map(Vec::len).sum();
    assert!(
        distinct <= rankings.len() * 2,
        "{distinct} allocations for {} rankings",
        rankings.len()
    );
}
