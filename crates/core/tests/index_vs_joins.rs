//! Cross-checks between the online range-search index and the batch joins:
//! querying the index for every record must reproduce the batch join's
//! result set exactly — two very different code paths over the same bounds.

use std::collections::BTreeSet;

use minispark::{Cluster, ClusterConfig};
use topk_datagen::CorpusProfile;
use topk_simjoin::{Algorithm, JoinConfig, RankingIndex};

#[test]
fn per_record_queries_reproduce_the_batch_join() {
    let data = CorpusProfile::orku_like(350, 10).generate();
    let cluster = Cluster::new(ClusterConfig::local(4));
    for theta in [0.1, 0.25] {
        let batch: BTreeSet<(u64, u64)> = Algorithm::ClP
            .run(
                &cluster,
                &data,
                &JoinConfig::new(theta).with_partition_threshold(20),
            )
            .unwrap()
            .pairs
            .into_iter()
            .collect();
        let index = RankingIndex::build(&data, theta).unwrap();
        let mut from_queries: BTreeSet<(u64, u64)> = BTreeSet::new();
        for query in &data {
            for (id, _) in index.range_query(query, theta).unwrap() {
                let (a, b) = if query.id() < id {
                    (query.id(), id)
                } else {
                    (id, query.id())
                };
                from_queries.insert((a, b));
            }
        }
        assert_eq!(from_queries, batch, "θ = {theta}");
    }
}

#[test]
fn incremental_index_agrees_with_rebuilt_index() {
    let data = CorpusProfile::dblp_like(300, 10).generate();
    let (head, tail) = data.split_at(200);
    let mut incremental = RankingIndex::build(head, 0.25).unwrap();
    for r in tail {
        incremental.insert_ranking(r).unwrap();
    }
    let rebuilt = RankingIndex::build(&data, 0.25).unwrap();
    for query in data.iter().step_by(23) {
        let a = incremental.range_query(query, 0.25).unwrap();
        let mut b = rebuilt.range_query(query, 0.25).unwrap();
        // The rebuilt index uses frequencies from the whole dataset, the
        // incremental one from the first 200 records — different canonical
        // orders, same exact answer.
        b.sort_by_key(|&(id, d)| (d, id));
        assert_eq!(a, b, "query {}", query.id());
    }
}
