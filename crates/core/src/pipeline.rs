//! Shared pipeline stages: the *Ordering* phase, prefix emission, and the
//! token-grouped join that underlies VJ, VJ-NL, the clustering phase, the
//! centroid join and CL-P's repartitioned variants.
//!
//! The dataflow mirrors §4 of the paper:
//!
//! ```text
//! rankings ─ count item frequencies ─ broadcast order ─ canonicalize
//!          ─ emit (prefix-token, ranking) pairs ─ group by token
//!          ─ per-group join kernel ─ deduplicate
//! ```
//!
//! With a partitioning threshold δ ([`token_grouped_join`]'s `delta`), groups
//! larger than δ are split into sub-partitions that are re-distributed with a
//! composite `(token, sub-key)` partitioner and joined pairwise with an R-S
//! kernel — Algorithm 3 / §6.

use std::sync::Arc;

use minispark::{Cluster, Counter, Dataset, SkewBudget};
use topk_rankings::{
    FrequencyTable, ItemId, OrderedRanking, PrefixKind, Ranking, Relation, ResultPair,
};

use crate::kernels::{
    join_group_indexed, join_group_nested_loop, join_group_rs, with_group_scratch, GroupThresholds,
    JoinMode, TokenEntry,
};
use crate::stats::JoinStats;

/// Which per-group kernel a pipeline uses (§4 vs. §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupJoinStyle {
    /// VJ: group-local inverted index over member prefixes.
    Indexed,
    /// VJ-NL: streaming nested loop over the group.
    NestedLoop,
}

/// A qualifying pair with everything downstream phases need: both rankings
/// (shared `Arc`s), the exact distance, the centroid-type tags and the
/// source relations.
///
/// The pair is normalized by `(relation, id)`: in a self-join (both records
/// [`Relation::Left`]) `a.id() < b.id()` holds as before, and in a bipartite
/// R-S join `a` is always the left-relation record — id ordering alone
/// cannot identify the relation there because the two id spaces may overlap.
#[derive(Debug, Clone)]
pub struct PairHit {
    /// The record with the smaller `(relation, id)` key.
    pub a: Arc<OrderedRanking>,
    /// The record with the larger `(relation, id)` key.
    pub b: Arc<OrderedRanking>,
    /// Raw Footrule distance.
    pub distance: u64,
    /// Singleton tag of `a` (centroid joins only; `false` in self-joins).
    pub a_singleton: bool,
    /// Singleton tag of `b`.
    pub b_singleton: bool,
    /// Source relation of `a` ([`Relation::Left`] in self-joins).
    pub a_relation: Relation,
    /// Source relation of `b` ([`Relation::Left`] in self-joins).
    pub b_relation: Relation,
}

impl PairHit {
    /// The id pair `(a, b)`; `a < b` in self-joins, while in an R-S join
    /// this is `(left id, right id)` with no ordering guarantee.
    pub fn ids(&self) -> (u64, u64) {
        (self.a.id(), self.b.id())
    }

    /// The full record-identity pair — the deduplication key. Relations are
    /// part of the key because R and S id spaces may overlap.
    pub fn record_keys(&self) -> ((u8, u64), (u8, u64)) {
        (
            (self.a_relation.as_u8(), self.a.id()),
            (self.b_relation.as_u8(), self.b.id()),
        )
    }

    /// Conversion to the id-level result representation.
    pub fn to_result_pair(&self) -> ResultPair {
        ResultPair::new(self.a.id(), self.b.id(), self.distance)
    }
}

/// Sentinel "token" under which rankings meet when the applicable threshold
/// admits **disjoint** pairs (`θ_raw ≥ k·(k+1)`, i.e. ω = 0). Prefix
/// filtering is inherently incomplete there — a disjoint qualifying pair
/// shares no token at all — so such rankings are additionally routed into
/// one group that is always joined with the nested-loop kernel. Irrelevant
/// for the paper's thresholds (θ ≤ 0.4) but required for a total API.
pub const DISJOINT_SENTINEL: ItemId = ItemId::MAX;

/// Emits the sentinel entry for every ranking of `ds`.
fn emit_sentinels(
    ds: &Dataset<Arc<OrderedRanking>>,
    singleton: bool,
    relation: Relation,
    label: &str,
) -> Dataset<(ItemId, TokenEntry)> {
    ds.map(label, move |r: &Arc<OrderedRanking>| {
        (
            DISJOINT_SENTINEL,
            TokenEntry {
                rank: 0,
                singleton,
                relation,
                ranking: Arc::clone(r),
            },
        )
    })
}

/// Unions sentinel emissions onto `emitted` when `threshold_raw` admits
/// disjoint pairs for rankings of length `k`.
pub fn with_disjoint_sentinels(
    emitted: Dataset<(ItemId, TokenEntry)>,
    source: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    threshold_raw: u64,
    singleton: bool,
    relation: Relation,
    label: &str,
) -> Dataset<(ItemId, TokenEntry)> {
    if threshold_raw >= topk_rankings::max_raw_distance(k) {
        emitted.union(&emit_sentinels(source, singleton, relation, label))
    } else {
        emitted
    }
}

/// The *Ordering* phase: counts item frequencies with a distributed
/// `reduce_by_key`, broadcasts the resulting order, and canonicalizes every
/// ranking (§4 / §5 "Ordering"). With [`PrefixKind::Ordered`] the frequency
/// pass is skipped and rankings keep their rank order (Lemma 4.1's prefix).
pub fn order_rankings(
    cluster: &Cluster,
    data: &[Ranking],
    prefix_kind: PrefixKind,
    partitions: usize,
    label: &str,
) -> Dataset<Arc<OrderedRanking>> {
    // alloc(driver-side stage construction — one dataset copy, not per record)
    let ds = cluster.parallelize(data.to_vec(), partitions);
    match prefix_kind {
        PrefixKind::Overlap => {
            let counts = ds
                // alloc(stage label String, once per stage)
                .flat_map(&format!("{label}/freq-emit"), |r: &Ranking| {
                    r.items()
                        .iter()
                        .map(|&item| (item, 1u64))
                        // alloc(one count-pair Vec per ranking; the shuffle takes ownership)
                        .collect::<Vec<_>>()
                })
                // alloc(stage label + driver-side count collection, once per ordering phase)
                .reduce_by_key(&format!("{label}/freq-count"), partitions, |a, b| a + b)
                .collect();
            let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
            // alloc(stage label String, once per stage)
            ds.map(&format!("{label}/order-by-frequency"), move |r| {
                Arc::new(OrderedRanking::by_frequency(r, freq.value()))
            })
        }
        // alloc(stage label String, once per stage)
        PrefixKind::Ordered => ds.map(&format!("{label}/order-by-rank"), |r| {
            Arc::new(OrderedRanking::by_rank(r))
        }),
    }
}

/// The *Ordering* phase for a bipartite join: counts item frequencies over
/// the **union** of both relations (one shared canonical order is what makes
/// cross-relation prefix filtering complete), broadcasts it once, and
/// canonicalizes each relation separately.
pub fn order_rankings_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    prefix_kind: PrefixKind,
    partitions: usize,
    label: &str,
) -> (Dataset<Arc<OrderedRanking>>, Dataset<Arc<OrderedRanking>>) {
    // alloc(driver-side stage construction — one dataset copy per relation, not per record)
    let left_ds = cluster.parallelize(left.to_vec(), partitions);
    // alloc(driver-side stage construction — one dataset copy per relation, not per record)
    let right_ds = cluster.parallelize(right.to_vec(), partitions);
    match prefix_kind {
        PrefixKind::Overlap => {
            let counts = left_ds
                .union(&right_ds)
                // alloc(stage label String, once per stage)
                .flat_map(&format!("{label}/freq-emit"), |r: &Ranking| {
                    r.items()
                        .iter()
                        .map(|&item| (item, 1u64))
                        // alloc(one count-pair Vec per ranking; the shuffle takes ownership)
                        .collect::<Vec<_>>()
                })
                // alloc(stage label + driver-side count collection, once per ordering phase)
                .reduce_by_key(&format!("{label}/freq-count"), partitions, |a, b| a + b)
                .collect();
            let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
            let freq_right = freq.clone();
            (
                // alloc(stage label String, once per stage)
                left_ds.map(&format!("{label}/order-left-by-frequency"), move |r| {
                    Arc::new(OrderedRanking::by_frequency(r, freq.value()))
                }),
                // alloc(stage label String, once per stage)
                right_ds.map(&format!("{label}/order-right-by-frequency"), move |r| {
                    Arc::new(OrderedRanking::by_frequency(r, freq_right.value()))
                }),
            )
        }
        PrefixKind::Ordered => (
            // alloc(stage label String, once per stage)
            left_ds.map(&format!("{label}/order-left-by-rank"), |r| {
                Arc::new(OrderedRanking::by_rank(r))
            }),
            // alloc(stage label String, once per stage)
            right_ds.map(&format!("{label}/order-right-by-rank"), |r| {
                Arc::new(OrderedRanking::by_rank(r))
            }),
        ),
    }
}

/// Emits `(token, entry)` pairs for the first `prefix_len` tokens of every
/// ranking — the map side of the prefix-filtering shuffle. `relation` tags
/// every entry with its source relation ([`Relation::Left`] in self-joins).
pub fn emit_prefixes(
    ds: &Dataset<Arc<OrderedRanking>>,
    prefix_len: usize,
    singleton: bool,
    relation: Relation,
    label: &str,
) -> Dataset<(ItemId, TokenEntry)> {
    ds.flat_map(label, move |r: &Arc<OrderedRanking>| {
        r.prefix(prefix_len)
            .iter()
            .map(|&(item, rank)| {
                (
                    item,
                    TokenEntry {
                        rank,
                        singleton,
                        relation,
                        ranking: Arc::clone(r),
                    },
                )
            })
            // alloc(one prefix-token Vec per ranking; the shuffle takes ownership)
            .collect::<Vec<_>>()
    })
}

/// Live per-driver kernel counters on the cluster's telemetry registry —
/// no-op handles (one branch per record) when telemetry is off.
struct LiveKernelCounters {
    /// Kernel invocations: group self-joins plus sub-partition R-S joins.
    groups: Counter,
    /// Qualifying pairs emitted by kernels, before pair deduplication.
    pairs: Counter,
}

/// Applies the chosen kernel to one token group.
// The kernel's full context — entries, style, thresholds, mode and both
// counter sinks — is exactly this wide; bundling it into a one-use struct
// would only move the argument list.
#[allow(clippy::too_many_arguments)]
fn run_kernel(
    entries: &[TokenEntry],
    style: GroupJoinStyle,
    prefix_len_of: &(impl Fn(bool) -> usize + Sync),
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    mode: JoinMode,
    stats: &JoinStats,
    live: &LiveKernelCounters,
) -> Vec<PairHit> {
    live.groups.inc();
    let triples = match style {
        GroupJoinStyle::Indexed => with_group_scratch(|scratch| {
            join_group_indexed(
                entries,
                prefix_len_of,
                thresholds,
                use_position_filter,
                mode,
                stats,
                scratch,
            )
        }),
        GroupJoinStyle::NestedLoop => {
            join_group_nested_loop(entries, thresholds, use_position_filter, mode, stats)
        }
    };
    live.pairs.add_usize(triples.len());
    triples
        .into_iter()
        .map(|(i, j, d)| {
            // panics(kernel triples index into `entries` — both i and j are < entries.len())
            let (ea, eb) = (&entries[i], &entries[j]);
            debug_assert!(ea.record_key() < eb.record_key());
            PairHit {
                a: Arc::clone(&ea.ranking),
                b: Arc::clone(&eb.ranking),
                distance: d,
                a_singleton: ea.singleton,
                b_singleton: eb.singleton,
                a_relation: ea.relation,
                b_relation: eb.relation,
            }
        })
        // alloc(one hit buffer per token group, not per candidate pair)
        .collect()
}

/// Sentinel groups contain rankings that need not share any token, so the
/// index-probing kernel (which only pairs prefix collisions) would miss
/// pairs there — force the nested loop.
#[inline]
fn style_for(token: ItemId, requested: GroupJoinStyle) -> GroupJoinStyle {
    if token == DISJOINT_SENTINEL {
        GroupJoinStyle::NestedLoop
    } else {
        requested
    }
}

fn rs_hits(
    left: &[TokenEntry],
    right: &[TokenEntry],
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    mode: JoinMode,
    stats: &JoinStats,
    live: &LiveKernelCounters,
) -> Vec<PairHit> {
    live.groups.inc();
    let triples = join_group_rs(left, right, thresholds, use_position_filter, mode, stats);
    live.pairs.add_usize(triples.len());
    triples
        .into_iter()
        .map(|(i, j, d)| {
            // panics(join_group_rs triples satisfy i < left.len() and j < right.len())
            let (li, rj) = (&left[i], &right[j]);
            // Normalize by (relation, id), not id alone: in a bipartite join
            // the chunks hold mixed relations with possibly overlapping id
            // spaces, and id ordering could flip which relation lands in
            // slot `a`.
            let (x, y) = if li.record_key() < rj.record_key() {
                (li, rj)
            } else {
                (rj, li)
            };
            PairHit {
                a: Arc::clone(&x.ranking),
                b: Arc::clone(&y.ranking),
                distance: d,
                a_singleton: x.singleton,
                b_singleton: y.singleton,
                a_relation: x.relation,
                b_relation: y.relation,
            }
        })
        // alloc(one hit buffer per sub-partition pair, not per candidate)
        .collect()
}

/// The reduce side of every prefix join: group emitted `(token, entry)`
/// pairs by token, join inside each group, and deduplicate pairs that
/// collided on several tokens.
///
/// With `delta = Some(δ)` (CL-P, Algorithm 3) groups longer than δ are split
/// into sub-partitions of at most δ entries: each sub-partition is
/// self-joined after being re-distributed with a composite partitioner, and
/// every sub-partition pair is R-S-joined — spreading one hot token's work
/// over the whole cluster. The splitting itself lives in
/// [`minispark::skew::split_grouped_join`]; with `delta = None` the `skew`
/// policy may still opt the join into splitting (sampling the emitted token
/// stream first under `SkewBudget::Auto`).
#[allow(clippy::too_many_arguments)]
pub fn token_grouped_join(
    emitted: &Dataset<(ItemId, TokenEntry)>,
    style: GroupJoinStyle,
    prefix_len_of: impl Fn(bool) -> usize + Sync + Send + Clone + 'static,
    thresholds: GroupThresholds,
    use_position_filter: bool,
    mode: JoinMode,
    partitions: usize,
    delta: Option<usize>,
    skew: SkewBudget,
    stats: &Arc<JoinStats>,
    label: &str,
) -> Dataset<PairHit> {
    // An explicit δ (CL-P's always-on partitioning threshold) wins;
    // otherwise the opt-in skew policy decides from the pre-shuffle token
    // stream.
    let delta = match delta {
        Some(d) => Some(d.max(1)),
        None => skew.resolve(emitted, label),
    };

    // Live per-driver kernel series: the driver name is the label prefix
    // before the first '/' ("cl-p/centroid-join" → driver="cl-p"). All
    // handles are no-ops when the cluster's telemetry is off.
    let telemetry = emitted.cluster().telemetry();
    let driver = label.split('/').next().unwrap_or(label);
    let live = Arc::new(LiveKernelCounters {
        groups: telemetry.counter_with("simjoin_kernel_groups_total", &[("driver", driver)]),
        pairs: telemetry.counter_with("simjoin_result_pairs_total", &[("driver", driver)]),
    });
    let live_candidates =
        telemetry.counter_with("simjoin_kernel_candidates_total", &[("driver", driver)]);
    let live_verified =
        telemetry.counter_with("simjoin_kernel_verified_total", &[("driver", driver)]);
    let live_pruned = telemetry.counter_with("simjoin_kernel_pruned_total", &[("driver", driver)]);
    let before = stats.snapshot();

    // Spark can spill shuffle groups to disk when executor memory runs low
    // (the property §4.1 argues iterator-style processing preserves); the
    // engine reproduces that when the cluster config sets a spill budget.
    let grouped = if emitted.cluster().config().spill_record_budget != usize::MAX {
        // alloc(stage label String, once per join stage)
        emitted.group_by_key_spilling(&format!("{label}/group-by-token"), partitions)
    } else {
        // alloc(stage label String, once per join stage)
        emitted.group_by_key(&format!("{label}/group-by-token"), partitions)
    };

    let hits = match delta {
        None => {
            let stats = Arc::clone(stats);
            let prefix_len_of = prefix_len_of.clone();
            let live = Arc::clone(&live);
            // alloc(stage label String, once per join stage)
            grouped.flat_map(&format!("{label}/join-groups"), move |(token, entries)| {
                run_kernel(
                    entries,
                    style_for(*token, style),
                    &prefix_len_of,
                    &thresholds,
                    use_position_filter,
                    mode,
                    &stats,
                    &live,
                )
            })
        }
        Some(delta) => {
            let (hits, split) = minispark::skew::split_grouped_join(
                &grouped,
                delta,
                partitions,
                label,
                |token, chunk: &[TokenEntry]| {
                    crate::invariants::check_subpartition(chunk.len(), delta);
                    run_kernel(
                        chunk,
                        style_for(token, style),
                        &prefix_len_of,
                        &thresholds,
                        use_position_filter,
                        mode,
                        stats,
                        &live,
                    )
                },
                |_token, left: &[TokenEntry], right: &[TokenEntry]| {
                    rs_hits(
                        left,
                        right,
                        &thresholds,
                        use_position_filter,
                        mode,
                        stats,
                        &live,
                    )
                },
            );
            JoinStats::add(&stats.posting_lists_split, split.groups_split);
            JoinStats::add(&stats.rs_joins, split.rs_joins);
            JoinStats::add(&stats.skew_chunks, split.chunks);
            JoinStats::add(&stats.skew_steals, split.stolen_tasks);
            hits
        }
    };

    // Stages are eager, so the join's filter-cascade counts are fully in
    // `stats` here; publish the deltas on the live per-driver series.
    let after = stats.snapshot();
    live_candidates.add(after.candidates.saturating_sub(before.candidates));
    live_verified.add(after.verified.saturating_sub(before.verified));
    live_pruned.add(after.position_pruned.saturating_sub(before.position_pruned));

    // Deduplicate pairs found via several shared tokens (or several chunk
    // joins) — keep one PairHit per `(relation, id)` record-key pair; the
    // relations are part of the key because an R-S join's id spaces may
    // overlap. The keep-first combiner is value-deterministic even though
    // the kept *instance* depends on hash-map iteration order: every
    // duplicate under one key pair carries the same exact distance and the
    // same per-record tags, so any survivor is content-equal (pinned by the
    // determinism suite).
    // alloc(stage label Strings, once per join stage)
    hits.map(&format!("{label}/key-pairs"), |hit: &PairHit| {
        let keys = hit.record_keys();
        crate::invariants::check_tagged_pair_normalized(keys.0, keys.1);
        (keys, hit.clone())
    })
    // alloc(stage label Strings, once per join stage)
    .reduce_by_key(&format!("{label}/dedup-pairs"), partitions, |a, _b| a)
    .values(&format!("{label}/drop-keys"))
}

/// A complete prefix-filtered self-join at `theta_raw` over a canonicalized
/// dataset — the building block used directly by VJ/VJ-NL and twice by
/// CL/CL-P (clustering with θc, centroid join with Algorithm 1's
/// thresholds).
#[allow(clippy::too_many_arguments)]
pub fn prefix_self_join(
    ordered: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    theta_raw: u64,
    prefix_kind: PrefixKind,
    style: GroupJoinStyle,
    use_position_filter: bool,
    partitions: usize,
    delta: Option<usize>,
    skew: SkewBudget,
    stats: &Arc<JoinStats>,
    label: &str,
) -> Dataset<PairHit> {
    let p = prefix_kind.prefix_len(k, theta_raw);
    let emitted = emit_prefixes(
        ordered,
        p,
        false,
        Relation::Left,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-prefixes"),
    );
    let emitted = with_disjoint_sentinels(
        emitted,
        ordered,
        k,
        theta_raw,
        false,
        Relation::Left,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-sentinels"),
    );
    token_grouped_join(
        &emitted,
        style,
        move |_| p,
        GroupThresholds::Uniform(theta_raw),
        use_position_filter,
        JoinMode::SelfJoin,
        partitions,
        delta,
        skew,
        stats,
        label,
    )
}

/// A complete prefix-filtered **bipartite** join at `theta_raw` over two
/// canonicalized relations: both sides emit relation-tagged prefixes into one
/// shuffle, every token group is joined in [`JoinMode::Bipartite`] (only
/// cross-relation pairs are candidates), and hot groups reuse the skew
/// subsystem's chunk-pair plans unchanged. Emitted hits always lead with the
/// left-relation record.
///
/// Both relations must be canonicalized under **one** item-frequency order —
/// use [`order_rankings_rs`] — or prefix filtering would lose completeness.
#[allow(clippy::too_many_arguments)]
pub fn prefix_rs_join(
    left: &Dataset<Arc<OrderedRanking>>,
    right: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    theta_raw: u64,
    prefix_kind: PrefixKind,
    style: GroupJoinStyle,
    use_position_filter: bool,
    partitions: usize,
    delta: Option<usize>,
    skew: SkewBudget,
    stats: &Arc<JoinStats>,
    label: &str,
) -> Dataset<PairHit> {
    let p = prefix_kind.prefix_len(k, theta_raw);
    let emitted_left = emit_prefixes(
        left,
        p,
        false,
        Relation::Left,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-left-prefixes"),
    );
    let emitted_right = emit_prefixes(
        right,
        p,
        false,
        Relation::Right,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-right-prefixes"),
    );
    let emitted = emitted_left.union(&emitted_right);
    let emitted = with_disjoint_sentinels(
        emitted,
        left,
        k,
        theta_raw,
        false,
        Relation::Left,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-left-sentinels"),
    );
    let emitted = with_disjoint_sentinels(
        emitted,
        right,
        k,
        theta_raw,
        false,
        Relation::Right,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-right-sentinels"),
    );
    token_grouped_join(
        &emitted,
        style,
        move |_| p,
        GroupThresholds::Uniform(theta_raw),
        use_position_filter,
        JoinMode::Bipartite,
        partitions,
        delta,
        skew,
        stats,
        label,
    )
}

/// Validates that all rankings share one length `k` and have unique ids;
/// returns the length (`None` for an empty dataset).
pub fn uniform_k(data: &[Ranking]) -> Result<Option<usize>, crate::JoinError> {
    let mut k = None;
    // alloc(one-time input validation per join call, sized up front)
    let mut ids = std::collections::HashSet::with_capacity(data.len());
    for r in data {
        match k {
            None => k = Some(r.k()),
            Some(expected) if expected != r.k() => {
                return Err(crate::JoinError::MixedRankingLengths {
                    expected,
                    found: r.k(),
                })
            }
            _ => {}
        }
        if !ids.insert(r.id()) {
            return Err(crate::JoinError::DuplicateRankingId(r.id()));
        }
    }
    Ok(k)
}

/// Validates both relations of an R-S join: uniform length and unique ids
/// **within** each relation (the id spaces may overlap across relations),
/// and one shared length `k` across the two. Returns that length, or `None`
/// when either relation is empty — a bipartite join with an empty side has
/// no results, so callers short-circuit to an empty outcome.
pub fn rs_uniform_k(
    left: &[Ranking],
    right: &[Ranking],
) -> Result<Option<usize>, crate::JoinError> {
    let left_k = uniform_k(left)?;
    let right_k = uniform_k(right)?;
    match (left_k, right_k) {
        (Some(lk), Some(rk)) if lk != rk => Err(crate::JoinError::MixedRankingLengths {
            expected: lk,
            found: rk,
        }),
        (Some(lk), Some(_)) => Ok(Some(lk)),
        _ => Ok(None),
    }
}
