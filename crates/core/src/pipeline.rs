//! Shared pipeline stages: the *Ordering* phase, prefix emission, and the
//! token-grouped join that underlies VJ, VJ-NL, the clustering phase, the
//! centroid join and CL-P's repartitioned variants.
//!
//! The dataflow mirrors §4 of the paper:
//!
//! ```text
//! rankings ─ count item frequencies ─ broadcast order ─ canonicalize
//!          ─ emit (prefix-token, ranking) pairs ─ group by token
//!          ─ per-group join kernel ─ deduplicate
//! ```
//!
//! With a partitioning threshold δ ([`token_grouped_join`]'s `delta`), groups
//! larger than δ are split into sub-partitions that are re-distributed with a
//! composite `(token, sub-key)` partitioner and joined pairwise with an R-S
//! kernel — Algorithm 3 / §6.

use std::sync::Arc;

use minispark::{Cluster, Counter, Dataset, SkewBudget};
use topk_rankings::{FrequencyTable, ItemId, OrderedRanking, PrefixKind, Ranking, ResultPair};

use crate::kernels::{
    join_group_indexed, join_group_nested_loop, join_group_rs, with_group_scratch, GroupThresholds,
    TokenEntry,
};
use crate::stats::JoinStats;

/// Which per-group kernel a pipeline uses (§4 vs. §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupJoinStyle {
    /// VJ: group-local inverted index over member prefixes.
    Indexed,
    /// VJ-NL: streaming nested loop over the group.
    NestedLoop,
}

/// A qualifying pair with everything downstream phases need: both rankings
/// (shared `Arc`s), the exact distance and the centroid-type tags.
/// `a.id() < b.id()` always holds.
#[derive(Debug, Clone)]
pub struct PairHit {
    /// The ranking with the smaller id.
    pub a: Arc<OrderedRanking>,
    /// The ranking with the larger id.
    pub b: Arc<OrderedRanking>,
    /// Raw Footrule distance.
    pub distance: u64,
    /// Singleton tag of `a` (centroid joins only; `false` in self-joins).
    pub a_singleton: bool,
    /// Singleton tag of `b`.
    pub b_singleton: bool,
}

impl PairHit {
    /// The id pair `(a, b)` with `a < b`.
    pub fn ids(&self) -> (u64, u64) {
        (self.a.id(), self.b.id())
    }

    /// Conversion to the id-level result representation.
    pub fn to_result_pair(&self) -> ResultPair {
        ResultPair::new(self.a.id(), self.b.id(), self.distance)
    }
}

/// Sentinel "token" under which rankings meet when the applicable threshold
/// admits **disjoint** pairs (`θ_raw ≥ k·(k+1)`, i.e. ω = 0). Prefix
/// filtering is inherently incomplete there — a disjoint qualifying pair
/// shares no token at all — so such rankings are additionally routed into
/// one group that is always joined with the nested-loop kernel. Irrelevant
/// for the paper's thresholds (θ ≤ 0.4) but required for a total API.
pub const DISJOINT_SENTINEL: ItemId = ItemId::MAX;

/// Emits the sentinel entry for every ranking of `ds`.
fn emit_sentinels(
    ds: &Dataset<Arc<OrderedRanking>>,
    singleton: bool,
    label: &str,
) -> Dataset<(ItemId, TokenEntry)> {
    ds.map(label, move |r: &Arc<OrderedRanking>| {
        (
            DISJOINT_SENTINEL,
            TokenEntry {
                rank: 0,
                singleton,
                ranking: Arc::clone(r),
            },
        )
    })
}

/// Unions sentinel emissions onto `emitted` when `threshold_raw` admits
/// disjoint pairs for rankings of length `k`.
pub fn with_disjoint_sentinels(
    emitted: Dataset<(ItemId, TokenEntry)>,
    source: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    threshold_raw: u64,
    singleton: bool,
    label: &str,
) -> Dataset<(ItemId, TokenEntry)> {
    if threshold_raw >= topk_rankings::max_raw_distance(k) {
        emitted.union(&emit_sentinels(source, singleton, label))
    } else {
        emitted
    }
}

/// The *Ordering* phase: counts item frequencies with a distributed
/// `reduce_by_key`, broadcasts the resulting order, and canonicalizes every
/// ranking (§4 / §5 "Ordering"). With [`PrefixKind::Ordered`] the frequency
/// pass is skipped and rankings keep their rank order (Lemma 4.1's prefix).
pub fn order_rankings(
    cluster: &Cluster,
    data: &[Ranking],
    prefix_kind: PrefixKind,
    partitions: usize,
    label: &str,
) -> Dataset<Arc<OrderedRanking>> {
    // alloc(driver-side stage construction — one dataset copy, not per record)
    let ds = cluster.parallelize(data.to_vec(), partitions);
    match prefix_kind {
        PrefixKind::Overlap => {
            let counts = ds
                // alloc(stage label String, once per stage)
                .flat_map(&format!("{label}/freq-emit"), |r: &Ranking| {
                    r.items()
                        .iter()
                        .map(|&item| (item, 1u64))
                        // alloc(one count-pair Vec per ranking; the shuffle takes ownership)
                        .collect::<Vec<_>>()
                })
                // alloc(stage label + driver-side count collection, once per ordering phase)
                .reduce_by_key(&format!("{label}/freq-count"), partitions, |a, b| a + b)
                .collect();
            let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
            // alloc(stage label String, once per stage)
            ds.map(&format!("{label}/order-by-frequency"), move |r| {
                Arc::new(OrderedRanking::by_frequency(r, freq.value()))
            })
        }
        // alloc(stage label String, once per stage)
        PrefixKind::Ordered => ds.map(&format!("{label}/order-by-rank"), |r| {
            Arc::new(OrderedRanking::by_rank(r))
        }),
    }
}

/// Emits `(token, entry)` pairs for the first `prefix_len` tokens of every
/// ranking — the map side of the prefix-filtering shuffle.
pub fn emit_prefixes(
    ds: &Dataset<Arc<OrderedRanking>>,
    prefix_len: usize,
    singleton: bool,
    label: &str,
) -> Dataset<(ItemId, TokenEntry)> {
    ds.flat_map(label, move |r: &Arc<OrderedRanking>| {
        r.prefix(prefix_len)
            .iter()
            .map(|&(item, rank)| {
                (
                    item,
                    TokenEntry {
                        rank,
                        singleton,
                        ranking: Arc::clone(r),
                    },
                )
            })
            // alloc(one prefix-token Vec per ranking; the shuffle takes ownership)
            .collect::<Vec<_>>()
    })
}

/// Live per-driver kernel counters on the cluster's telemetry registry —
/// no-op handles (one branch per record) when telemetry is off.
struct LiveKernelCounters {
    /// Kernel invocations: group self-joins plus sub-partition R-S joins.
    groups: Counter,
    /// Qualifying pairs emitted by kernels, before pair deduplication.
    pairs: Counter,
}

/// Applies the chosen kernel to one token group.
fn run_kernel(
    entries: &[TokenEntry],
    style: GroupJoinStyle,
    prefix_len_of: &(impl Fn(bool) -> usize + Sync),
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    stats: &JoinStats,
    live: &LiveKernelCounters,
) -> Vec<PairHit> {
    live.groups.inc();
    let triples = match style {
        GroupJoinStyle::Indexed => with_group_scratch(|scratch| {
            join_group_indexed(
                entries,
                prefix_len_of,
                thresholds,
                use_position_filter,
                stats,
                scratch,
            )
        }),
        GroupJoinStyle::NestedLoop => {
            join_group_nested_loop(entries, thresholds, use_position_filter, stats)
        }
    };
    live.pairs.add_usize(triples.len());
    triples
        .into_iter()
        .map(|(i, j, d)| {
            // panics(kernel triples index into `entries` — both i and j are < entries.len())
            let (ea, eb) = (&entries[i], &entries[j]);
            debug_assert!(ea.ranking.id() < eb.ranking.id());
            PairHit {
                a: Arc::clone(&ea.ranking),
                b: Arc::clone(&eb.ranking),
                distance: d,
                a_singleton: ea.singleton,
                b_singleton: eb.singleton,
            }
        })
        // alloc(one hit buffer per token group, not per candidate pair)
        .collect()
}

/// Sentinel groups contain rankings that need not share any token, so the
/// index-probing kernel (which only pairs prefix collisions) would miss
/// pairs there — force the nested loop.
#[inline]
fn style_for(token: ItemId, requested: GroupJoinStyle) -> GroupJoinStyle {
    if token == DISJOINT_SENTINEL {
        GroupJoinStyle::NestedLoop
    } else {
        requested
    }
}

fn rs_hits(
    left: &[TokenEntry],
    right: &[TokenEntry],
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    stats: &JoinStats,
    live: &LiveKernelCounters,
) -> Vec<PairHit> {
    live.groups.inc();
    let triples = join_group_rs(left, right, thresholds, use_position_filter, stats);
    live.pairs.add_usize(triples.len());
    triples
        .into_iter()
        .map(|(i, j, d)| {
            // panics(join_group_rs triples satisfy i < left.len() and j < right.len())
            let (li, rj) = (&left[i], &right[j]);
            let (x, y) = if li.ranking.id() < rj.ranking.id() {
                (li, rj)
            } else {
                (rj, li)
            };
            PairHit {
                a: Arc::clone(&x.ranking),
                b: Arc::clone(&y.ranking),
                distance: d,
                a_singleton: x.singleton,
                b_singleton: y.singleton,
            }
        })
        // alloc(one hit buffer per sub-partition pair, not per candidate)
        .collect()
}

/// The reduce side of every prefix join: group emitted `(token, entry)`
/// pairs by token, join inside each group, and deduplicate pairs that
/// collided on several tokens.
///
/// With `delta = Some(δ)` (CL-P, Algorithm 3) groups longer than δ are split
/// into sub-partitions of at most δ entries: each sub-partition is
/// self-joined after being re-distributed with a composite partitioner, and
/// every sub-partition pair is R-S-joined — spreading one hot token's work
/// over the whole cluster. The splitting itself lives in
/// [`minispark::skew::split_grouped_join`]; with `delta = None` the `skew`
/// policy may still opt the join into splitting (sampling the emitted token
/// stream first under `SkewBudget::Auto`).
#[allow(clippy::too_many_arguments)]
pub fn token_grouped_join(
    emitted: &Dataset<(ItemId, TokenEntry)>,
    style: GroupJoinStyle,
    prefix_len_of: impl Fn(bool) -> usize + Sync + Send + Clone + 'static,
    thresholds: GroupThresholds,
    use_position_filter: bool,
    partitions: usize,
    delta: Option<usize>,
    skew: SkewBudget,
    stats: &Arc<JoinStats>,
    label: &str,
) -> Dataset<PairHit> {
    // An explicit δ (CL-P's always-on partitioning threshold) wins;
    // otherwise the opt-in skew policy decides from the pre-shuffle token
    // stream.
    let delta = match delta {
        Some(d) => Some(d.max(1)),
        None => skew.resolve(emitted, label),
    };

    // Live per-driver kernel series: the driver name is the label prefix
    // before the first '/' ("cl-p/centroid-join" → driver="cl-p"). All
    // handles are no-ops when the cluster's telemetry is off.
    let telemetry = emitted.cluster().telemetry();
    let driver = label.split('/').next().unwrap_or(label);
    let live = Arc::new(LiveKernelCounters {
        groups: telemetry.counter_with("simjoin_kernel_groups_total", &[("driver", driver)]),
        pairs: telemetry.counter_with("simjoin_result_pairs_total", &[("driver", driver)]),
    });
    let live_candidates =
        telemetry.counter_with("simjoin_kernel_candidates_total", &[("driver", driver)]);
    let live_verified =
        telemetry.counter_with("simjoin_kernel_verified_total", &[("driver", driver)]);
    let live_pruned = telemetry.counter_with("simjoin_kernel_pruned_total", &[("driver", driver)]);
    let before = stats.snapshot();

    // Spark can spill shuffle groups to disk when executor memory runs low
    // (the property §4.1 argues iterator-style processing preserves); the
    // engine reproduces that when the cluster config sets a spill budget.
    let grouped = if emitted.cluster().config().spill_record_budget != usize::MAX {
        // alloc(stage label String, once per join stage)
        emitted.group_by_key_spilling(&format!("{label}/group-by-token"), partitions)
    } else {
        // alloc(stage label String, once per join stage)
        emitted.group_by_key(&format!("{label}/group-by-token"), partitions)
    };

    let hits = match delta {
        None => {
            let stats = Arc::clone(stats);
            let prefix_len_of = prefix_len_of.clone();
            let live = Arc::clone(&live);
            // alloc(stage label String, once per join stage)
            grouped.flat_map(&format!("{label}/join-groups"), move |(token, entries)| {
                run_kernel(
                    entries,
                    style_for(*token, style),
                    &prefix_len_of,
                    &thresholds,
                    use_position_filter,
                    &stats,
                    &live,
                )
            })
        }
        Some(delta) => {
            let (hits, split) = minispark::skew::split_grouped_join(
                &grouped,
                delta,
                partitions,
                label,
                |token, chunk: &[TokenEntry]| {
                    crate::invariants::check_subpartition(chunk.len(), delta);
                    run_kernel(
                        chunk,
                        style_for(token, style),
                        &prefix_len_of,
                        &thresholds,
                        use_position_filter,
                        stats,
                        &live,
                    )
                },
                |_token, left: &[TokenEntry], right: &[TokenEntry]| {
                    rs_hits(left, right, &thresholds, use_position_filter, stats, &live)
                },
            );
            JoinStats::add(&stats.posting_lists_split, split.groups_split);
            JoinStats::add(&stats.rs_joins, split.rs_joins);
            JoinStats::add(&stats.skew_chunks, split.chunks);
            JoinStats::add(&stats.skew_steals, split.stolen_tasks);
            hits
        }
    };

    // Stages are eager, so the join's filter-cascade counts are fully in
    // `stats` here; publish the deltas on the live per-driver series.
    let after = stats.snapshot();
    live_candidates.add(after.candidates.saturating_sub(before.candidates));
    live_verified.add(after.verified.saturating_sub(before.verified));
    live_pruned.add(after.position_pruned.saturating_sub(before.position_pruned));

    // Deduplicate pairs found via several shared tokens (or several chunk
    // joins) — keep one PairHit per id pair. The keep-first combiner is
    // value-deterministic even though the kept *instance* depends on hash-map
    // iteration order: every duplicate under one id pair carries the same
    // exact distance and the same per-ranking singleton tags, so any survivor
    // is content-equal (pinned by the determinism suite).
    // alloc(stage label Strings, once per join stage)
    hits.map(&format!("{label}/key-pairs"), |hit: &PairHit| {
        let ids = hit.ids();
        crate::invariants::check_pair_normalized(ids.0, ids.1);
        (ids, hit.clone())
    })
    // alloc(stage label Strings, once per join stage)
    .reduce_by_key(&format!("{label}/dedup-pairs"), partitions, |a, _b| a)
    .values(&format!("{label}/drop-keys"))
}

/// A complete prefix-filtered self-join at `theta_raw` over a canonicalized
/// dataset — the building block used directly by VJ/VJ-NL and twice by
/// CL/CL-P (clustering with θc, centroid join with Algorithm 1's
/// thresholds).
#[allow(clippy::too_many_arguments)]
pub fn prefix_self_join(
    ordered: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    theta_raw: u64,
    prefix_kind: PrefixKind,
    style: GroupJoinStyle,
    use_position_filter: bool,
    partitions: usize,
    delta: Option<usize>,
    skew: SkewBudget,
    stats: &Arc<JoinStats>,
    label: &str,
) -> Dataset<PairHit> {
    let p = prefix_kind.prefix_len(k, theta_raw);
    // alloc(stage label String, once per join stage)
    let emitted = emit_prefixes(ordered, p, false, &format!("{label}/emit-prefixes"));
    let emitted = with_disjoint_sentinels(
        emitted,
        ordered,
        k,
        theta_raw,
        false,
        // alloc(stage label String, once per join stage)
        &format!("{label}/emit-sentinels"),
    );
    token_grouped_join(
        &emitted,
        style,
        move |_| p,
        GroupThresholds::Uniform(theta_raw),
        use_position_filter,
        partitions,
        delta,
        skew,
        stats,
        label,
    )
}

/// Validates that all rankings share one length `k` and have unique ids;
/// returns the length (`None` for an empty dataset).
pub fn uniform_k(data: &[Ranking]) -> Result<Option<usize>, crate::JoinError> {
    let mut k = None;
    // alloc(one-time input validation per join call, sized up front)
    let mut ids = std::collections::HashSet::with_capacity(data.len());
    for r in data {
        match k {
            None => k = Some(r.k()),
            Some(expected) if expected != r.k() => {
                return Err(crate::JoinError::MixedRankingLengths {
                    expected,
                    found: r.k(),
                })
            }
            _ => {}
        }
        if !ids.insert(r.id()) {
            return Err(crate::JoinError::DuplicateRankingId(r.id()));
        }
    }
    Ok(k)
}
