//! The CL and CL-P drivers: Ordering → Clustering → Joining → Expansion
//! (Figure 2 of the paper), with CL-P adding Algorithm 3's repartitioning of
//! oversized posting lists in the joining phase.

use std::sync::Arc;
use std::time::Instant;

use minispark::Cluster;
use topk_rankings::distance::raw_threshold;
use topk_rankings::Ranking;

use crate::centroid_join::centroid_join;
use crate::clustering::clustering_phase;
use crate::expansion::expansion;
use crate::pipeline::{order_rankings, rs_uniform_k, uniform_k};
use crate::stats::JoinStats;
use crate::{JoinConfig, JoinError, JoinOutcome};

fn cl_flavour(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
    delta: Option<usize>,
    label: &str,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    let Some(k) = uniform_k(data)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta_raw = raw_threshold(k, config.theta);
    let theta_c_raw = raw_threshold(k, config.cluster_threshold);
    let partitions = config.effective_partitions(cluster.config().default_partitions);
    let stats = Arc::new(JoinStats::default());

    // Phase spans put Figure 2's Ordering → Clustering → Joining →
    // Expansion pipeline on the trace timeline (no-ops unless the cluster
    // records a trace).
    let run_span = cluster.trace().span(format!("{label}/run"));

    // Phase 1 — Ordering (done once; both sub-joins reuse it, §5).
    let ordered = {
        let _phase = cluster.trace().span(format!("{label}/phase/ordering"));
        order_rankings(cluster, data, config.prefix, partitions, label)
    };

    // Phase 2 — Clustering at θc.
    let clustering = {
        let _phase = cluster.trace().span(format!("{label}/phase/clustering"));
        clustering_phase(
            cluster,
            &ordered,
            k,
            theta_raw,
            theta_c_raw,
            config,
            partitions,
            &stats,
        )
    };

    // Phase 3 — Joining the centroids at θ + 2θc (Lemma 5.1 / 5.3), with
    // repartitioning for CL-P.
    let cjoin = {
        let _phase = cluster.trace().span(format!("{label}/phase/joining"));
        centroid_join(
            &clustering.centroids_m,
            &clustering.singletons,
            k,
            config,
            partitions,
            delta,
            &stats,
        )
    };

    // Phase 4 — Expansion back to ranking-level pairs.
    let expanded = {
        let _phase = cluster.trace().span(format!("{label}/phase/expansion"));
        expansion(
            &cjoin,
            &clustering.clusters,
            theta_raw,
            config.use_triangle_bounds,
            partitions,
            &stats,
        )
    };

    let mut pairs = {
        let _phase = cluster.trace().span(format!("{label}/phase/dedup"));
        expanded
            .union(&clustering.within_cluster_pairs)
            .distinct(&format!("{label}/final-distinct"), partitions)
            .collect()
    };
    pairs.sort_unstable();
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// CL: the clustering-based similarity join (§5).
pub fn cl_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    cl_flavour(cluster, data, config, None, "cl")
}

/// CL over two relations (R-S join).
///
/// CL's clustering is inherently a self-structure — a cluster may mix
/// records of both relations, and that is exactly what makes it effective —
/// so the R-S variant runs the full CL pipeline over the **disjoint union**
/// of the two relations (records re-keyed into one id space, left block
/// first) and keeps only the cross-relation pairs of the result. Output
/// pairs are `(left id, right id)`, sorted; stats, trace spans and the live
/// telemetry series thread through under the `cl-rs` label.
pub fn cl_join_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    if rs_uniform_k(left, right)?.is_none() {
        return Ok(JoinOutcome::empty(start.elapsed()));
    }
    // Re-key into one disjoint internal id space: left records take ids
    // 0..|R| (their position), right records |R|..|R|+|S|. The internal
    // pair order (a < b) then guarantees a cross pair leads with the left
    // record, and mapping back to original ids is a slice lookup.
    // alloc(one driver-side union copy of both inputs, once per join call)
    let mut union = Vec::with_capacity(left.len() + right.len());
    let mut next: u64 = 0;
    for r in left {
        union.push(Ranking::new_unchecked(next, r.items().to_vec()));
        next += 1;
    }
    let boundary = next;
    for r in right {
        union.push(Ranking::new_unchecked(next, r.items().to_vec()));
        next += 1;
    }
    let inner = cl_flavour(cluster, &union, config, None, "cl-rs")?;
    let mut pairs = Vec::new();
    for &(a, b) in &inner.pairs {
        // Internal pairs satisfy a < b, so a cross-relation pair always has
        // a in the left block and b in the right block.
        if a < boundary && b >= boundary {
            let left_idx = usize::try_from(a).expect("internal id a < |R| fits usize");
            let right_idx =
                usize::try_from(b - boundary).expect("internal id b − |R| < |S| fits usize");
            // panics(left_idx < |R| and right_idx < |S| by construction of the internal id space)
            pairs.push((left[left_idx].id(), right[right_idx].id()));
        }
    }
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: inner.stats,
        elapsed: start.elapsed(),
    })
}

/// CL-P: CL with repartitioning of posting lists longer than
/// `config.partition_threshold` in the joining phase (§6).
pub fn clp_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    cl_flavour(
        cluster,
        data,
        config,
        Some(config.partition_threshold),
        "cl-p",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_join;
    use minispark::ClusterConfig;
    use topk_datagen::CorpusProfile;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4))
    }

    fn corpus() -> Vec<Ranking> {
        // Enough near-duplicates for real clusters to form.
        CorpusProfile::orku_like(300, 10).generate()
    }

    #[test]
    fn cl_matches_brute_force() {
        let c = cluster();
        let data = corpus();
        for theta in [0.1, 0.2, 0.3] {
            let expected = brute_force_join(&c, &data, theta).unwrap().pairs;
            let got = cl_join(&c, &data, &JoinConfig::new(theta)).unwrap().pairs;
            assert_eq!(got, expected, "θ = {theta}");
        }
    }

    #[test]
    fn clp_matches_brute_force() {
        let c = cluster();
        let data = corpus();
        let expected = brute_force_join(&c, &data, 0.3).unwrap().pairs;
        let cfg = JoinConfig::new(0.3).with_partition_threshold(10);
        let got = clp_join(&c, &data, &cfg).unwrap().pairs;
        assert_eq!(got, expected);
    }

    #[test]
    fn cl_is_invariant_to_theta_c() {
        let c = cluster();
        let data = corpus();
        let expected = brute_force_join(&c, &data, 0.2).unwrap().pairs;
        for theta_c in [0.0, 0.01, 0.03, 0.05, 0.1, 0.2] {
            let cfg = JoinConfig::new(0.2).with_cluster_threshold(theta_c);
            let got = cl_join(&c, &data, &cfg).unwrap().pairs;
            assert_eq!(got, expected, "θc = {theta_c}");
        }
    }

    #[test]
    fn clustering_actually_forms_clusters() {
        let c = cluster();
        let data = corpus();
        let outcome = cl_join(&c, &data, &JoinConfig::new(0.2)).unwrap();
        assert!(outcome.stats.clusters > 0, "no clusters: {}", outcome.stats);
        assert!(outcome.stats.singletons > 0);
        assert!(
            outcome.stats.triangle_accepted + outcome.stats.triangle_pruned > 0,
            "triangle bounds never fired: {}",
            outcome.stats
        );
    }

    #[test]
    fn empty_dataset() {
        let c = cluster();
        assert!(cl_join(&c, &[], &JoinConfig::new(0.3))
            .unwrap()
            .pairs
            .is_empty());
        assert!(clp_join(&c, &[], &JoinConfig::new(0.3))
            .unwrap()
            .pairs
            .is_empty());
    }

    #[test]
    fn theta_c_larger_than_theta_still_correct() {
        // Degenerate but legal configuration: cluster radius beyond the join
        // threshold forces member-pair verification inside clusters.
        let c = cluster();
        let data = corpus();
        let expected = brute_force_join(&c, &data, 0.1).unwrap().pairs;
        let cfg = JoinConfig::new(0.1).with_cluster_threshold(0.15);
        let got = cl_join(&c, &data, &cfg).unwrap().pairs;
        assert_eq!(got, expected);
    }
}
