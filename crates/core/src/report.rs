//! The run report: one JSON document per measured join run, unifying the
//! engine's [`MetricsReport`], the join's [`StatsSnapshot`], both
//! configurations and (when tracing was on) the [`ExecutorAnalytics`].
//!
//! The schema is versioned (`"topk-simjoin/run-report/v1"`) so downstream
//! tooling can detect incompatible changes; [`validate`] checks a parsed
//! document against the schema *and* the physical invariants the numbers
//! must satisfy (occupancy in `[0, 1]`, non-negative times, per-stage keys).

use minispark::{Cluster, ExecutorAnalytics, Json, MetricsReport, TraceSnapshot};
use topk_rankings::PrefixKind;

use crate::{JoinConfig, JoinOutcome, StatsSnapshot};

/// The versioned schema identifier embedded in every report document.
pub const RUN_REPORT_SCHEMA: &str = "topk-simjoin/run-report/v1";

/// Everything measured about one join run, ready for JSON export.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm display name (`"VJ"`, `"CL-P"`, …).
    pub algorithm: String,
    /// Dataset label.
    pub dataset: String,
    /// Input size (number of rankings).
    pub n: usize,
    /// The join configuration of the run.
    pub join_config: JoinConfig,
    /// The simulated-cluster configuration of the run.
    pub cluster_config: minispark::ClusterConfig,
    /// Measured wall-clock seconds of the run.
    pub seconds: f64,
    /// Simulated seconds at [`RunReport::sim_slots`] slots (LPT makespan).
    pub sim_seconds: f64,
    /// The slot count `sim_seconds` was computed for.
    pub sim_slots: usize,
    /// Number of result pairs.
    pub pairs: usize,
    /// The join's filter/verification counters.
    pub stats: StatsSnapshot,
    /// Per-stage engine metrics.
    pub metrics: MetricsReport,
    /// Executor-utilization analytics; `None` when tracing was disabled.
    pub analytics: Option<ExecutorAnalytics>,
    /// The heartbeat sampler's time series (`"minispark/heartbeat/v1"`
    /// document); `None` when the cluster ran without a heartbeat.
    pub heartbeat: Option<Json>,
}

impl RunReport {
    /// Captures a report from a finished run: the cluster's metrics and (if
    /// tracing is enabled) its trace snapshot, plus the join outcome.
    pub fn capture(
        algorithm: &str,
        dataset: &str,
        n: usize,
        cluster: &Cluster,
        join_config: &JoinConfig,
        outcome: &JoinOutcome,
        sim_slots: usize,
    ) -> Self {
        let metrics = cluster.metrics();
        let sim_slots = sim_slots.max(1);
        let sim_seconds = metrics.simulated_total(sim_slots).as_secs_f64();
        let trace = cluster.trace();
        let analytics = if trace.is_enabled() {
            Some(ExecutorAnalytics::from_snapshot(
                &trace.snapshot(),
                cluster.config().task_slots(),
            ))
        } else {
            None
        };
        Self {
            algorithm: algorithm.to_string(),
            dataset: dataset.to_string(),
            n,
            join_config: join_config.clone(),
            cluster_config: cluster.config().clone(),
            seconds: outcome.elapsed.as_secs_f64(),
            sim_seconds,
            sim_slots,
            pairs: outcome.pairs.len(),
            stats: outcome.stats,
            metrics,
            analytics,
            heartbeat: cluster.heartbeat_document(),
        }
    }

    /// As [`RunReport::capture`], but from an already-forked
    /// [`TraceSnapshot`] (harnesses that merge the per-run trace into a
    /// parent collector pass the isolated snapshot here).
    #[allow(clippy::too_many_arguments)] // the capture signature plus the snapshot
    pub fn capture_with_trace(
        algorithm: &str,
        dataset: &str,
        n: usize,
        cluster: &Cluster,
        join_config: &JoinConfig,
        outcome: &JoinOutcome,
        sim_slots: usize,
        trace: &TraceSnapshot,
    ) -> Self {
        let mut report = Self::capture(
            algorithm,
            dataset,
            n,
            cluster,
            join_config,
            outcome,
            sim_slots,
        );
        report.analytics = Some(ExecutorAnalytics::from_snapshot(
            trace,
            cluster.config().task_slots(),
        ));
        report
    }

    /// Renders this report as one JSON object (schema
    /// [`RUN_REPORT_SCHEMA`]).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema", Json::str(RUN_REPORT_SCHEMA))
            .with("algorithm", Json::str(&self.algorithm))
            .with("dataset", Json::str(&self.dataset))
            .with("n", Json::num_usize(self.n))
            .with("join_config", join_config_json(&self.join_config))
            .with("cluster_config", cluster_config_json(&self.cluster_config))
            .with("seconds", Json::num(self.seconds))
            .with("sim_seconds", Json::num(self.sim_seconds))
            .with("sim_slots", Json::num_usize(self.sim_slots))
            .with("pairs", Json::num_usize(self.pairs))
            .with("stats", stats_json(&self.stats))
            .with("stages", stages_json(&self.metrics))
            .with(
                "executor",
                match &self.analytics {
                    Some(a) => analytics_json(a),
                    None => Json::Null,
                },
            )
            .with(
                "heartbeat",
                match &self.heartbeat {
                    Some(h) => h.clone(),
                    None => Json::Null,
                },
            )
    }
}

fn prefix_name(prefix: PrefixKind) -> &'static str {
    match prefix {
        PrefixKind::Overlap => "overlap",
        PrefixKind::Ordered => "ordered",
    }
}

fn join_config_json(c: &JoinConfig) -> Json {
    Json::obj()
        .with("theta", Json::num(c.theta))
        .with("cluster_threshold", Json::num(c.cluster_threshold))
        .with(
            "partition_threshold",
            Json::num_usize(c.partition_threshold),
        )
        .with("partitions", Json::num_usize(c.partitions))
        .with("prefix", Json::str(prefix_name(c.prefix)))
        .with("use_position_filter", Json::Bool(c.use_position_filter))
        .with("use_triangle_bounds", Json::Bool(c.use_triangle_bounds))
        .with("use_lemma53", Json::Bool(c.use_lemma53))
        .with("strict_paper_prefixes", Json::Bool(c.strict_paper_prefixes))
        .with(
            "skew",
            // "off" / "auto" / the fixed budget as a number.
            match c.skew {
                minispark::SkewBudget::Off => Json::str("off"),
                minispark::SkewBudget::Auto => Json::str("auto"),
                minispark::SkewBudget::Fixed(budget) => Json::num_usize(budget),
            },
        )
}

fn cluster_config_json(c: &minispark::ClusterConfig) -> Json {
    Json::obj()
        .with("nodes", Json::num_usize(c.nodes))
        .with("executors_per_node", Json::num_usize(c.executors_per_node))
        .with("cores_per_executor", Json::num_usize(c.cores_per_executor))
        .with("task_slots", Json::num_usize(c.task_slots()))
        .with("default_partitions", Json::num_usize(c.default_partitions))
        .with(
            "executor_memory_bytes",
            Json::num_usize(c.executor_memory_bytes),
        )
        .with(
            "spill_record_budget",
            // MAX means "spilling disabled" — exported as null so readers
            // don't mistake a sentinel for a real budget.
            if c.spill_record_budget == usize::MAX {
                Json::Null
            } else {
                Json::num_usize(c.spill_record_budget)
            },
        )
        .with(
            "spill_dir",
            match &c.spill_dir {
                Some(dir) => Json::str(dir.to_string_lossy()),
                None => Json::Null,
            },
        )
        .with("telemetry", Json::Bool(c.telemetry))
        .with(
            "heartbeat_interval_ms",
            match c.heartbeat_interval {
                Some(interval) => Json::num(interval.as_secs_f64() * 1e3),
                None => Json::Null,
            },
        )
        .with(
            "live_port",
            match c.live_port {
                Some(port) => Json::num(f64::from(port)),
                None => Json::Null,
            },
        )
}

fn stats_json(s: &StatsSnapshot) -> Json {
    Json::obj()
        .with("candidates", Json::num_u64(s.candidates))
        .with("position_pruned", Json::num_u64(s.position_pruned))
        .with("verified", Json::num_u64(s.verified))
        .with("result_pairs", Json::num_u64(s.result_pairs))
        .with("triangle_pruned", Json::num_u64(s.triangle_pruned))
        .with("triangle_accepted", Json::num_u64(s.triangle_accepted))
        .with("clusters", Json::num_u64(s.clusters))
        .with("singletons", Json::num_u64(s.singletons))
        .with("posting_lists_split", Json::num_u64(s.posting_lists_split))
        .with("rs_joins", Json::num_u64(s.rs_joins))
        .with("skew_chunks", Json::num_u64(s.skew_chunks))
        .with("skew_steals", Json::num_u64(s.skew_steals))
}

fn stages_json(metrics: &MetricsReport) -> Json {
    let slots = metrics.slots.max(1);
    Json::Arr(
        metrics
            .stages
            .iter()
            .map(|s| {
                Json::obj()
                    .with("id", Json::num_usize(s.stage_id))
                    .with("name", Json::str(&s.name))
                    .with("wall_ms", Json::num(s.wall.as_secs_f64() * 1e3))
                    .with(
                        "sim_ms",
                        Json::num(s.simulated_wall(slots).as_secs_f64() * 1e3),
                    )
                    .with("tasks", Json::num_usize(s.num_tasks))
                    .with("input_records", Json::num_usize(s.input_records))
                    .with("output_records", Json::num_usize(s.output_records))
                    .with("shuffle_records", Json::num_usize(s.shuffle_records))
                    .with("shuffle_bytes", Json::num_usize(s.shuffle_bytes))
                    .with(
                        "max_partition_records",
                        Json::num_usize(s.max_partition_records),
                    )
                    .with("skew", Json::num(s.skew()))
                    .with("spilled_runs", Json::num_usize(s.spilled_runs))
                    .with("stolen_tasks", Json::num_usize(s.stolen_tasks))
            })
            .collect(),
    )
}

fn analytics_json(a: &ExecutorAnalytics) -> Json {
    Json::obj()
        .with("slots", Json::num_usize(a.slots))
        .with(
            "critical_path_ms",
            Json::num(a.critical_path().as_secs_f64() * 1e3),
        )
        .with(
            "total_busy_ms",
            Json::num(a.total_busy().as_secs_f64() * 1e3),
        )
        .with("overall_occupancy", Json::num(a.overall_occupancy()))
        .with(
            "overall_idle_fraction",
            Json::num(a.overall_idle_fraction()),
        )
        .with(
            "stages",
            Json::Arr(
                a.stages
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .with("id", Json::num_usize(s.stage_id))
                            .with("name", Json::str(&s.stage))
                            .with("tasks", Json::num_usize(s.tasks))
                            .with("span_ms", Json::num(s.span.as_secs_f64() * 1e3))
                            .with("busy_ms", Json::num(s.busy.as_secs_f64() * 1e3))
                            .with("queue_wait_ms", Json::num(s.queue_wait.as_secs_f64() * 1e3))
                            .with("occupancy", Json::num(s.occupancy))
                            .with("idle_fraction", Json::num(s.idle_fraction))
                            .with(
                                "queue_wait_p50_ms",
                                Json::num(s.queue_wait_p50.as_secs_f64() * 1e3),
                            )
                            .with(
                                "queue_wait_p95_ms",
                                Json::num(s.queue_wait_p95.as_secs_f64() * 1e3),
                            )
                            .with(
                                "queue_wait_max_ms",
                                Json::num(s.queue_wait_max.as_secs_f64() * 1e3),
                            )
                            .with(
                                "longest_task_ms",
                                Json::num(s.longest_task.as_secs_f64() * 1e3),
                            )
                            .with("stolen_tasks", Json::num_usize(s.stolen_tasks))
                            .with("min_slot_occupancy", Json::num(s.min_slot_occupancy()))
                            .with(
                                "slot_busy_ms",
                                Json::Arr(
                                    s.slot_busy
                                        .iter()
                                        .map(|d| Json::num(d.as_secs_f64() * 1e3))
                                        .collect(),
                                ),
                            )
                    })
                    .collect(),
            ),
        )
}

/// Renders a batch of reports as one document:
/// `{"schema": ..., "runs": [...]}`.
pub fn runs_to_json(reports: &[RunReport]) -> Json {
    Json::obj()
        .with("schema", Json::str(RUN_REPORT_SCHEMA))
        .with(
            "runs",
            Json::Arr(reports.iter().map(RunReport::to_json).collect()),
        )
}

fn expect_key<'a>(obj: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))
}

fn expect_unit_interval(value: &Json, ctx: &str) -> Result<(), String> {
    match value.as_f64() {
        Some(v) if (0.0..=1.0).contains(&v) => Ok(()),
        Some(v) => Err(format!("{ctx}: {v} outside [0, 1]")),
        None => Err(format!("{ctx}: not a number")),
    }
}

fn expect_non_negative(value: &Json, ctx: &str) -> Result<(), String> {
    match value.as_f64() {
        Some(v) if v >= 0.0 => Ok(()),
        Some(v) => Err(format!("{ctx}: {v} is negative")),
        None => Err(format!("{ctx}: not a number")),
    }
}

/// Validates a parsed run-report document (a single run object or a
/// `{"schema", "runs"}` batch): schema identifier, required keys, and the
/// physical invariants (non-negative times and counters, occupancy and idle
/// fraction in `[0, 1]`, `occupancy + idle_fraction = 1` per stage).
pub fn validate(doc: &Json) -> Result<(), String> {
    let schema = expect_key(doc, "schema", "document")?
        .as_str()
        .ok_or_else(|| "document: schema is not a string".to_string())?;
    if schema != RUN_REPORT_SCHEMA {
        return Err(format!(
            "document: schema {schema:?} != {RUN_REPORT_SCHEMA:?}"
        ));
    }
    if let Some(runs) = doc.get("runs") {
        let runs = runs
            .as_arr()
            .ok_or_else(|| "document: runs is not an array".to_string())?;
        for (i, run) in runs.iter().enumerate() {
            validate_run(run, &format!("runs[{i}]"))?;
        }
        Ok(())
    } else {
        validate_run(doc, "run")
    }
}

fn validate_run(run: &Json, ctx: &str) -> Result<(), String> {
    for key in [
        "algorithm",
        "dataset",
        "n",
        "join_config",
        "cluster_config",
        "seconds",
        "sim_seconds",
        "sim_slots",
        "pairs",
        "stats",
        "stages",
        "executor",
    ] {
        expect_key(run, key, ctx)?;
    }
    expect_non_negative(expect_key(run, "seconds", ctx)?, &format!("{ctx}.seconds"))?;
    expect_non_negative(
        expect_key(run, "sim_seconds", ctx)?,
        &format!("{ctx}.sim_seconds"),
    )?;
    let join = expect_key(run, "join_config", ctx)?;
    expect_unit_interval(
        expect_key(join, "theta", ctx)?,
        &format!("{ctx}.join_config.theta"),
    )?;
    let stats = expect_key(run, "stats", ctx)?;
    for key in [
        "candidates",
        "verified",
        "result_pairs",
        "skew_chunks",
        "skew_steals",
    ] {
        expect_non_negative(expect_key(stats, key, ctx)?, &format!("{ctx}.stats.{key}"))?;
    }
    let stages = expect_key(run, "stages", ctx)?
        .as_arr()
        .ok_or_else(|| format!("{ctx}.stages is not an array"))?;
    for (i, stage) in stages.iter().enumerate() {
        let sctx = format!("{ctx}.stages[{i}]");
        for key in ["id", "name", "wall_ms", "sim_ms", "tasks"] {
            expect_key(stage, key, &sctx)?;
        }
        expect_non_negative(
            expect_key(stage, "wall_ms", &sctx)?,
            &format!("{sctx}.wall_ms"),
        )?;
        expect_non_negative(
            expect_key(stage, "sim_ms", &sctx)?,
            &format!("{sctx}.sim_ms"),
        )?;
    }
    let executor = expect_key(run, "executor", ctx)?;
    if !matches!(executor, Json::Null) {
        let ectx = format!("{ctx}.executor");
        expect_unit_interval(
            expect_key(executor, "overall_occupancy", &ectx)?,
            &format!("{ectx}.overall_occupancy"),
        )?;
        expect_unit_interval(
            expect_key(executor, "overall_idle_fraction", &ectx)?,
            &format!("{ectx}.overall_idle_fraction"),
        )?;
        expect_non_negative(
            expect_key(executor, "critical_path_ms", &ectx)?,
            &format!("{ectx}.critical_path_ms"),
        )?;
        let estages = expect_key(executor, "stages", &ectx)?
            .as_arr()
            .ok_or_else(|| format!("{ectx}.stages is not an array"))?;
        for (i, stage) in estages.iter().enumerate() {
            let sctx = format!("{ectx}.stages[{i}]");
            let occ = expect_key(stage, "occupancy", &sctx)?;
            let idle = expect_key(stage, "idle_fraction", &sctx)?;
            expect_unit_interval(occ, &format!("{sctx}.occupancy"))?;
            expect_unit_interval(idle, &format!("{sctx}.idle_fraction"))?;
            match (occ.as_f64(), idle.as_f64()) {
                (Some(o), Some(d)) if (o + d - 1.0).abs() <= 1e-9 => {}
                _ => return Err(format!("{sctx}: occupancy + idle_fraction != 1")),
            }
            expect_non_negative(
                expect_key(stage, "busy_ms", &sctx)?,
                &format!("{sctx}.busy_ms"),
            )?;
            expect_non_negative(
                expect_key(stage, "queue_wait_ms", &sctx)?,
                &format!("{sctx}.queue_wait_ms"),
            )?;
            expect_non_negative(
                expect_key(stage, "stolen_tasks", &sctx)?,
                &format!("{sctx}.stolen_tasks"),
            )?;
            expect_unit_interval(
                expect_key(stage, "min_slot_occupancy", &sctx)?,
                &format!("{sctx}.min_slot_occupancy"),
            )?;
        }
    }
    // The heartbeat section is optional (absent in pre-telemetry documents,
    // null when the run had no sampler), but when present it must be a valid
    // `minispark/heartbeat/v1` document.
    if let Some(heartbeat) = run.get("heartbeat") {
        if !matches!(heartbeat, Json::Null) {
            let hctx = format!("{ctx}.heartbeat");
            let schema = expect_key(heartbeat, "schema", &hctx)?
                .as_str()
                .ok_or_else(|| format!("{hctx}.schema is not a string"))?;
            if schema != minispark::telemetry::HEARTBEAT_SCHEMA {
                return Err(format!(
                    "{hctx}.schema {schema:?} != {:?}",
                    minispark::telemetry::HEARTBEAT_SCHEMA
                ));
            }
            expect_non_negative(
                expect_key(heartbeat, "interval_ms", &hctx)?,
                &format!("{hctx}.interval_ms"),
            )?;
            let samples = expect_key(heartbeat, "samples", &hctx)?
                .as_arr()
                .ok_or_else(|| format!("{hctx}.samples is not an array"))?;
            for (i, sample) in samples.iter().enumerate() {
                let sctx = format!("{hctx}.samples[{i}]");
                expect_non_negative(expect_key(sample, "t_ms", &sctx)?, &format!("{sctx}.t_ms"))?;
                expect_key(sample, "metrics", &sctx)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vj_join, Algorithm};
    use minispark::{ClusterConfig, TraceCollector};
    use topk_datagen::CorpusProfile;

    fn run_report(trace: bool) -> RunReport {
        let config = ClusterConfig::local(4);
        let cluster = if trace {
            Cluster::with_trace(config, TraceCollector::enabled())
        } else {
            Cluster::new(config)
        };
        let data = CorpusProfile::dblp_like(120, 10).generate();
        let jc = JoinConfig::new(0.3);
        let outcome = vj_join(&cluster, &data, &jc).expect("valid corpus");
        RunReport::capture(
            Algorithm::Vj.name(),
            "dblp-like",
            data.len(),
            &cluster,
            &jc,
            &outcome,
            8,
        )
    }

    #[test]
    fn report_without_trace_has_null_executor() {
        let report = run_report(false);
        let doc = report.to_json();
        assert!(matches!(doc.get("executor"), Some(Json::Null)));
        validate(&doc).expect("report validates");
    }

    #[test]
    fn report_with_trace_round_trips_and_validates() {
        let report = run_report(true);
        let doc = report.to_json();
        validate(&doc).expect("report validates");
        let text = doc.render();
        let parsed = Json::parse(&text).expect("report JSON parses");
        validate(&parsed).expect("parsed report validates");
        let executor = parsed.get("executor").expect("executor present");
        assert!(executor.get("stages").and_then(Json::as_arr).is_some());
        assert_eq!(parsed.get("algorithm").and_then(Json::as_str), Some("VJ"));
        // Spilling is disabled in the default config → exported as null.
        assert!(matches!(
            parsed
                .get("cluster_config")
                .and_then(|c| c.get("spill_record_budget")),
            Some(Json::Null)
        ));
    }

    #[test]
    fn batch_document_validates() {
        let reports = vec![run_report(false), run_report(true)];
        let doc = runs_to_json(&reports);
        validate(&doc).expect("batch validates");
        let parsed = Json::parse(&doc.render()).expect("batch parses");
        let runs = parsed
            .get("runs")
            .and_then(Json::as_arr)
            .expect("runs array");
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate(&Json::obj()).is_err());
        let wrong_schema = Json::obj().with("schema", Json::str("nope"));
        assert!(validate(&wrong_schema).is_err());
        let mut doc = run_report(true).to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "seconds" {
                    *value = Json::num(-1.0);
                }
            }
        }
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn report_with_heartbeat_embeds_the_time_series() {
        let config = ClusterConfig::local(4).with_heartbeat(std::time::Duration::from_millis(1));
        let cluster = Cluster::new(config);
        let data = CorpusProfile::dblp_like(120, 10).generate();
        let jc = JoinConfig::new(0.3);
        let outcome = vj_join(&cluster, &data, &jc).expect("valid corpus");
        let report = RunReport::capture(
            Algorithm::Vj.name(),
            "dblp-like",
            data.len(),
            &cluster,
            &jc,
            &outcome,
            8,
        );
        let doc = report.to_json();
        validate(&doc).expect("heartbeat report validates");
        let heartbeat = doc.get("heartbeat").expect("heartbeat present");
        assert_eq!(
            heartbeat.get("schema").and_then(Json::as_str),
            Some(minispark::telemetry::HEARTBEAT_SCHEMA)
        );
        let samples = heartbeat
            .get("samples")
            .and_then(Json::as_arr)
            .expect("samples array");
        assert!(!samples.is_empty(), "final flush sample always present");
        // The telemetry switches are exported with the cluster config.
        let cc = doc.get("cluster_config").expect("cluster config");
        assert_eq!(cc.get("telemetry").and_then(Json::as_bool), Some(true));
        assert!(cc
            .get("heartbeat_interval_ms")
            .and_then(Json::as_f64)
            .is_some());
        assert!(matches!(cc.get("live_port"), Some(Json::Null)));
    }

    #[test]
    fn validate_rejects_a_malformed_heartbeat_section() {
        let mut doc = run_report(false).to_json();
        if let Json::Obj(fields) = &mut doc {
            for (key, value) in fields.iter_mut() {
                if key == "heartbeat" {
                    *value = Json::obj().with("schema", Json::str("nope"));
                }
            }
        }
        assert!(validate(&doc).is_err());
    }
}
