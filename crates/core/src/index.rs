//! An in-memory similarity **range-search index** over top-k rankings — the
//! online companion of the batch joins, in the spirit of the authors' prior
//! work on top-k-list similarity search (Milchevski, Anand, Michel,
//! EDBT 2015, ref. 18, which §4 builds on): an inverted index over
//! frequency-ordered prefixes with the position filter and early-exit
//! verification.
//!
//! Use it when rankings arrive one at a time (a new portal member, a fresh
//! query) and the application needs that record's neighbours immediately —
//! the batch algorithms answer the all-pairs question, this index answers
//! the point question.
//!
//! The index is built for a maximum supported threshold `theta_max`:
//! record prefixes are sized for it, so any query with `θ ≤ theta_max` is
//! answered exactly (the prefix-intersection guarantee needs both sides'
//! prefixes to cover the pair threshold; the stored side covers
//! `theta_max ≥ θ`, the query side is probed with its exact `p(θ)`).

use std::collections::HashMap;
use std::sync::Arc;

use topk_rankings::bounds::position_filter_prunes;
use topk_rankings::distance::{max_raw_distance, raw_threshold};
use topk_rankings::{FrequencyTable, ItemId, OrderedRanking, PrefixKind, Ranking};

use crate::stats::JoinStats;
use crate::JoinError;

/// Inverted prefix index supporting exact Footrule range queries up to a
/// build-time maximum threshold.
pub struct RankingIndex {
    k: usize,
    theta_max: f64,
    freq: FrequencyTable,
    records: Vec<Arc<OrderedRanking>>,
    /// item → [(record index, original rank of item in that record)] over
    /// the records' `p(theta_max)` prefixes.
    postings: HashMap<ItemId, Vec<(u32, u16)>>,
}

impl RankingIndex {
    /// Builds the index over `data` for queries with `θ ≤ theta_max`.
    ///
    /// The frequency order is computed from `data` itself; `theta_max`
    /// close to 1 degrades towards indexing whole rankings (prefix = k).
    pub fn build(data: &[Ranking], theta_max: f64) -> Result<Self, JoinError> {
        if !(0.0..=1.0).contains(&theta_max) || !theta_max.is_finite() {
            return Err(JoinError::InvalidThreshold(theta_max));
        }
        let k = crate::pipeline::uniform_k(data)?.unwrap_or(0);
        let freq = FrequencyTable::from_rankings(data);
        let mut index = Self {
            k,
            theta_max,
            freq,
            // alloc(one-time index construction, sized up front)
            records: Vec::with_capacity(data.len()),
            postings: HashMap::new(),
        };
        for r in data {
            index.insert_ranking(r)?;
        }
        Ok(index)
    }

    /// Number of indexed rankings.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The (fixed) ranking length, 0 while empty.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The maximum supported query threshold.
    pub fn theta_max(&self) -> f64 {
        self.theta_max
    }

    /// Inserts one ranking.
    ///
    /// Note: the canonical item order is frozen at build time; rankings
    /// inserted later are ordered by the original frequency table (their
    /// new items count as frequency 0, i.e. rare — which keeps prefixes
    /// valid, since any consistent total order works for prefix filtering).
    pub fn insert_ranking(&mut self, r: &Ranking) -> Result<(), JoinError> {
        if self.records.is_empty() && self.k == 0 {
            self.k = r.k();
        }
        if r.k() != self.k {
            return Err(JoinError::MixedRankingLengths {
                expected: self.k,
                found: r.k(),
            });
        }
        let idx = u32::try_from(self.records.len())
            .expect("inverted index capacity exceeded: more than u32::MAX rankings");
        let ordered = Arc::new(OrderedRanking::by_frequency(r, &self.freq));
        let p = self.stored_prefix_len();
        for &(item, rank) in ordered.prefix(p) {
            self.postings.entry(item).or_default().push((idx, rank));
        }
        self.records.push(ordered);
        Ok(())
    }

    fn stored_prefix_len(&self) -> usize {
        let theta_raw = raw_threshold(self.k, self.theta_max);
        PrefixKind::Overlap.prefix_len(self.k, theta_raw)
    }

    /// All indexed rankings within normalized Footrule distance `theta` of
    /// `query`, as `(id, raw_distance)` pairs sorted by distance then id.
    /// Self-matches (same id) are excluded.
    ///
    /// # Errors
    /// `InvalidThreshold` when `theta > theta_max` (the stored prefixes
    /// cannot guarantee completeness beyond the build threshold) or not a
    /// probability; `MixedRankingLengths` when the query length differs.
    pub fn range_query(&self, query: &Ranking, theta: f64) -> Result<Vec<(u64, u64)>, JoinError> {
        self.range_query_impl(query, theta, None)
    }

    /// [`RankingIndex::range_query`] with filter-effectiveness accounting:
    /// bumps `candidates` per probed (deduplicated) posting entry,
    /// `position_pruned` per position-filter rejection, `verified` per
    /// Footrule evaluation and `result_pairs` per emitted neighbour — the
    /// same counter semantics as the batch join kernels, so index-backed and
    /// batch runs are comparable in reports and telemetry.
    pub fn range_query_with_stats(
        &self,
        query: &Ranking,
        theta: f64,
        stats: &JoinStats,
    ) -> Result<Vec<(u64, u64)>, JoinError> {
        self.range_query_impl(query, theta, Some(stats))
    }

    fn range_query_impl(
        &self,
        query: &Ranking,
        theta: f64,
        stats: Option<&JoinStats>,
    ) -> Result<Vec<(u64, u64)>, JoinError> {
        if !(0.0..=1.0).contains(&theta) || !theta.is_finite() || theta > self.theta_max + 1e-12 {
            return Err(JoinError::InvalidThreshold(theta));
        }
        if self.records.is_empty() {
            // alloc(empty Vec never allocates)
            return Ok(Vec::new());
        }
        if query.k() != self.k {
            return Err(JoinError::MixedRankingLengths {
                expected: self.k,
                found: query.k(),
            });
        }
        let theta_raw = raw_threshold(self.k, theta);
        let ordered_query = OrderedRanking::by_frequency(query, &self.freq);

        // alloc(per-query result buffer — one per range_query call, not per candidate)
        let mut results = Vec::new();
        if theta_raw >= max_raw_distance(self.k) {
            // Disjoint pairs qualify: prefix probing is incomplete, scan.
            for record in &self.records {
                if record.id() == query.id() {
                    continue;
                }
                if let Some(stats) = stats {
                    JoinStats::bump(&stats.candidates);
                    JoinStats::bump(&stats.verified);
                }
                if let Some(d) = ordered_query.footrule_within(record, theta_raw) {
                    if let Some(stats) = stats {
                        JoinStats::bump(&stats.result_pairs);
                    }
                    results.push((record.id(), d));
                }
            }
        } else {
            let p = PrefixKind::Overlap.prefix_len(self.k, theta_raw);
            // alloc(per-query dedup bitmap — one per range_query call)
            let mut seen: Vec<bool> = vec![false; self.records.len()];
            for &(item, query_rank) in ordered_query.prefix(p) {
                let Some(postings) = self.postings.get(&item) else {
                    continue;
                };
                for &(rec_idx, rec_rank) in postings {
                    let rec_slot: u32 = rec_idx;
                    let slot = rec_slot as usize;
                    // panics(postings only store slots < records.len(); seen has records.len() entries)
                    if seen[slot] {
                        continue;
                    }
                    // panics(postings only store slots < records.len(); seen has records.len() entries)
                    seen[slot] = true;
                    let record = &self.records[slot];
                    if record.id() == query.id() {
                        continue;
                    }
                    if let Some(stats) = stats {
                        JoinStats::bump(&stats.candidates);
                    }
                    if position_filter_prunes(
                        usize::from(query_rank),
                        usize::from(rec_rank),
                        theta_raw,
                    ) {
                        if let Some(stats) = stats {
                            JoinStats::bump(&stats.position_pruned);
                        }
                        continue;
                    }
                    if let Some(stats) = stats {
                        JoinStats::bump(&stats.verified);
                    }
                    if let Some(d) = ordered_query.footrule_within(record, theta_raw) {
                        if let Some(stats) = stats {
                            JoinStats::bump(&stats.result_pairs);
                        }
                        results.push((record.id(), d));
                    }
                }
            }
        }
        results.sort_by_key(|&(id, d)| (d, id));
        Ok(results)
    }

    /// The `n` nearest indexed rankings to `query` among those within
    /// `theta_max` (ties by id). Convenience on top of [`RankingIndex::range_query`].
    pub fn nearest(&self, query: &Ranking, n: usize) -> Result<Vec<(u64, u64)>, JoinError> {
        let mut all = self.range_query(query, self.theta_max)?;
        all.truncate(n);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_datagen::CorpusProfile;
    use topk_rankings::footrule_raw;

    fn corpus() -> Vec<Ranking> {
        CorpusProfile::orku_like(400, 10).generate()
    }

    fn linear_scan(data: &[Ranking], query: &Ranking, theta: f64) -> Vec<(u64, u64)> {
        let theta_raw = raw_threshold(query.k(), theta);
        let mut out: Vec<(u64, u64)> = data
            .iter()
            .filter(|r| r.id() != query.id())
            .filter_map(|r| {
                let d = footrule_raw(query, r);
                (d <= theta_raw).then_some((r.id(), d))
            })
            .collect();
        out.sort_by_key(|&(id, d)| (d, id));
        out
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.4).expect("uniform-length corpus builds");
        for theta in [0.05, 0.1, 0.2, 0.3, 0.4] {
            for query in data.iter().step_by(37) {
                let got = index
                    .range_query(query, theta)
                    .expect("θ is within the build maximum");
                let expected = linear_scan(&data, query, theta);
                assert_eq!(got, expected, "θ = {theta}, query {}", query.id());
            }
        }
    }

    #[test]
    fn foreign_queries_are_supported() {
        // Queries that are not part of the index (e.g. a new user).
        let data = corpus();
        let index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let foreign = Ranking::new_unchecked(999_999, data[3].items().to_vec());
        let got = index
            .range_query(&foreign, 0.3)
            .expect("foreign query with matching k is accepted");
        let expected = linear_scan(&data, &foreign, 0.3);
        assert_eq!(got, expected);
        // Its twin in the corpus is found at distance 0.
        assert_eq!(got[0], (data[3].id(), 0));
    }

    #[test]
    fn incremental_inserts() {
        let data = corpus();
        let (head, tail) = data.split_at(300);
        let mut index = RankingIndex::build(head, 0.3).expect("uniform-length corpus builds");
        for r in tail {
            index
                .insert_ranking(r)
                .expect("insert of a same-length ranking succeeds");
        }
        assert_eq!(index.len(), data.len());
        for query in data.iter().step_by(61) {
            let got = index
                .range_query(query, 0.3)
                .expect("θ is within the build maximum");
            let expected = linear_scan(&data, query, 0.3);
            assert_eq!(got, expected, "query {}", query.id());
        }
    }

    #[test]
    fn theta_one_scans_everything() {
        let data = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![7, 8, 9]).expect("distinct items form a valid ranking"),
        ];
        let index = RankingIndex::build(&data, 1.0).expect("uniform-length corpus builds");
        let got = index
            .range_query(&data[0], 1.0)
            .expect("θ = 1 equals the build maximum");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
    }

    #[test]
    fn rejects_thresholds_beyond_build_max() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.2).expect("uniform-length corpus builds");
        assert!(index.range_query(&data[0], 0.3).is_err());
        assert!(index.range_query(&data[0], f64::NAN).is_err());
    }

    #[test]
    fn rejects_mismatched_query_length() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let short = Ranking::new(5, vec![1, 2, 3]).expect("distinct items form a valid ranking");
        assert!(matches!(
            index.range_query(&short, 0.2),
            Err(JoinError::MixedRankingLengths { .. })
        ));
        let mut mutable = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        assert!(mutable.insert_ranking(&short).is_err());
    }

    #[test]
    fn nearest_truncates_and_sorts() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.4).expect("uniform-length corpus builds");
        let near = index
            .nearest(&data[0], 3)
            .expect("nearest uses the build maximum θ");
        assert!(near.len() <= 3);
        assert!(near.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn stats_threaded_query_matches_and_accounts() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let stats = JoinStats::default();
        let plain = index
            .range_query(&data[5], 0.2)
            .expect("θ is within the build maximum");
        let counted = index
            .range_query_with_stats(&data[5], 0.2, &stats)
            .expect("θ is within the build maximum");
        assert_eq!(plain, counted);
        let snap = stats.snapshot();
        // Every candidate is either position-pruned or verified; every
        // result came out of a verification.
        assert_eq!(snap.candidates, snap.position_pruned + snap.verified);
        assert_eq!(snap.result_pairs, counted.len() as u64);
        assert!(snap.candidates > 0);
    }

    #[test]
    fn empty_index() {
        let index = RankingIndex::build(&[], 0.3).expect("empty corpus builds");
        assert!(index.is_empty());
        let q = Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking");
        assert!(index
            .range_query(&q, 0.2)
            .expect("θ is within the build maximum")
            .is_empty());
    }
}
