//! An in-memory similarity **range-search index** over top-k rankings — the
//! online companion of the batch joins, in the spirit of the authors' prior
//! work on top-k-list similarity search (Milchevski, Anand, Michel,
//! EDBT 2015, ref. 18, which §4 builds on): an inverted index over
//! frequency-ordered prefixes with the position filter and early-exit
//! verification.
//!
//! Use it when rankings arrive one at a time (a new portal member, a fresh
//! query) and the application needs that record's neighbours immediately —
//! the batch algorithms answer the all-pairs question, this index answers
//! the point question.
//!
//! The index is built for a maximum supported threshold `theta_max`:
//! record prefixes are sized for it, so any query with `θ ≤ theta_max` is
//! answered exactly (the prefix-intersection guarantee needs both sides'
//! prefixes to cover the pair threshold; the stored side covers
//! `theta_max ≥ θ`, the query side is probed with its exact `p(θ)`).

use std::collections::HashMap;
use std::sync::Arc;

use topk_rankings::bounds::position_filter_prunes;
use topk_rankings::distance::{max_raw_distance, raw_threshold};
use topk_rankings::{FrequencyTable, ItemId, OrderedRanking, PrefixKind, Ranking, RankingId};

use crate::stats::JoinStats;
use crate::JoinError;

/// Inverted prefix index supporting exact Footrule range queries up to a
/// build-time maximum threshold.
///
/// The index is **mutable**: [`RankingIndex::insert_ranking`] upserts (an
/// existing id is *replaced*, never shadowed) and
/// [`RankingIndex::remove_ranking`] deletes. Both tombstone the victim's
/// slot and drop its posting entries, so a stale version can never match a
/// query; the invariant "every live id occupies exactly one slot" is what
/// makes the query-time slot dedup an id dedup too. Tombstoned slots keep
/// their storage until [`RankingIndex::compacted`] rebuilds — long-lived
/// mutable deployments (see [`crate::serving`]) compact past a tombstone
/// ratio.
pub struct RankingIndex {
    k: usize,
    theta_max: f64,
    freq: FrequencyTable,
    records: Vec<Arc<OrderedRanking>>,
    /// `live[slot]` — cleared when an upsert or delete tombstones the slot.
    live: Vec<bool>,
    /// id → the one live slot holding its current version.
    id_to_slot: HashMap<RankingId, u32>,
    /// Count of tombstoned (dead but not yet compacted) slots.
    tombstones: usize,
    /// item → [(record index, original rank of item in that record)] over
    /// the records' `p(theta_max)` prefixes. Only live slots appear:
    /// tombstoning removes the dead slot's entries.
    postings: HashMap<ItemId, Vec<(u32, u16)>>,
}

impl RankingIndex {
    /// Builds the index over `data` for queries with `θ ≤ theta_max`.
    ///
    /// The frequency order is computed from `data` itself; `theta_max`
    /// close to 1 degrades towards indexing whole rankings (prefix = k).
    pub fn build(data: &[Ranking], theta_max: f64) -> Result<Self, JoinError> {
        if !(0.0..=1.0).contains(&theta_max) || !theta_max.is_finite() {
            return Err(JoinError::InvalidThreshold(theta_max));
        }
        let k = crate::pipeline::uniform_k(data)?.unwrap_or(0);
        let freq = FrequencyTable::from_rankings(data);
        let mut index = Self {
            k,
            theta_max,
            freq,
            // alloc(one-time index construction, sized up front)
            records: Vec::with_capacity(data.len()),
            // alloc(one-time index construction, sized up front)
            live: Vec::with_capacity(data.len()),
            id_to_slot: HashMap::with_capacity(data.len()),
            tombstones: 0,
            // alloc(one-time index construction; postings fill on insert)
            postings: HashMap::new(),
        };
        for r in data {
            index.insert_ranking(r)?;
        }
        Ok(index)
    }

    /// Number of **live** indexed rankings (tombstoned slots do not count).
    pub fn len(&self) -> usize {
        self.records.len() - self.tombstones
    }

    /// Whether the index holds no live rankings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots, live and tombstoned — the storage footprint.
    pub fn slot_count(&self) -> usize {
        self.records.len()
    }

    /// Number of tombstoned (dead, not yet compacted) slots.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Fraction of slots that are tombstones, `0.0` while empty. Long-lived
    /// mutable deployments compact past a ratio threshold.
    pub fn tombstone_ratio(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            // cast(documented precision loss only beyond 2^53 slots — capacity is u32)
            self.tombstones as f64 / self.records.len() as f64
        }
    }

    /// Whether `id` currently has a live version in the index.
    pub fn contains_id(&self, id: RankingId) -> bool {
        self.id_to_slot.contains_key(&id)
    }

    /// The current (live) version of `id`, if indexed.
    pub fn get(&self, id: RankingId) -> Option<Ranking> {
        let slot = *self.id_to_slot.get(&id)?;
        // panics(id_to_slot only maps to slots pushed into records)
        Some(self.records[slot as usize].to_ranking())
    }

    /// All live rankings in slot (insertion) order — the state a snapshot
    /// persists and a compaction rebuilds from.
    pub fn live_rankings(&self) -> Vec<Ranking> {
        self.records
            .iter()
            .zip(&self.live)
            .filter(|&(_, live)| *live)
            .map(|(record, _)| record.to_ranking())
            // alloc(snapshot/compaction export — one Vec per rebuild, not per record)
            .collect()
    }

    /// A compacted copy: same `theta_max`, only the live rankings, no
    /// tombstones. The frequency order is recomputed from the surviving
    /// records (any consistent total order preserves prefix-filter
    /// correctness, so query answers are unchanged).
    pub fn compacted(&self) -> Result<Self, JoinError> {
        Self::build(&self.live_rankings(), self.theta_max)
    }

    /// The (fixed) ranking length, 0 while empty.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The maximum supported query threshold.
    pub fn theta_max(&self) -> f64 {
        self.theta_max
    }

    /// Inserts one ranking, **replacing** any existing version of its id
    /// (upsert): the old version's slot is tombstoned and its postings are
    /// dropped, so the stale ranking can never match — and no id ever
    /// appears twice in a query result.
    ///
    /// Note: the canonical item order is frozen at build time; rankings
    /// inserted later are ordered by the original frequency table (their
    /// new items count as frequency 0, i.e. rare — which keeps prefixes
    /// valid, since any consistent total order works for prefix filtering).
    pub fn insert_ranking(&mut self, r: &Ranking) -> Result<(), JoinError> {
        if self.records.is_empty() && self.k == 0 {
            self.k = r.k();
        }
        if r.k() != self.k {
            return Err(JoinError::MixedRankingLengths {
                expected: self.k,
                found: r.k(),
            });
        }
        if let Some(&old) = self.id_to_slot.get(&r.id()) {
            self.tombstone_slot(old);
        }
        let idx = u32::try_from(self.records.len())
            .expect("inverted index capacity exceeded: more than u32::MAX rankings");
        let ordered = Arc::new(OrderedRanking::by_frequency(r, &self.freq));
        let p = self.stored_prefix_len();
        for &(item, rank) in ordered.prefix(p) {
            self.postings.entry(item).or_default().push((idx, rank));
        }
        self.records.push(ordered);
        self.live.push(true);
        self.id_to_slot.insert(r.id(), idx);
        Ok(())
    }

    /// Deletes `id`'s live version, tombstoning its slot and dropping its
    /// postings. Returns whether the id was present.
    pub fn remove_ranking(&mut self, id: RankingId) -> bool {
        match self.id_to_slot.remove(&id) {
            Some(slot) => {
                self.tombstone_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Marks `slot` dead and removes its posting entries. The caller keeps
    /// `id_to_slot` consistent (remove the id, or re-point it at the
    /// replacement slot).
    fn tombstone_slot(&mut self, slot: u32) {
        let p = self.stored_prefix_len();
        // panics(id_to_slot only maps to slots pushed into records)
        let record = Arc::clone(&self.records[slot as usize]);
        for &(item, _) in record.prefix(p) {
            if let Some(list) = self.postings.get_mut(&item) {
                list.retain(|&(s, _)| s != slot);
                if list.is_empty() {
                    self.postings.remove(&item);
                }
            }
        }
        // panics(id_to_slot only maps to slots pushed into records)
        debug_assert!(self.live[slot as usize], "slot tombstoned twice");
        // panics(id_to_slot only maps to slots pushed into records)
        self.live[slot as usize] = false;
        self.tombstones += 1;
    }

    fn stored_prefix_len(&self) -> usize {
        let theta_raw = raw_threshold(self.k, self.theta_max);
        PrefixKind::Overlap.prefix_len(self.k, theta_raw)
    }

    /// All indexed rankings within normalized Footrule distance `theta` of
    /// `query`, as `(id, raw_distance)` pairs sorted by distance then id.
    /// Self-matches (same id) are excluded.
    ///
    /// # Errors
    /// `InvalidThreshold` when `theta > theta_max` (the stored prefixes
    /// cannot guarantee completeness beyond the build threshold) or not a
    /// probability; `MixedRankingLengths` when the query length differs.
    pub fn range_query(&self, query: &Ranking, theta: f64) -> Result<Vec<(u64, u64)>, JoinError> {
        self.range_query_impl(query, theta, None)
    }

    /// [`RankingIndex::range_query`] with filter-effectiveness accounting:
    /// bumps `candidates` per probed (deduplicated) posting entry,
    /// `position_pruned` per position-filter rejection, `verified` per
    /// Footrule evaluation and `result_pairs` per emitted neighbour — the
    /// same counter semantics as the batch join kernels, so index-backed and
    /// batch runs are comparable in reports and telemetry.
    pub fn range_query_with_stats(
        &self,
        query: &Ranking,
        theta: f64,
        stats: &JoinStats,
    ) -> Result<Vec<(u64, u64)>, JoinError> {
        self.range_query_impl(query, theta, Some(stats))
    }

    fn range_query_impl(
        &self,
        query: &Ranking,
        theta: f64,
        stats: Option<&JoinStats>,
    ) -> Result<Vec<(u64, u64)>, JoinError> {
        if !(0.0..=1.0).contains(&theta) || !theta.is_finite() || theta > self.theta_max + 1e-12 {
            return Err(JoinError::InvalidThreshold(theta));
        }
        if self.is_empty() {
            // alloc(empty Vec never allocates)
            return Ok(Vec::new());
        }
        if query.k() != self.k {
            return Err(JoinError::MixedRankingLengths {
                expected: self.k,
                found: query.k(),
            });
        }
        let theta_raw = raw_threshold(self.k, theta);
        let ordered_query = OrderedRanking::by_frequency(query, &self.freq);

        // alloc(per-query result buffer — one per range_query call, not per candidate)
        let mut results = Vec::new();
        if theta_raw >= max_raw_distance(self.k) {
            // Disjoint pairs qualify: prefix probing is incomplete, scan.
            // Tombstoned slots are skipped — only live versions may match,
            // and since every live id owns exactly one slot, no id can
            // appear twice in the output.
            for (record, live) in self.records.iter().zip(&self.live) {
                if !live || record.id() == query.id() {
                    continue;
                }
                if let Some(stats) = stats {
                    JoinStats::bump(&stats.candidates);
                    JoinStats::bump(&stats.verified);
                }
                if let Some(d) = ordered_query.footrule_within(record, theta_raw) {
                    if let Some(stats) = stats {
                        JoinStats::bump(&stats.result_pairs);
                    }
                    results.push((record.id(), d));
                }
            }
        } else {
            let p = PrefixKind::Overlap.prefix_len(self.k, theta_raw);
            // Per-query dedup, keyed by slot. Slot dedup *is* id dedup
            // here: tombstoning removes a dead slot's postings eagerly, so
            // the lists only name live slots, and every live id owns
            // exactly one slot (the upsert invariant).
            // alloc(per-query dedup bitmap — one per range_query call)
            let mut seen: Vec<bool> = vec![false; self.records.len()];
            for &(item, query_rank) in ordered_query.prefix(p) {
                let Some(postings) = self.postings.get(&item) else {
                    continue;
                };
                for &(rec_idx, rec_rank) in postings {
                    let rec_slot: u32 = rec_idx;
                    let slot = rec_slot as usize;
                    // panics(postings only store slots < records.len(); seen has records.len() entries)
                    if seen[slot] {
                        continue;
                    }
                    // panics(postings only store slots < records.len(); seen has records.len() entries)
                    seen[slot] = true;
                    debug_assert!(
                        self.live[slot],
                        "postings must never name a tombstoned slot"
                    );
                    // panics(postings hold slots < records.len() by construction)
                    let record = &self.records[slot];
                    if record.id() == query.id() {
                        continue;
                    }
                    if let Some(stats) = stats {
                        JoinStats::bump(&stats.candidates);
                    }
                    if position_filter_prunes(
                        usize::from(query_rank),
                        usize::from(rec_rank),
                        theta_raw,
                    ) {
                        if let Some(stats) = stats {
                            JoinStats::bump(&stats.position_pruned);
                        }
                        continue;
                    }
                    if let Some(stats) = stats {
                        JoinStats::bump(&stats.verified);
                    }
                    if let Some(d) = ordered_query.footrule_within(record, theta_raw) {
                        if let Some(stats) = stats {
                            JoinStats::bump(&stats.result_pairs);
                        }
                        results.push((record.id(), d));
                    }
                }
            }
        }
        results.sort_by_key(|&(id, d)| (d, id));
        Ok(results)
    }

    /// The `n` nearest indexed rankings to `query` among those within
    /// `theta_max` (ties by id). Convenience on top of [`RankingIndex::range_query`].
    ///
    /// **Bounded by `theta_max`:** the stored prefixes only guarantee
    /// completeness up to the build threshold, so this returns *fewer than
    /// `n` neighbours* when fewer than `n` rankings lie within `theta_max`
    /// of the query — it is "the n nearest within θ_max", not a global
    /// k-NN. Build with a larger `theta_max` (up to `1.0`, which degrades
    /// to a full scan) if distant neighbours must be reachable.
    pub fn nearest(&self, query: &Ranking, n: usize) -> Result<Vec<(u64, u64)>, JoinError> {
        let mut all = self.range_query(query, self.theta_max)?;
        all.truncate(n);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_datagen::CorpusProfile;
    use topk_rankings::footrule_raw;

    fn corpus() -> Vec<Ranking> {
        CorpusProfile::orku_like(400, 10).generate()
    }

    fn linear_scan(data: &[Ranking], query: &Ranking, theta: f64) -> Vec<(u64, u64)> {
        let theta_raw = raw_threshold(query.k(), theta);
        let mut out: Vec<(u64, u64)> = data
            .iter()
            .filter(|r| r.id() != query.id())
            .filter_map(|r| {
                let d = footrule_raw(query, r);
                (d <= theta_raw).then_some((r.id(), d))
            })
            .collect();
        out.sort_by_key(|&(id, d)| (d, id));
        out
    }

    #[test]
    fn range_query_matches_linear_scan() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.4).expect("uniform-length corpus builds");
        for theta in [0.05, 0.1, 0.2, 0.3, 0.4] {
            for query in data.iter().step_by(37) {
                let got = index
                    .range_query(query, theta)
                    .expect("θ is within the build maximum");
                let expected = linear_scan(&data, query, theta);
                assert_eq!(got, expected, "θ = {theta}, query {}", query.id());
            }
        }
    }

    #[test]
    fn foreign_queries_are_supported() {
        // Queries that are not part of the index (e.g. a new user).
        let data = corpus();
        let index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let foreign = Ranking::new_unchecked(999_999, data[3].items().to_vec());
        let got = index
            .range_query(&foreign, 0.3)
            .expect("foreign query with matching k is accepted");
        let expected = linear_scan(&data, &foreign, 0.3);
        assert_eq!(got, expected);
        // Its twin in the corpus is found at distance 0.
        assert_eq!(got[0], (data[3].id(), 0));
    }

    #[test]
    fn incremental_inserts() {
        let data = corpus();
        let (head, tail) = data.split_at(300);
        let mut index = RankingIndex::build(head, 0.3).expect("uniform-length corpus builds");
        for r in tail {
            index
                .insert_ranking(r)
                .expect("insert of a same-length ranking succeeds");
        }
        assert_eq!(index.len(), data.len());
        for query in data.iter().step_by(61) {
            let got = index
                .range_query(query, 0.3)
                .expect("θ is within the build maximum");
            let expected = linear_scan(&data, query, 0.3);
            assert_eq!(got, expected, "query {}", query.id());
        }
    }

    #[test]
    fn theta_one_scans_everything() {
        let data = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![7, 8, 9]).expect("distinct items form a valid ranking"),
        ];
        let index = RankingIndex::build(&data, 1.0).expect("uniform-length corpus builds");
        let got = index
            .range_query(&data[0], 1.0)
            .expect("θ = 1 equals the build maximum");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, 2);
    }

    #[test]
    fn rejects_thresholds_beyond_build_max() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.2).expect("uniform-length corpus builds");
        assert!(index.range_query(&data[0], 0.3).is_err());
        assert!(index.range_query(&data[0], f64::NAN).is_err());
    }

    #[test]
    fn rejects_mismatched_query_length() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let short = Ranking::new(5, vec![1, 2, 3]).expect("distinct items form a valid ranking");
        assert!(matches!(
            index.range_query(&short, 0.2),
            Err(JoinError::MixedRankingLengths { .. })
        ));
        let mut mutable = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        assert!(mutable.insert_ranking(&short).is_err());
    }

    #[test]
    fn nearest_truncates_and_sorts() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.4).expect("uniform-length corpus builds");
        let near = index
            .nearest(&data[0], 3)
            .expect("nearest uses the build maximum θ");
        assert!(near.len() <= 3);
        assert!(near.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn stats_threaded_query_matches_and_accounts() {
        let data = corpus();
        let index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let stats = JoinStats::default();
        let plain = index
            .range_query(&data[5], 0.2)
            .expect("θ is within the build maximum");
        let counted = index
            .range_query_with_stats(&data[5], 0.2, &stats)
            .expect("θ is within the build maximum");
        assert_eq!(plain, counted);
        let snap = stats.snapshot();
        // Every candidate is either position-pruned or verified; every
        // result came out of a verification.
        assert_eq!(snap.candidates, snap.position_pruned + snap.verified);
        assert_eq!(snap.result_pairs, counted.len() as u64);
        assert!(snap.candidates > 0);
    }

    #[test]
    fn upsert_replaces_not_shadows() {
        // Regression: a re-inserted id used to leave the old version's slot
        // and postings live, so range_query returned the id twice and
        // matched the stale ranking.
        let data = corpus();
        let mut index = RankingIndex::build(&data, 0.4).expect("uniform-length corpus builds");
        let victim = data[7].clone();
        // New version: the items of a far-away ranking under the victim's id.
        let replacement = Ranking::new_unchecked(victim.id(), data[399].items().to_vec());
        index
            .insert_ranking(&replacement)
            .expect("same-length upsert succeeds");
        assert_eq!(index.len(), data.len(), "upsert must not grow the index");
        assert_eq!(index.tombstone_count(), 1);
        assert_eq!(index.get(victim.id()), Some(replacement.clone()));

        // The updated corpus as a plain dataset for the oracle.
        let updated: Vec<Ranking> = data
            .iter()
            .map(|r| {
                if r.id() == victim.id() {
                    replacement.clone()
                } else {
                    r.clone()
                }
            })
            .collect();
        for theta in [0.1, 0.3, 0.4] {
            for query in updated.iter().step_by(29) {
                let got = index
                    .range_query(query, theta)
                    .expect("θ is within the build maximum");
                let mut ids: Vec<u64> = got.iter().map(|&(id, _)| id).collect();
                ids.dedup();
                assert_eq!(ids.len(), got.len(), "duplicate id in results, θ = {theta}");
                assert_eq!(got, linear_scan(&updated, query, theta), "θ = {theta}");
            }
        }
        // The pre-update version must never match: a probe identical to the
        // old victim ranking only sees the new version's distance.
        let probe = Ranking::new_unchecked(888_888, victim.items().to_vec());
        let got = index
            .range_query(&probe, 0.4)
            .expect("θ is within the build maximum");
        let stale_hit = got.iter().any(|&(id, d)| id == victim.id() && d == 0)
            && replacement.items() != victim.items();
        assert!(
            !stale_hit,
            "query matched the tombstoned pre-update ranking"
        );
        assert_eq!(got, linear_scan(&updated, &probe, 0.4));
    }

    #[test]
    fn upsert_dedup_covers_the_full_scan_branch() {
        // θ = 1 ⇒ theta_raw = max_raw_distance ⇒ the disjoint-pairs full
        // scan runs instead of prefix probing; a re-inserted id must still
        // appear exactly once, with its *current* items' distance.
        let data = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![7, 8, 9]).expect("distinct items form a valid ranking"),
            Ranking::new(3, vec![4, 5, 6]).expect("distinct items form a valid ranking"),
        ];
        let mut index = RankingIndex::build(&data, 1.0).expect("uniform-length corpus builds");
        let replacement = Ranking::new_unchecked(2, vec![1, 2, 3]);
        index
            .insert_ranking(&replacement)
            .expect("same-length upsert succeeds");
        let query = Ranking::new_unchecked(99, vec![1, 2, 3]);
        let got = index
            .range_query(&query, 1.0)
            .expect("θ = 1 equals the build maximum");
        let twos: Vec<_> = got.iter().filter(|&&(id, _)| id == 2).collect();
        assert_eq!(twos.len(), 1, "id 2 must appear exactly once: {got:?}");
        assert_eq!(*twos[0], (2, 0), "id 2 must match via its new items");
        // And the prefix branch agrees on the same index state.
        let narrow = index
            .range_query(&query, 0.1)
            .expect("θ is within the build maximum");
        assert_eq!(narrow.iter().filter(|&&(id, _)| id == 2).count(), 1);
    }

    #[test]
    fn remove_ranking_deletes_and_reinsert_revives() {
        let data = corpus();
        let mut index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        let gone = data[11].clone();
        assert!(index.remove_ranking(gone.id()));
        assert!(!index.remove_ranking(gone.id()), "double delete is a no-op");
        assert!(!index.contains_id(gone.id()));
        assert_eq!(index.len(), data.len() - 1);

        let remaining: Vec<Ranking> = data
            .iter()
            .filter(|r| r.id() != gone.id())
            .cloned()
            .collect();
        let probe = Ranking::new_unchecked(777_777, gone.items().to_vec());
        let got = index
            .range_query(&probe, 0.3)
            .expect("θ is within the build maximum");
        assert_eq!(got, linear_scan(&remaining, &probe, 0.3));
        assert!(!got.iter().any(|&(id, _)| id == gone.id()));

        index
            .insert_ranking(&gone)
            .expect("re-insert after delete succeeds");
        assert!(index.contains_id(gone.id()));
        let got = index
            .range_query(&probe, 0.3)
            .expect("θ is within the build maximum");
        assert_eq!(got, linear_scan(&data, &probe, 0.3));
    }

    #[test]
    fn compaction_preserves_answers_and_drops_tombstones() {
        let data = corpus();
        let mut index = RankingIndex::build(&data, 0.3).expect("uniform-length corpus builds");
        for r in data.iter().take(120) {
            // Churn: upsert every third, delete every fifth.
            if r.id() % 3 == 0 {
                let spun = Ranking::new_unchecked(r.id(), data[350].items().to_vec());
                index.insert_ranking(&spun).expect("upsert succeeds");
            }
            if r.id() % 5 == 0 {
                index.remove_ranking(r.id());
            }
        }
        assert!(index.tombstone_count() > 0);
        assert!(index.tombstone_ratio() > 0.0);
        let compact = index.compacted().expect("live rankings rebuild cleanly");
        assert_eq!(compact.tombstone_count(), 0);
        assert_eq!(compact.len(), index.len());
        assert_eq!(compact.slot_count(), compact.len());
        for query in data.iter().step_by(43) {
            let a = index
                .range_query(query, 0.3)
                .expect("θ is within the build maximum");
            let b = compact
                .range_query(query, 0.3)
                .expect("θ is within the build maximum");
            assert_eq!(a, b, "compaction changed answers for query {}", query.id());
        }
    }

    #[test]
    fn empty_index() {
        let index = RankingIndex::build(&[], 0.3).expect("empty corpus builds");
        assert!(index.is_empty());
        let q = Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking");
        assert!(index
            .range_query(&q, 0.2)
            .expect("θ is within the build maximum")
            .is_empty());
    }
}
