//! Exact brute-force join — the ground truth every algorithm is tested
//! against.

use std::sync::Arc;
use std::time::Instant;

use minispark::Cluster;
use topk_rankings::distance::raw_threshold;
use topk_rankings::Ranking;

use crate::{JoinError, JoinOutcome};

/// Computes the exact join result by comparing every pair, parallelized over
/// the cluster (each task owns a stripe of `i` indices and scans `j > i`).
///
/// Quadratic — only suitable for validation-scale datasets, which is its
/// purpose.
pub fn brute_force_join(
    cluster: &Cluster,
    data: &[Ranking],
    theta: f64,
) -> Result<JoinOutcome, JoinError> {
    if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
        return Err(JoinError::InvalidThreshold(theta));
    }
    let start = Instant::now();
    let k = crate::pipeline::uniform_k(data)?;
    let Some(k) = k else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta_raw = raw_threshold(k, theta);

    let shared = cluster.broadcast(Arc::new(data.to_vec()));
    let partitions = cluster.config().default_partitions;
    let indices = cluster.parallelize((0..data.len()).collect(), partitions);
    let pairs_ds = indices.flat_map("brute-force/compare", move |&i| {
        let data = shared.value();
        let a = &data[i];
        let mut out = Vec::new();
        for b in &data[i + 1..] {
            if topk_rankings::footrule_within(a, b, theta_raw).is_some() {
                let (x, y) = if a.id() < b.id() {
                    (a.id(), b.id())
                } else {
                    (b.id(), a.id())
                };
                out.push((x, y));
            }
        }
        out
    });
    // Ids are unique per dataset, but be defensive about duplicate inputs.
    let mut pairs = pairs_ds
        .distinct("brute-force/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: crate::stats::StatsSnapshot::default(),
        elapsed: start.elapsed(),
    })
}

/// Computes the exact bipartite (R-S) join result by comparing every
/// cross-relation pair, parallelized over stripes of the left relation.
/// Output pairs are `(left id, right id)`, sorted — no `a < b` ordering is
/// implied because the two id spaces may overlap.
///
/// This is the ground truth the R-S drivers and the arrival-stream joiner
/// are tested against.
pub fn brute_force_join_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    theta: f64,
) -> Result<JoinOutcome, JoinError> {
    if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
        return Err(JoinError::InvalidThreshold(theta));
    }
    let start = Instant::now();
    let Some(k) = crate::pipeline::rs_uniform_k(left, right)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta_raw = raw_threshold(k, theta);

    let shared_right = cluster.broadcast(Arc::new(right.to_vec()));
    let partitions = cluster.config().default_partitions;
    let left_ds = cluster.parallelize(left.to_vec(), partitions);
    let pairs_ds = left_ds.flat_map("brute-force-rs/compare", move |a: &Ranking| {
        let right = shared_right.value();
        let mut out = Vec::new();
        for b in right.iter() {
            if topk_rankings::footrule_within(a, b, theta_raw).is_some() {
                out.push((a.id(), b.id()));
            }
        }
        out
    });
    // Ids are unique within each relation, so cross pairs are already
    // distinct; be defensive anyway, mirroring the self-join baseline.
    let mut pairs = pairs_ds
        .distinct("brute-force-rs/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: crate::stats::StatsSnapshot::default(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minispark::ClusterConfig;
    use topk_rankings::distance::footrule_raw;

    fn r(id: u64, items: &[u32]) -> Ranking {
        Ranking::new(id, items.to_vec()).unwrap()
    }

    #[test]
    fn finds_exactly_the_close_pairs() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![
            r(1, &[1, 2, 3, 4, 5]),
            r(2, &[2, 1, 3, 4, 5]),
            r(3, &[9, 8, 7, 6, 5]),
            r(4, &[1, 2, 3, 4, 5]),
        ];
        // θ = 0.1 → raw 3: pairs (1,2) d=2, (1,4) d=0, (2,4) d=2.
        assert_eq!(footrule_raw(&data[0], &data[1]), 2);
        let outcome = brute_force_join(&cluster, &data, 0.1).unwrap();
        assert_eq!(outcome.pairs, vec![(1, 2), (1, 4), (2, 4)]);
    }

    #[test]
    fn empty_dataset_yields_empty_result() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let outcome = brute_force_join(&cluster, &[], 0.3).unwrap();
        assert!(outcome.pairs.is_empty());
    }

    #[test]
    fn theta_zero_finds_only_duplicates() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![r(1, &[1, 2, 3]), r(2, &[1, 2, 3]), r(3, &[1, 3, 2])];
        let outcome = brute_force_join(&cluster, &data, 0.0).unwrap();
        assert_eq!(outcome.pairs, vec![(1, 2)]);
    }

    #[test]
    fn theta_one_joins_everything() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![r(1, &[1, 2]), r(2, &[3, 4]), r(3, &[5, 6])];
        let outcome = brute_force_join(&cluster, &data, 1.0).unwrap();
        assert_eq!(outcome.pairs.len(), 3);
    }

    #[test]
    fn rejects_invalid_threshold() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        assert!(brute_force_join(&cluster, &[], 1.5).is_err());
        assert!(brute_force_join(&cluster, &[], f64::NAN).is_err());
    }

    #[test]
    fn rejects_duplicate_ids() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![r(1, &[1, 2, 3]), r(1, &[4, 5, 6])];
        assert!(matches!(
            brute_force_join(&cluster, &data, 0.3),
            Err(JoinError::DuplicateRankingId(1))
        ));
    }

    #[test]
    fn rejects_mixed_lengths() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![r(1, &[1, 2, 3]), r(2, &[1, 2])];
        assert!(matches!(
            brute_force_join(&cluster, &data, 0.3),
            Err(JoinError::MixedRankingLengths { .. })
        ));
    }

    #[test]
    fn rs_reference_joins_across_relations_with_overlapping_ids() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        // Ids 1 and 2 exist in BOTH relations — legal for an R-S join.
        let left = vec![r(1, &[1, 2, 3, 4, 5]), r(2, &[9, 8, 7, 6, 5])];
        let right = vec![
            r(1, &[1, 2, 3, 4, 5]), // identical to left 1 → distance 0
            r(2, &[2, 1, 3, 4, 5]), // distance 2 from left 1
            r(7, &[9, 8, 7, 6, 5]), // identical to left 2
        ];
        let outcome = brute_force_join_rs(&cluster, &left, &right, 0.1).unwrap();
        assert_eq!(outcome.pairs, vec![(1, 1), (1, 2), (2, 7)]);
    }

    #[test]
    fn rs_reference_validates_each_relation_separately() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let dup = vec![r(1, &[1, 2, 3]), r(1, &[4, 5, 6])];
        let ok = vec![r(9, &[1, 2, 3])];
        assert!(matches!(
            brute_force_join_rs(&cluster, &dup, &ok, 0.3),
            Err(JoinError::DuplicateRankingId(1))
        ));
        let short = vec![r(5, &[1, 2])];
        assert!(matches!(
            brute_force_join_rs(&cluster, &ok, &short, 0.3),
            Err(JoinError::MixedRankingLengths { .. })
        ));
        // Either side empty → empty result, no error.
        assert!(brute_force_join_rs(&cluster, &ok, &[], 0.3)
            .unwrap()
            .pairs
            .is_empty());
    }
}
