//! The online serving layer: a long-lived ranking-similarity service over
//! the mutable [`RankingIndex`], with WAL durability and an HTTP surface.
//!
//! The batch joins answer the all-pairs question offline; [`ServingIndex`]
//! answers the *point* question online — "which stored rankings are within
//! θ of this one, right now" — while the corpus itself changes underneath
//! (profile updates arrive, members leave). Three layers:
//!
//! * **State** — a [`RankingIndex`] behind an `RwLock`: concurrent readers
//!   (queries) never block each other, writers (upserts/deletes) are
//!   serialized. Tombstone accumulation is bounded by a compaction rebuild
//!   once [`ServingConfig::compact_ratio`] is exceeded.
//! * **Durability** — every mutation is appended to the write-ahead log
//!   ([`crate::wal`]) *before* it is applied in memory, under one mutex, so
//!   the WAL order equals the apply order and a replay converges to the
//!   exact same state. Snapshots run every
//!   [`ServingConfig::snapshot_every`] records and truncate the log.
//! * **Transport** — [`serving_router`] exposes the service over
//!   `minispark`'s zero-dependency HTTP stack: `POST /rankings` (upsert
//!   batch), `DELETE /rankings/{id}`, `GET /query`, `GET /nearest`,
//!   `GET /rankings/{id}`, `GET /stats` and Prometheus `GET /metrics`.
//!
//! **Lock order** (deadlock discipline, same everywhere): the WAL mutex is
//! acquired *first*, the index lock second. Queries take only the index
//! read lock; mutations take the WAL mutex for their whole span so that
//! log append → index apply is atomic with respect to other mutations.

use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

use minispark::{
    Counter, HttpServer, Json, LiveHistogram, Request, Response, Router, TelemetryRegistry,
};
use topk_rankings::distance::max_raw_distance;
use topk_rankings::{ItemId, Ranking, RankingId};

use crate::wal::{WalError, WalRecord, WalStore};
use crate::{JoinError, RankingIndex};

/// Ranking id used for query rankings sent without an explicit `id=`
/// parameter. Range queries exclude self-matches by id, so a stored ranking
/// with this exact id would be invisible to anonymous queries — pick any
/// other id space for stored rankings.
pub const FOREIGN_QUERY_ID: RankingId = RankingId::MAX;

/// Tuning knobs for a serving instance.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Maximum supported query threshold (the index build bound).
    pub theta_max: f64,
    /// Snapshot-and-truncate the WAL after this many logged records.
    /// `0` disables automatic snapshots ([`ServingIndex::snapshot_now`]
    /// still works).
    pub snapshot_every: u64,
    /// Rebuild the index once this fraction of slots are tombstones.
    pub compact_ratio: f64,
}

impl ServingConfig {
    /// Defaults: snapshot every 512 records, compact past 30% tombstones.
    pub fn new(theta_max: f64) -> Self {
        Self {
            theta_max,
            snapshot_every: 512,
            compact_ratio: 0.3,
        }
    }

    /// Overrides the snapshot cadence.
    pub fn with_snapshot_every(mut self, records: u64) -> Self {
        self.snapshot_every = records;
        self
    }

    /// Overrides the compaction trigger ratio.
    pub fn with_compact_ratio(mut self, ratio: f64) -> Self {
        self.compact_ratio = ratio;
        self
    }
}

/// Errors raised by the serving layer.
#[derive(Debug)]
pub enum ServingError {
    /// The request was semantically invalid (bad threshold, mixed ranking
    /// lengths, …).
    Join(JoinError),
    /// The durability layer failed.
    Wal(WalError),
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Join(e) => write!(f, "{e}"),
            ServingError::Wal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServingError {}

impl From<JoinError> for ServingError {
    fn from(e: JoinError) -> Self {
        ServingError::Join(e)
    }
}

impl From<WalError> for ServingError {
    fn from(e: WalError) -> Self {
        ServingError::Wal(e)
    }
}

/// What [`ServingIndex::open`] recovered from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Rankings restored from the snapshot file.
    pub snapshot_rankings: usize,
    /// WAL records applied on top of the snapshot.
    pub wal_records: usize,
    /// Bytes dropped from a torn WAL tail (0 after a clean shutdown).
    pub dropped_bytes: usize,
}

/// Result of one upsert batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpsertOutcome {
    /// Rankings whose id was new to the index.
    pub inserted: usize,
    /// Rankings that replaced an existing live version.
    pub replaced: usize,
}

/// A point-in-time view of the serving state, for `/stats` and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingStats {
    /// Live rankings.
    pub live: usize,
    /// Total slots including tombstones.
    pub slots: usize,
    /// Tombstoned slots awaiting compaction.
    pub tombstones: usize,
    /// `tombstones / slots` (0 while empty).
    pub tombstone_ratio: f64,
    /// The (fixed) ranking length, 0 while empty.
    pub k: usize,
    /// The maximum supported query threshold.
    pub theta_max: f64,
    /// Whether a WAL backs this instance.
    pub durable: bool,
    /// Records logged since the last snapshot (0 when not durable).
    pub wal_records_since_snapshot: u64,
    /// Current WAL size in bytes (0 when not durable).
    pub wal_bytes: u64,
}

/// The serving index: a [`RankingIndex`] with durable, concurrent mutation.
///
/// Cheap to share: wrap in an [`Arc`] and hand clones to the router and any
/// background threads.
pub struct ServingIndex {
    config: ServingConfig,
    /// Lock order: this mutex FIRST, `index` second — everywhere.
    wal: Mutex<Option<WalStore>>,
    index: RwLock<RankingIndex>,
    telemetry: TelemetryRegistry,
    query_seconds: LiveHistogram,
    upsert_seconds: LiveHistogram,
    delete_seconds: LiveHistogram,
    queries: Counter,
    upserts: Counter,
    deletes: Counter,
    compactions: Counter,
    snapshots: Counter,
}

impl ServingIndex {
    fn with_parts(config: ServingConfig, wal: Option<WalStore>, index: RankingIndex) -> Self {
        let telemetry = TelemetryRegistry::enabled();
        Self {
            query_seconds: telemetry.histogram("serving_query_seconds"),
            upsert_seconds: telemetry.histogram("serving_upsert_seconds"),
            delete_seconds: telemetry.histogram("serving_delete_seconds"),
            queries: telemetry.counter("serving_queries_total"),
            upserts: telemetry.counter("serving_upserts_total"),
            deletes: telemetry.counter("serving_deletes_total"),
            compactions: telemetry.counter("serving_compactions_total"),
            snapshots: telemetry.counter("serving_snapshots_total"),
            telemetry,
            config,
            wal: Mutex::new(wal),
            index: RwLock::new(index),
        }
    }

    /// An in-memory-only instance (no WAL, nothing survives a restart).
    /// Useful for tests and benchmarks.
    pub fn ephemeral(config: ServingConfig) -> Result<Self, ServingError> {
        let index = RankingIndex::build(&[], config.theta_max)?;
        Ok(Self::with_parts(config, None, index))
    }

    /// Opens (creating if needed) a durable instance rooted at `dir`,
    /// replaying the snapshot and WAL into memory. After a crash mid-WAL,
    /// the torn tail is dropped (reported in [`ReplayStats`]) and every
    /// intact record is recovered.
    pub fn open(dir: &Path, config: ServingConfig) -> Result<(Self, ReplayStats), ServingError> {
        let (store, replay) = WalStore::open(dir)?;
        let mut index = RankingIndex::build(&replay.snapshot, config.theta_max)?;
        for record in &replay.records {
            apply_record(&mut index, record)?;
        }
        let stats = ReplayStats {
            snapshot_rankings: replay.snapshot.len(),
            wal_records: replay.records.len(),
            dropped_bytes: replay.dropped_bytes,
        };
        Ok((Self::with_parts(config, Some(store), index), stats))
    }

    /// The registry the serving histograms and counters live in — hand it
    /// to a metrics endpoint or scrape it directly.
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.telemetry
    }

    /// Insert-or-replace a batch of rankings as one durable record.
    ///
    /// The whole batch is validated against the index's ranking length
    /// *before* anything is logged or applied, so a rejected batch leaves
    /// both the WAL and the index untouched.
    pub fn upsert_batch(&self, batch: &[Ranking]) -> Result<UpsertOutcome, ServingError> {
        let start = Instant::now();
        // locks(lock order: WAL mutex first, index lock second — everywhere; the guard spans append+apply so WAL order equals apply order)
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        {
            // locks(nested by design: WAL mutex → index read lock is the global lock order; validation must see the state the apply will see)
            let index = self.index.read().unwrap_or_else(PoisonError::into_inner);
            let mut k = (index.k() > 0).then(|| index.k());
            for r in batch {
                match k {
                    Some(expected) if r.k() != expected => {
                        return Err(JoinError::MixedRankingLengths {
                            expected,
                            found: r.k(),
                        }
                        .into());
                    }
                    Some(_) => {}
                    None => k = Some(r.k()),
                }
            }
        }
        if let Some(store) = wal.as_mut() {
            // alloc(the WAL record owns a copy of the batch — one clone per upsert request, the durability boundary)
            store.append(&WalRecord::Upsert(batch.to_vec()))?;
        }
        let mut outcome = UpsertOutcome {
            inserted: 0,
            replaced: 0,
        };
        {
            // locks(nested by design: WAL mutex → index write lock is the global lock order)
            let mut index = self.index.write().unwrap_or_else(PoisonError::into_inner);
            for r in batch {
                if index.contains_id(r.id()) {
                    outcome.replaced += 1;
                } else {
                    outcome.inserted += 1;
                }
                // Cannot fail: lengths were validated above against the
                // same state, and no other writer ran in between (the WAL
                // mutex is still held).
                index.insert_ranking(r)?;
            }
            self.maintain(&mut wal, &mut index)?;
        }
        self.upserts.inc();
        self.upsert_seconds.record_duration(start.elapsed());
        Ok(outcome)
    }

    /// Deletes `id`. Returns whether it was present; absent ids are not
    /// logged (so delete floods of unknown ids cannot grow the WAL).
    pub fn delete(&self, id: RankingId) -> Result<bool, ServingError> {
        let start = Instant::now();
        // locks(lock order: WAL mutex first, index lock second — everywhere; the guard spans append+apply so WAL order equals apply order)
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        // locks(nested by design: WAL mutex → index read lock is the global lock order; temp guard for the presence check)
        let present = self
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_id(id);
        if !present {
            return Ok(false);
        }
        if let Some(store) = wal.as_mut() {
            store.append(&WalRecord::Delete(id))?;
        }
        {
            // locks(nested by design: WAL mutex → index write lock is the global lock order)
            let mut index = self.index.write().unwrap_or_else(PoisonError::into_inner);
            let removed = index.remove_ranking(id);
            debug_assert!(removed, "presence was checked under the same WAL guard");
            self.maintain(&mut wal, &mut index)?;
        }
        self.deletes.inc();
        self.delete_seconds.record_duration(start.elapsed());
        Ok(true)
    }

    /// All stored rankings within normalized Footrule distance `theta` of
    /// `query`, sorted by distance then id. `theta` must be ≤ the build
    /// threshold ([`ServingConfig::theta_max`]).
    pub fn query(&self, query: &Ranking, theta: f64) -> Result<Vec<(u64, u64)>, ServingError> {
        let start = Instant::now();
        let results = self
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .range_query(query, theta)?;
        self.queries.inc();
        self.query_seconds.record_duration(start.elapsed());
        Ok(results)
    }

    /// The `n` nearest stored rankings within `theta_max` of `query` (see
    /// [`RankingIndex::nearest`] for the bound's meaning).
    pub fn nearest(&self, query: &Ranking, n: usize) -> Result<Vec<(u64, u64)>, ServingError> {
        let start = Instant::now();
        let results = self
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .nearest(query, n)?;
        self.queries.inc();
        self.query_seconds.record_duration(start.elapsed());
        Ok(results)
    }

    /// The current live version of `id`, if stored.
    pub fn get(&self, id: RankingId) -> Option<Ranking> {
        self.index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
    }

    /// Number of live rankings.
    pub fn len(&self) -> usize {
        self.index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no live rankings are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent stats snapshot (index and WAL observed under the
    /// mutation lock, so the two never disagree).
    pub fn stats(&self) -> ServingStats {
        // locks(lock order: WAL mutex first, index lock second — stats must observe both consistently)
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        // locks(nested by design: WAL mutex → index read lock is the global lock order)
        let index = self.index.read().unwrap_or_else(PoisonError::into_inner);
        ServingStats {
            live: index.len(),
            slots: index.slot_count(),
            tombstones: index.tombstone_count(),
            tombstone_ratio: index.tombstone_ratio(),
            k: index.k(),
            theta_max: index.theta_max(),
            durable: wal.is_some(),
            wal_records_since_snapshot: wal.as_ref().map_or(0, WalStore::records_since_snapshot),
            wal_bytes: wal.as_ref().map_or(0, WalStore::wal_bytes),
        }
    }

    /// Forces a snapshot-and-truncate cycle now (no-op when not durable).
    pub fn snapshot_now(&self) -> Result<(), ServingError> {
        // locks(lock order: WAL mutex first, index lock second — the snapshot must capture the exact logged state)
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(store) = wal.as_mut() {
            // locks(nested by design: WAL mutex → index read lock is the global lock order)
            let live = self
                .index
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .live_rankings();
            store.snapshot(&live)?;
            self.snapshots.inc();
        }
        Ok(())
    }

    /// Fsyncs the WAL (see [`WalStore::sync`]); no-op when not durable.
    pub fn sync(&self) -> Result<(), ServingError> {
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(store) = wal.as_ref() {
            store.sync()?;
        }
        Ok(())
    }

    /// Compaction + snapshot triggers, run at the end of every mutation
    /// while both guards are still held.
    fn maintain(
        &self,
        wal: &mut Option<WalStore>,
        index: &mut RankingIndex,
    ) -> Result<(), ServingError> {
        if index.tombstone_count() > 0 && index.tombstone_ratio() >= self.config.compact_ratio {
            *index = index.compacted()?;
            self.compactions.inc();
        }
        if let Some(store) = wal.as_mut() {
            if self.config.snapshot_every > 0
                && store.records_since_snapshot() >= self.config.snapshot_every
            {
                store.snapshot(&index.live_rankings())?;
                self.snapshots.inc();
            }
        }
        Ok(())
    }
}

/// Applies one replayed WAL record to the index (replay-time mirror of the
/// live mutation paths).
fn apply_record(index: &mut RankingIndex, record: &WalRecord) -> Result<(), ServingError> {
    match record {
        WalRecord::Upsert(rankings) => {
            for r in rankings {
                index.insert_ranking(r)?;
            }
        }
        WalRecord::Delete(id) => {
            index.remove_ranking(*id);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

fn json_error(status: u16, message: &str) -> Response {
    Response::json(status, &Json::obj().with("error", Json::str(message)))
}

/// Parses one `{"id": .., "items": [..]}` object into a [`Ranking`].
fn ranking_from_json(doc: &Json) -> Result<Ranking, String> {
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("each ranking needs a numeric \"id\"")?;
    let items_json = doc
        .get("items")
        .and_then(Json::as_arr)
        .ok_or("each ranking needs an \"items\" array")?;
    // alloc(per-request body parse buffer)
    let mut items = Vec::with_capacity(items_json.len());
    for v in items_json {
        let item = v
            .as_u64()
            .and_then(|n| ItemId::try_from(n).ok())
            .ok_or("items must be u32 item ids")?;
        items.push(item);
    }
    // alloc(request-rejection error path — not per-record)
    Ranking::new(id, items).map_err(|e| format!("ranking {id}: {e}"))
}

/// Parses the `POST /rankings` body: either a bare array of ranking
/// objects or `{"rankings": [..]}`.
fn batch_from_body(body: &str) -> Result<Vec<Ranking>, String> {
    // alloc(request-rejection error path — not per-record)
    let doc = Json::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
    let arr = match doc.as_arr() {
        Some(arr) => arr,
        None => doc
            .get("rankings")
            .and_then(Json::as_arr)
            .ok_or("body must be a JSON array of rankings or {\"rankings\": [..]}")?,
    };
    // alloc(per-request body parse buffer)
    let mut batch = Vec::with_capacity(arr.len());
    for doc in arr {
        batch.push(ranking_from_json(doc)?);
    }
    Ok(batch)
}

/// Parses a comma-separated item list (`items=3,1,4`) into a query ranking
/// with the given (or anonymous) id.
fn query_ranking(req: &Request) -> Result<Ranking, String> {
    let items_param = req
        .query("items")
        .ok_or("missing \"items\" query parameter (comma-separated item ids)")?;
    // alloc(per-request query parse buffer)
    let items: Result<Vec<ItemId>, _> = items_param.split(',').map(str::parse).collect();
    let items = items.map_err(|e| format!("bad item id in \"items\": {e}"))?;
    let id = match req.query("id") {
        Some(raw) => raw
            .parse::<RankingId>()
            // alloc(request-rejection error path — not per-record)
            .map_err(|e| format!("bad \"id\": {e}"))?,
        None => FOREIGN_QUERY_ID,
    };
    Ranking::new(id, items).map_err(|e| e.to_string())
}

/// Renders `(id, raw distance)` matches with normalized distances.
fn matches_json(results: &[(u64, u64)], k: usize) -> Json {
    let max_raw = max_raw_distance(k);
    let arr = results
        .iter()
        .map(|&(id, d)| {
            // cast(raw Footrule distances fit f64 exactly for any practical k)
            let normalized = if max_raw == 0 {
                0.0
            } else {
                // cast(raw Footrule distances are far below 2^53 — exact in f64)
                d as f64 / max_raw as f64
            };
            Json::obj()
                .with("id", Json::num_u64(id))
                .with("raw_distance", Json::num_u64(d))
                .with("distance", Json::num(normalized))
        })
        // alloc(one response document per request — the render dominates)
        .collect();
    Json::Arr(arr)
}

fn serving_error_response(err: &ServingError) -> Response {
    match err {
        // alloc(error-path formatting only)
        ServingError::Join(e) => json_error(400, &e.to_string()),
        ServingError::Wal(e) => json_error(500, &e.to_string()),
    }
}

fn handle_upsert(service: &ServingIndex, req: &Request) -> Response {
    let Some(body) = req.body_str() else {
        return json_error(400, "body is not UTF-8");
    };
    let batch = match batch_from_body(body) {
        Ok(batch) => batch,
        Err(message) => return json_error(400, &message),
    };
    match service.upsert_batch(&batch) {
        Ok(outcome) => Response::json(
            200,
            &Json::obj()
                .with("inserted", Json::num_usize(outcome.inserted))
                .with("replaced", Json::num_usize(outcome.replaced)),
        ),
        Err(e) => serving_error_response(&e),
    }
}

fn handle_delete(service: &ServingIndex, req: &Request) -> Response {
    let Some(id) = req
        .param("id")
        .and_then(|raw| raw.parse::<RankingId>().ok())
    else {
        return json_error(400, "the path id must be a u64 ranking id");
    };
    match service.delete(id) {
        Ok(true) => Response::json(200, &Json::obj().with("deleted", Json::Bool(true))),
        Ok(false) => json_error(404, "no such ranking id"),
        Err(e) => serving_error_response(&e),
    }
}

fn handle_get(service: &ServingIndex, req: &Request) -> Response {
    let Some(id) = req
        .param("id")
        .and_then(|raw| raw.parse::<RankingId>().ok())
    else {
        return json_error(400, "the path id must be a u64 ranking id");
    };
    match service.get(id) {
        Some(ranking) => {
            // alloc(one response document per request — the render dominates)
            let items = ranking.items().iter().map(|&i| Json::num(i)).collect();
            Response::json(
                200,
                &Json::obj()
                    .with("id", Json::num_u64(ranking.id()))
                    .with("items", Json::Arr(items)),
            )
        }
        None => json_error(404, "no such ranking id"),
    }
}

fn handle_query(service: &ServingIndex, req: &Request) -> Response {
    let Some(theta) = req.query("theta").and_then(|raw| raw.parse::<f64>().ok()) else {
        return json_error(400, "missing or malformed \"theta\" query parameter");
    };
    let query = match query_ranking(req) {
        Ok(q) => q,
        Err(message) => return json_error(400, &message),
    };
    match service.query(&query, theta) {
        Ok(results) => Response::json(
            200,
            &Json::obj()
                .with("theta", Json::num(theta))
                .with("count", Json::num_usize(results.len()))
                .with("matches", matches_json(&results, query.k())),
        ),
        Err(e) => serving_error_response(&e),
    }
}

fn handle_nearest(service: &ServingIndex, req: &Request) -> Response {
    let n = match req.query("n") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            // alloc(request-rejection error path — not per-record)
            Err(e) => return json_error(400, &format!("bad \"n\": {e}")),
        },
        None => 10,
    };
    let query = match query_ranking(req) {
        Ok(q) => q,
        Err(message) => return json_error(400, &message),
    };
    match service.nearest(&query, n) {
        Ok(results) => Response::json(
            200,
            &Json::obj()
                .with("n", Json::num_usize(n))
                .with("count", Json::num_usize(results.len()))
                .with("matches", matches_json(&results, query.k())),
        ),
        Err(e) => serving_error_response(&e),
    }
}

fn handle_stats(service: &ServingIndex) -> Response {
    let stats = service.stats();
    Response::json(
        200,
        &Json::obj()
            .with("live", Json::num_usize(stats.live))
            .with("slots", Json::num_usize(stats.slots))
            .with("tombstones", Json::num_usize(stats.tombstones))
            .with("tombstone_ratio", Json::num(stats.tombstone_ratio))
            .with("k", Json::num_usize(stats.k))
            .with("theta_max", Json::num(stats.theta_max))
            .with("durable", Json::Bool(stats.durable))
            .with(
                "wal_records_since_snapshot",
                Json::num_u64(stats.wal_records_since_snapshot),
            )
            .with("wal_bytes", Json::num_u64(stats.wal_bytes)),
    )
}

/// Builds the serving [`Router`]:
///
/// | Route | Meaning |
/// |---|---|
/// | `POST /rankings` | upsert a JSON batch |
/// | `DELETE /rankings/{id}` | delete one id (404 when absent) |
/// | `GET /rankings/{id}` | fetch the live version of one id |
/// | `GET /query?theta=0.2&items=3,1,4[&id=7]` | θ range query |
/// | `GET /nearest?items=3,1,4[&n=5][&id=7]` | n nearest within θ_max |
/// | `GET /stats` | index + WAL state |
/// | `GET /metrics` | Prometheus exposition of the serving telemetry |
pub fn serving_router(service: Arc<ServingIndex>) -> Router {
    let mut router = Router::new();
    let svc = Arc::clone(&service);
    router.route("POST", "/rankings", move |req| handle_upsert(&svc, req));
    let svc = Arc::clone(&service);
    router.route("DELETE", "/rankings/{id}", move |req| {
        handle_delete(&svc, req)
    });
    let svc = Arc::clone(&service);
    router.route("GET", "/rankings/{id}", move |req| handle_get(&svc, req));
    let svc = Arc::clone(&service);
    router.route("GET", "/query", move |req| handle_query(&svc, req));
    let svc = Arc::clone(&service);
    router.route("GET", "/nearest", move |req| handle_nearest(&svc, req));
    let svc = Arc::clone(&service);
    router.route("GET", "/stats", move |_| handle_stats(&svc));
    let svc = Arc::clone(&service);
    router.route("GET", "/metrics", move |_| {
        Response::with_content_type(
            200,
            "text/plain; version=0.0.4",
            svc.telemetry().snapshot().prometheus(),
        )
    });
    router
}

/// A running serving HTTP server (acceptor + worker pool); stops on drop.
pub struct ServingServer {
    inner: HttpServer,
}

impl ServingServer {
    /// Binds `port` (0 picks an ephemeral port) and serves `service` with
    /// `workers` handler threads.
    pub fn start(port: u16, service: Arc<ServingIndex>, workers: usize) -> std::io::Result<Self> {
        let inner = HttpServer::start(port, serving_router(service), workers)?;
        Ok(Self { inner })
    }

    /// The bound address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.inner.addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "topk-serving-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ranking(id: u64, items: [u32; 5]) -> Ranking {
        Ranking::new(id, items.to_vec()).expect("distinct items")
    }

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn http(addr: std::net::SocketAddr, head: &str, body: Option<&str>) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let payload = body.unwrap_or("");
        let request = format!(
            "{head} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        );
        stream.write_all(request.as_bytes()).expect("write");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read");
        let status: u16 = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = raw
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn upsert_query_delete_round_trip() -> TestResult {
        let service = ServingIndex::ephemeral(ServingConfig::new(0.4))?;
        let outcome = service.upsert_batch(&[
            ranking(1, [1, 2, 3, 4, 5]),
            ranking(2, [2, 1, 3, 4, 5]),
            ranking(3, [9, 8, 7, 6, 5]),
        ])?;
        assert_eq!(outcome.inserted, 3);
        assert_eq!(outcome.replaced, 0);

        let near_one = service.query(&ranking(100, [1, 2, 3, 4, 5]), 0.2)?;
        assert_eq!(near_one.first(), Some(&(1, 0)));
        assert!(near_one.iter().any(|&(id, _)| id == 2));

        assert!(service.delete(1)?);
        assert!(!service.delete(1)?);
        let after = service.query(&ranking(100, [1, 2, 3, 4, 5]), 0.2)?;
        assert!(after.iter().all(|&(id, _)| id != 1));
        assert_eq!(service.len(), 2);
        Ok(())
    }

    #[test]
    fn upsert_replaces_and_counts() -> TestResult {
        let service = ServingIndex::ephemeral(ServingConfig::new(0.4))?;
        service.upsert_batch(&[ranking(7, [1, 2, 3, 4, 5])])?;
        let outcome = service.upsert_batch(&[ranking(7, [9, 8, 7, 6, 5])])?;
        assert_eq!(outcome.replaced, 1);
        assert_eq!(service.len(), 1);
        // The old version never matches.
        let old = service.query(&ranking(100, [1, 2, 3, 4, 5]), 0.1)?;
        assert!(old.is_empty());
        let new = service.query(&ranking(100, [9, 8, 7, 6, 5]), 0.1)?;
        assert_eq!(new, vec![(7, 0)]);
        Ok(())
    }

    #[test]
    fn invalid_batches_touch_nothing() -> TestResult {
        let dir = temp_dir("atomic");
        let (service, _) = ServingIndex::open(&dir, ServingConfig::new(0.4))?;
        service.upsert_batch(&[ranking(1, [1, 2, 3, 4, 5])])?;
        let wal_before = service.stats().wal_records_since_snapshot;
        // Second ranking has the wrong length: whole batch rejected.
        let bad = vec![ranking(2, [2, 1, 3, 4, 5]), Ranking::new(3, vec![1, 2, 3])?];
        let err = service.upsert_batch(&bad).expect_err("mixed lengths");
        assert!(matches!(
            err,
            ServingError::Join(JoinError::MixedRankingLengths { .. })
        ));
        assert_eq!(service.len(), 1);
        assert!(service.get(2).is_none());
        assert_eq!(service.stats().wal_records_since_snapshot, wal_before);
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn restart_replays_to_the_same_state() -> TestResult {
        let dir = temp_dir("restart");
        let config = ServingConfig::new(0.4).with_snapshot_every(3);
        {
            let (service, replay) = ServingIndex::open(&dir, config.clone())?;
            assert_eq!(
                replay,
                ReplayStats {
                    snapshot_rankings: 0,
                    wal_records: 0,
                    dropped_bytes: 0
                }
            );
            service.upsert_batch(&[ranking(1, [1, 2, 3, 4, 5]), ranking(2, [2, 1, 3, 4, 5])])?;
            service.upsert_batch(&[ranking(3, [9, 8, 7, 6, 5])])?;
            service.delete(2)?;
            // snapshot_every=3 has triggered by now; keep writing past it.
            service.upsert_batch(&[ranking(1, [5, 4, 3, 2, 1])])?;
        }
        let (service, replay) = ServingIndex::open(&dir, config)?;
        assert!(replay.snapshot_rankings > 0 || replay.wal_records > 0);
        assert_eq!(service.len(), 2);
        assert_eq!(service.get(1), Some(ranking(1, [5, 4, 3, 2, 1])));
        assert_eq!(service.get(2), None);
        assert_eq!(service.get(3), Some(ranking(3, [9, 8, 7, 6, 5])));
        fs::remove_dir_all(&dir)?;
        Ok(())
    }

    #[test]
    fn compaction_triggers_past_the_ratio() -> TestResult {
        let service = ServingIndex::ephemeral(
            ServingConfig::new(0.4)
                .with_compact_ratio(0.5)
                .with_snapshot_every(0),
        )?;
        for id in 0..10u64 {
            // cast(test ids fit u32)
            let first = id as u32 * 10;
            service.upsert_batch(&[Ranking::new(id, (first..first + 5).collect())?])?;
        }
        for id in 0..5u64 {
            service.delete(id)?;
        }
        let stats = service.stats();
        // 5 of 15 slots would be tombstones without compaction; the 0.5
        // trigger fired along the way and rebuilt.
        assert!(stats.tombstone_ratio < 0.5, "{stats:?}");
        assert_eq!(stats.live, 5);
        Ok(())
    }

    #[test]
    fn http_surface_round_trips() -> TestResult {
        let service = Arc::new(ServingIndex::ephemeral(ServingConfig::new(0.4))?);
        let server = ServingServer::start(0, Arc::clone(&service), 2)?;
        let addr = server.addr();

        let (status, body) = http(
            addr,
            "POST /rankings",
            Some(r#"[{"id": 1, "items": [1, 2, 3, 4, 5]}, {"id": 2, "items": [2, 1, 3, 4, 5]}]"#),
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"inserted\":2"), "{body}");

        let (status, body) = http(addr, "GET /query?theta=0.2&items=1,2,3,4,5", None);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"id\":1"), "{body}");

        let (status, body) = http(addr, "GET /rankings/2", None);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"items\""), "{body}");

        let (status, _) = http(addr, "DELETE /rankings/2", None);
        assert_eq!(status, 200);
        let (status, _) = http(addr, "DELETE /rankings/2", None);
        assert_eq!(status, 404);

        let (status, body) = http(addr, "GET /nearest?items=1,2,3,4,5&n=1", None);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"count\":1"), "{body}");

        let (status, body) = http(addr, "GET /stats", None);
        assert_eq!(status, 200);
        assert!(body.contains("\"live\":1"), "{body}");

        let (status, body) = http(addr, "GET /metrics", None);
        assert_eq!(status, 200);
        assert!(body.contains("serving_upserts_total"), "{body}");

        // Malformed inputs are 400s, not panics.
        let (status, _) = http(addr, "POST /rankings", Some("not json"));
        assert_eq!(status, 400);
        let (status, _) = http(addr, "GET /query?theta=abc&items=1,2,3,4,5", None);
        assert_eq!(status, 400);
        let (status, _) = http(addr, "GET /query?theta=0.2&items=1,1,1", None);
        assert_eq!(status, 400);
        let (status, _) = http(addr, "DELETE /rankings/not-a-number", None);
        assert_eq!(status, 400);
        Ok(())
    }

    #[test]
    fn query_theta_above_build_bound_is_rejected() -> TestResult {
        let service = ServingIndex::ephemeral(ServingConfig::new(0.2))?;
        service.upsert_batch(&[ranking(1, [1, 2, 3, 4, 5])])?;
        let err = service
            .query(&ranking(100, [1, 2, 3, 4, 5]), 0.9)
            .expect_err("θ beyond theta_max");
        assert!(matches!(
            err,
            ServingError::Join(JoinError::InvalidThreshold(_))
        ));
        Ok(())
    }
}
