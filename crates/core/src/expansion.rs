//! The *Expansion* phase (Algorithm 2, §5.3): turns centroid-level join
//! results back into ranking-level results.
//!
//! * Pairs of **singleton** centroids are results as-is (both sides are the
//!   actual rankings); more generally any centroid pair within θ is emitted
//!   directly.
//! * Pairs with a non-singleton side are joined with the cluster table so
//!   that members meet the other centroid (`R_m,c`) and, when both sides
//!   have members, each other (`R_m,m`).
//! * The metric's triangle inequality prunes and accepts candidates before
//!   any distance computation: for a candidate `(τi, cj)` with known
//!   `d(τi, ci) = dᵢ` and `d(ci, cj) = d`, it holds that
//!   `|d − dᵢ| ≤ d(τi, cj) ≤ d + dᵢ`, so the pair is discarded when
//!   `|d − dᵢ| > θ` and accepted unverified when `d + dᵢ ≤ θ`. Member-member
//!   candidates use the three-term analogue.

use std::sync::Arc;

use minispark::Dataset;
use topk_rankings::OrderedRanking;

use crate::pipeline::PairHit;
use crate::stats::JoinStats;

pub(crate) use crate::clustering::ClusterTable;

type MmJoinRow = (u64, ((u64, u64), Vec<(Arc<OrderedRanking>, u64)>));

type Members = Vec<(Arc<OrderedRanking>, u64)>;

/// Rekeys an `R_j ⋈ clusters` row by the pair's second centroid so the
/// second join can attach that side's members (Algorithm 2's transformation
/// "so that the second centroid is set as key of the tuples").
fn rekey_by_second_centroid((_, ((b_id, d), members_a)): &MmJoinRow) -> (u64, (u64, Members)) {
    (*b_id, (*d, members_a.clone()))
}

#[inline]
fn ordered_pair(x: u64, y: u64) -> (u64, u64) {
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

/// Decides one expansion candidate with known centroid-path length
/// `path = Σ known legs` and lower bound `lower`: triangle-prune,
/// triangle-accept, or verify.
#[inline]
fn decide(
    a: &Arc<OrderedRanking>,
    b: &Arc<OrderedRanking>,
    lower: u64,
    path: u64,
    theta_raw: u64,
    use_triangle_bounds: bool,
    stats: &JoinStats,
) -> bool {
    if use_triangle_bounds {
        if lower > theta_raw {
            JoinStats::bump(&stats.triangle_pruned);
            return false;
        }
        if path <= theta_raw {
            JoinStats::bump(&stats.triangle_accepted);
            return true;
        }
    }
    JoinStats::bump(&stats.candidates);
    JoinStats::bump(&stats.verified);
    if a.footrule_within(b, theta_raw).is_some() {
        JoinStats::bump(&stats.result_pairs);
        true
    } else {
        false
    }
}

/// Expands the centroid-join result `cjoin` against the cluster table,
/// returning all ranking-level result pairs contributed by this phase
/// (duplicates possible; the caller runs the final `distinct`).
pub fn expansion(
    cjoin: &Dataset<PairHit>,
    clusters: &ClusterTable,
    theta_raw: u64,
    use_triangle_bounds: bool,
    partitions: usize,
    stats: &Arc<JoinStats>,
) -> Dataset<(u64, u64)> {
    // Centroid pairs within θ are results themselves (this covers all of
    // R_s — singleton pairs are verified against θ — plus close centroid
    // pairs of the other types).
    let direct = cjoin
        .filter("cl/expand/direct", move |hit: &PairHit| {
            hit.distance <= theta_raw
        })
        .map("cl/expand/direct-ids", super::pipeline::PairHit::ids);

    // R_m: pairs with at least one non-singleton side.
    let rm = cjoin.filter("cl/expand/rm", |hit: &PairHit| {
        !(hit.a_singleton && hit.b_singleton)
    });

    // R_m,c: members of each non-singleton side against the other centroid.
    let member_vs_centroid = {
        let by_centroid = rm.flat_map("cl/expand/key-by-centroid", |hit: &PairHit| {
            let mut out = Vec::with_capacity(2);
            if !hit.a_singleton {
                out.push((hit.a.id(), (Arc::clone(&hit.b), hit.distance)));
            }
            if !hit.b_singleton {
                out.push((hit.b.id(), (Arc::clone(&hit.a), hit.distance)));
            }
            out
        });
        let joined = by_centroid.join("cl/expand/join-clusters", clusters, partitions);
        let stats = Arc::clone(stats);
        joined.flat_map(
            "cl/expand/member-centroid",
            move |(_, ((other, d), members))| {
                let mut out = Vec::new();
                for (member, d_i) in members {
                    if member.id() == other.id() {
                        continue;
                    }
                    if decide(
                        member,
                        other,
                        d.abs_diff(*d_i),
                        d + d_i,
                        theta_raw,
                        use_triangle_bounds,
                        &stats,
                    ) {
                        out.push(ordered_pair(member.id(), other.id()));
                    }
                }
                out
            },
        )
    };

    // R_m,m: member × member across two non-singleton clusters.
    let member_vs_member = {
        let both_m = rm
            .filter("cl/expand/both-m", |hit: &PairHit| {
                !hit.a_singleton && !hit.b_singleton
            })
            .map("cl/expand/key-mm", |hit: &PairHit| {
                (hit.a.id(), (hit.b.id(), hit.distance))
            });
        let with_a_members = both_m
            .join("cl/expand/join-a-members", clusters, partitions)
            .map("cl/expand/rekey-by-b", rekey_by_second_centroid);
        let with_both = with_a_members.join("cl/expand/join-b-members", clusters, partitions);
        let stats = Arc::clone(stats);
        with_both.flat_map(
            "cl/expand/member-member",
            move |(_, ((d, members_a), members_b))| {
                let mut out = Vec::new();
                for (ma, d_a) in members_a {
                    for (mb, d_b) in members_b {
                        if ma.id() == mb.id() {
                            continue;
                        }
                        // d(ma, mb) ≥ max(d − dₐ − d_b, dₐ − d − d_b, d_b − d − dₐ).
                        let lower = d
                            .saturating_sub(d_a + d_b)
                            .max(d_a.saturating_sub(d + d_b))
                            .max(d_b.saturating_sub(d + d_a));
                        if decide(
                            ma,
                            mb,
                            lower,
                            d + d_a + d_b,
                            theta_raw,
                            use_triangle_bounds,
                            &stats,
                        ) {
                            out.push(ordered_pair(ma.id(), mb.id()));
                        }
                    }
                }
                out
            },
        )
    };

    direct.union(&member_vs_centroid).union(&member_vs_member)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minispark::{Cluster, ClusterConfig};
    use topk_rankings::{FrequencyTable, Ranking, Relation};

    fn ranking(id: u64, items: &[u32]) -> Arc<OrderedRanking> {
        let r = Ranking::new(id, items.to_vec()).unwrap();
        Arc::new(OrderedRanking::by_frequency(&r, &FrequencyTable::default()))
    }

    fn hit(
        a: &Arc<OrderedRanking>,
        b: &Arc<OrderedRanking>,
        a_singleton: bool,
        b_singleton: bool,
    ) -> PairHit {
        let d = a.footrule_raw(b);
        let (a, b, a_singleton, b_singleton) = if a.id() < b.id() {
            (Arc::clone(a), Arc::clone(b), a_singleton, b_singleton)
        } else {
            (Arc::clone(b), Arc::clone(a), b_singleton, a_singleton)
        };
        PairHit {
            a,
            b,
            distance: d,
            a_singleton,
            b_singleton,
            a_relation: Relation::Left,
            b_relation: Relation::Left,
        }
    }

    /// Two clusters with one member each, plus a singleton.
    /// c1 = τ1, member τ2 (d = 2); c3 = τ3, member τ4 (d = 2); singleton τ9.
    struct Fixture {
        cluster: Cluster,
        cjoin: Dataset<PairHit>,
        clusters: ClusterTable,
        theta_raw: u64,
    }

    fn fixture() -> Fixture {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let t1 = ranking(1, &[1, 2, 3, 4, 5]);
        let t2 = ranking(2, &[2, 1, 3, 4, 5]);
        let t3 = ranking(3, &[1, 2, 3, 5, 4]);
        let t4 = ranking(4, &[2, 1, 3, 5, 4]);
        let t9 = ranking(9, &[1, 2, 3, 4, 9]);
        let cjoin = cluster.parallelize(
            vec![
                hit(&t1, &t3, false, false),
                hit(&t1, &t9, false, true),
                hit(&t3, &t9, false, true),
            ],
            2,
        );
        let clusters = cluster.parallelize(
            vec![
                (1u64, vec![(Arc::clone(&t2), 2u64)]),
                (3u64, vec![(Arc::clone(&t4), 2u64)]),
            ],
            2,
        );
        Fixture {
            cluster,
            cjoin,
            clusters,
            theta_raw: 6, // θ = 0.2 on k = 5
        }
    }

    #[test]
    fn expansion_produces_all_cross_cluster_pairs() {
        let f = fixture();
        let stats = Arc::new(JoinStats::default());
        let mut pairs = expansion(&f.cjoin, &f.clusters, f.theta_raw, true, 4, &stats)
            .distinct("dedup", 4)
            .collect();
        pairs.sort();
        // Direct centroid pairs: (1,3) d=2, (1,9) d=2, (3,9) d=4.
        // Member expansions (all within θ_raw = 6): (2,3), (2,9), (1,4),
        // (4,9), and member-member (2,4). Within-cluster pairs such as
        // (1,2) and (3,4) are the clustering phase's job and must NOT
        // appear here.
        assert_eq!(
            pairs,
            vec![
                (1, 3),
                (1, 4),
                (1, 9),
                (2, 3),
                (2, 4),
                (2, 9),
                (3, 9),
                (4, 9)
            ]
        );
        let _ = f.cluster;
    }

    #[test]
    fn triangle_bounds_fire() {
        let f = fixture();
        let stats = Arc::new(JoinStats::default());
        let _ = expansion(&f.cjoin, &f.clusters, f.theta_raw, true, 4, &stats).collect();
        let snap = stats.snapshot();
        // d + dᵢ ≤ θ holds for e.g. (member τ2, centroid τ3): 2 + 2 ≤ 6.
        assert!(
            snap.triangle_accepted > 0,
            "no triangle acceptances: {snap}"
        );
    }

    #[test]
    fn triangle_pruning_discards_far_members() {
        // Member far from its centroid's partner: d(c1,c3) small but the
        // member sits at distance where |d − dᵢ| > θ.
        let cluster = Cluster::new(ClusterConfig::local(2));
        let c1 = ranking(1, &[1, 2, 3, 4, 5]);
        let c3 = ranking(3, &[2, 1, 3, 4, 5]);
        let far = ranking(2, &[11, 12, 13, 14, 15]);
        let cjoin = cluster.parallelize(vec![hit(&c1, &c3, false, true)], 1);
        // Fake a cluster table claiming τ2 is a member at distance 29 —
        // |2 − 29| = 27 > 6 → pruned without verification.
        let clusters = cluster.parallelize(vec![(1u64, vec![(far, 29u64)])], 1);
        let stats = Arc::new(JoinStats::default());
        let pairs = expansion(&cjoin, &clusters, 6, true, 2, &stats).collect();
        assert_eq!(pairs, vec![(1, 3)], "direct (1,3), nothing from members");
        let snap = stats.snapshot();
        assert_eq!(snap.triangle_pruned, 1);
        assert_eq!(snap.verified, 0);
    }
}
