//! Similarity join over **variable-length** rankings — footnote 1 of the
//! paper, implemented: "For handling variable-length rankings, only the
//! length boundaries for the Footrule distance, given a distance threshold,
//! need to be computed."
//!
//! The thresholds here are **raw** Footrule distances: with mixed lengths
//! there is no single `k(k+1)` normalizer, so the caller states the absolute
//! distance budget directly. The join uses:
//!
//! * per-length **prefixes** ([`topk_rankings::varlen::prefix_len_var`]):
//!   each ranking indexes a prefix long enough for its loosest possible
//!   partner length in the dataset,
//! * the **length filter**: a pair whose length gap alone implies a
//!   distance above the threshold is pruned before any content comparison,
//! * the **position filter** for same-length pairs only (its rank-sum
//!   cancellation argument needs equal lengths),
//! * early-exit Footrule verification (which supports mixed lengths with
//!   each side's own artificial rank).
//!
//! Only the flat prefix join is offered for variable lengths: the Footrule
//! adaptation loses identity-of-indiscernibles across lengths (a length-k
//! ranking and its length-(k+1) extension are at distance 0), so the
//! cluster-based pipeline's metric reasoning would need separate treatment.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use minispark::{Cluster, SkewBudget};
use topk_rankings::bounds::position_filter_prunes;
use topk_rankings::varlen::{min_distance_given_lengths, min_overlap_var, prefix_len_var};
use topk_rankings::{FrequencyTable, ItemId, OrderedRanking, Ranking, Relation};

use crate::stats::JoinStats;
use crate::{JoinError, JoinOutcome};

type Record = Arc<OrderedRanking>;
type Entry = (u16, Record);

/// Self-join within one group (or one chunk of a split group): every
/// unordered member pair through the per-pair kernel.
fn all_pairs<F>(members: &[Entry], pair_of: &F) -> Vec<(u64, u64)>
where
    F: Fn(&Entry, &Entry) -> Option<(u64, u64)>,
{
    let mut out = Vec::new();
    for i in 0..members.len() {
        for j in (i + 1)..members.len() {
            if let Some(pair) = pair_of(&members[i], &members[j]) {
                out.push(pair);
            }
        }
    }
    out
}

/// Prefix-filtered similarity join over rankings of arbitrary (mixed)
/// lengths at a **raw** Footrule threshold.
pub fn varlen_join(
    cluster: &Cluster,
    data: &[Ranking],
    theta_raw: u64,
    partitions: usize,
) -> Result<JoinOutcome, JoinError> {
    varlen_join_with_skew(cluster, data, theta_raw, partitions, SkewBudget::Off)
}

/// [`varlen_join`] with opt-in skew handling: under a [`SkewBudget`] other
/// than `Off`, oversized token groups are split into ≤-budget sub-partitions
/// joined per chunk and per chunk pair (see [`minispark::skew`]).
pub fn varlen_join_with_skew(
    cluster: &Cluster,
    data: &[Ranking],
    theta_raw: u64,
    partitions: usize,
    skew: SkewBudget,
) -> Result<JoinOutcome, JoinError> {
    let start = Instant::now();
    if data.is_empty() {
        return Ok(JoinOutcome::empty(start.elapsed()));
    }
    let mut ids = std::collections::HashSet::with_capacity(data.len());
    for r in data {
        if !ids.insert(r.id()) {
            return Err(JoinError::DuplicateRankingId(r.id()));
        }
    }
    let partitions = if partitions == 0 {
        cluster.config().default_partitions.max(1)
    } else {
        partitions
    };
    let stats = Arc::new(JoinStats::default());

    // Phase spans label Ordering → Joining → Dedup on the trace timeline
    // (no-ops unless the cluster records a trace).
    let run_span = cluster.trace().span("varlen/run");
    let phase = cluster.trace().span("varlen/phase/ordering");

    // Distinct lengths present (small driver-side metadata).
    let lengths: Vec<usize> = data
        .iter()
        .map(Ranking::k)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Are disjoint pairs admissible for any length combination?
    let disjoint_possible = lengths.iter().any(|&ka| {
        lengths
            .iter()
            .any(|&kb| min_overlap_var(ka, kb, theta_raw) == Some(0))
    });
    let prefix_of: std::collections::HashMap<usize, usize> = lengths
        .iter()
        .map(|&k| (k, prefix_len_var(k, &lengths, theta_raw)))
        .collect();
    let prefix_of = cluster.broadcast(prefix_of);

    // Ordering (mixed lengths are fine — each ranking is canonicalized on
    // its own items).
    let ds = cluster.parallelize(data.to_vec(), partitions);
    let counts = ds
        .flat_map("varlen/freq-emit", |r: &Ranking| {
            r.items()
                .iter()
                .map(|&item| (item, 1u64))
                .collect::<Vec<_>>()
        })
        .reduce_by_key("varlen/freq-count", partitions, |a, b| a + b)
        .collect();
    let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
    let ordered = ds.map("varlen/order", move |r| {
        Arc::new(OrderedRanking::by_frequency(r, freq.value()))
    });

    drop(phase);

    // Prefix emission with per-length prefixes (+ sentinel routing when
    // disjoint pairs qualify).
    let phase = cluster.trace().span("varlen/phase/joining");
    let emitted = {
        let prefix_of = prefix_of.clone();
        ordered.flat_map("varlen/emit-prefixes", move |r: &Record| {
            let p = prefix_of.value()[&r.k()];
            let mut out: Vec<(ItemId, (u16, Record))> = r
                .prefix(p)
                .iter()
                .map(|&(item, rank)| (item, (rank, Arc::clone(r))))
                .collect();
            if disjoint_possible {
                out.push((ItemId::MAX, (0, Arc::clone(r))));
            }
            out
        })
    };

    // The per-pair kernel: length filter, equal-length position filter,
    // early-exit verification.
    let pair_of = {
        let stats = Arc::clone(&stats);
        move |x: &(u16, Record), y: &(u16, Record)| -> Option<(u64, u64)> {
            let (ra, a) = x;
            let (rb, b) = y;
            if a.id() == b.id() {
                return None;
            }
            JoinStats::bump(&stats.candidates);
            // Length filter.
            if min_distance_given_lengths(a.k(), b.k()) > theta_raw {
                JoinStats::bump(&stats.triangle_pruned);
                return None;
            }
            // Position filter — valid for equal lengths only.
            if a.k() == b.k()
                && position_filter_prunes(usize::from(*ra), usize::from(*rb), theta_raw)
            {
                JoinStats::bump(&stats.position_pruned);
                return None;
            }
            JoinStats::bump(&stats.verified);
            a.footrule_within(b, theta_raw).map(|_| {
                JoinStats::bump(&stats.result_pairs);
                if a.id() < b.id() {
                    (a.id(), b.id())
                } else {
                    (b.id(), a.id())
                }
            })
        }
    };
    let delta = skew.resolve(&emitted, "varlen");
    let grouped = emitted.group_by_key("varlen/group-by-token", partitions);
    let pairs_ds = match delta {
        None => {
            let pair_of = pair_of.clone();
            grouped.flat_map("varlen/join-groups", move |(_, members)| {
                all_pairs(members, &pair_of)
            })
        }
        Some(budget) => {
            let (hits, split) = minispark::skew::split_grouped_join(
                &grouped,
                budget,
                partitions,
                "varlen",
                |_token, members: &[(u16, Record)]| all_pairs(members, &pair_of),
                |_token, left: &[(u16, Record)], right: &[(u16, Record)]| {
                    let mut out = Vec::new();
                    for a in left {
                        for b in right {
                            if let Some(pair) = pair_of(a, b) {
                                out.push(pair);
                            }
                        }
                    }
                    out
                },
            );
            JoinStats::add(&stats.posting_lists_split, split.groups_split);
            JoinStats::add(&stats.rs_joins, split.rs_joins);
            JoinStats::add(&stats.skew_chunks, split.chunks);
            JoinStats::add(&stats.skew_steals, split.stolen_tasks);
            hits
        }
    };

    drop(phase);

    let phase = cluster.trace().span("varlen/phase/dedup");
    let mut pairs = pairs_ds.distinct("varlen/distinct", partitions).collect();
    pairs.sort_unstable();
    drop(phase);
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// A prefix-emitted member of the bipartite varlen join: the token's rank in
/// the owning ranking, the ranking itself, and its source relation.
type RsEntry = (u16, Record, Relation);
/// A candidate filter over two R-S entries, yielding the oriented pair.
type RsPairOf<'a> = &'a dyn Fn(&RsEntry, &RsEntry) -> Option<(u64, u64)>;

/// [`varlen_join`] over **two relations** (R-S join) at a raw threshold.
///
/// Records keep their source [`Relation`] through prefix emission; the
/// per-token kernel joins cross-relation pairs only (length filter,
/// equal-length position filter, early-exit verification) and always leads
/// with the left record, so pairs are `(left id, right id)`, sorted — id
/// spaces may overlap. Lengths, per-length prefixes and the frequency order
/// are computed over R ∪ S so both relations share one canonical order.
pub fn varlen_join_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    theta_raw: u64,
    partitions: usize,
) -> Result<JoinOutcome, JoinError> {
    varlen_join_rs_with_skew(cluster, left, right, theta_raw, partitions, SkewBudget::Off)
}

/// [`varlen_join_rs`] with opt-in skew handling for hot token groups.
pub fn varlen_join_rs_with_skew(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    theta_raw: u64,
    partitions: usize,
    skew: SkewBudget,
) -> Result<JoinOutcome, JoinError> {
    let start = Instant::now();
    if left.is_empty() || right.is_empty() {
        return Ok(JoinOutcome::empty(start.elapsed()));
    }
    // Ids must be unique within each relation; across relations they may
    // collide (that is the point of carrying the relation tag).
    for relation in [left, right] {
        let mut ids = std::collections::HashSet::with_capacity(relation.len());
        for r in relation {
            if !ids.insert(r.id()) {
                return Err(JoinError::DuplicateRankingId(r.id()));
            }
        }
    }
    let partitions = if partitions == 0 {
        cluster.config().default_partitions.max(1)
    } else {
        partitions
    };
    let stats = Arc::new(JoinStats::default());

    let run_span = cluster.trace().span("varlen-rs/run");
    let phase = cluster.trace().span("varlen-rs/phase/ordering");

    // Union-wide length metadata: a left ranking's loosest partner length
    // may only exist in the right relation, so prefixes must be computed
    // against the lengths of both.
    let lengths: Vec<usize> = left
        .iter()
        .chain(right.iter())
        .map(Ranking::k)
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let disjoint_possible = lengths.iter().any(|&ka| {
        lengths
            .iter()
            .any(|&kb| min_overlap_var(ka, kb, theta_raw) == Some(0))
    });
    let prefix_of: std::collections::HashMap<usize, usize> = lengths
        .iter()
        .map(|&k| (k, prefix_len_var(k, &lengths, theta_raw)))
        .collect();
    let prefix_of = cluster.broadcast(prefix_of);

    // One frequency order counted over R ∪ S (shared canonical order is a
    // prerequisite of prefix-filter completeness across relations).
    let left_ds = cluster.parallelize(left.to_vec(), partitions);
    let right_ds = cluster.parallelize(right.to_vec(), partitions);
    let counts = left_ds
        .union(&right_ds)
        .flat_map("varlen-rs/freq-emit", |r: &Ranking| {
            r.items()
                .iter()
                .map(|&item| (item, 1u64))
                .collect::<Vec<_>>()
        })
        .reduce_by_key("varlen-rs/freq-count", partitions, |a, b| a + b)
        .collect();
    let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
    let freq_r = freq.clone();
    let ordered_left = left_ds.map("varlen-rs/order-left", move |r| {
        Arc::new(OrderedRanking::by_frequency(r, freq.value()))
    });
    let ordered_right = right_ds.map("varlen-rs/order-right", move |r| {
        Arc::new(OrderedRanking::by_frequency(r, freq_r.value()))
    });

    drop(phase);

    let phase = cluster.trace().span("varlen-rs/phase/joining");
    let emit = |ds: &minispark::Dataset<Record>, relation: Relation, label: &str| {
        let prefix_of = prefix_of.clone();
        ds.flat_map(label, move |r: &Record| {
            let p = prefix_of.value()[&r.k()];
            let mut out: Vec<(ItemId, RsEntry)> = r
                .prefix(p)
                .iter()
                .map(|&(item, rank)| (item, (rank, Arc::clone(r), relation)))
                .collect();
            if disjoint_possible {
                out.push((ItemId::MAX, (0, Arc::clone(r), relation)));
            }
            out
        })
    };
    let emitted = emit(&ordered_left, Relation::Left, "varlen-rs/emit-left").union(&emit(
        &ordered_right,
        Relation::Right,
        "varlen-rs/emit-right",
    ));

    let pair_of = {
        let stats = Arc::clone(&stats);
        move |x: &RsEntry, y: &RsEntry| -> Option<(u64, u64)> {
            // Same-relation pairs are skipped before the candidates counter
            // so kernel stats agree between split and unsplit runs.
            if x.2 == y.2 {
                return None;
            }
            let ((ra, a, _), (rb, b, _)) = if x.2 == Relation::Left {
                (x, y)
            } else {
                (y, x)
            };
            JoinStats::bump(&stats.candidates);
            if min_distance_given_lengths(a.k(), b.k()) > theta_raw {
                JoinStats::bump(&stats.triangle_pruned);
                return None;
            }
            if a.k() == b.k()
                && position_filter_prunes(usize::from(*ra), usize::from(*rb), theta_raw)
            {
                JoinStats::bump(&stats.position_pruned);
                return None;
            }
            JoinStats::bump(&stats.verified);
            a.footrule_within(b, theta_raw).map(|_| {
                JoinStats::bump(&stats.result_pairs);
                (a.id(), b.id())
            })
        }
    };
    let rs_all_pairs = |members: &[RsEntry], pair_of: RsPairOf| {
        let mut out = Vec::new();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if let Some(pair) = pair_of(&members[i], &members[j]) {
                    out.push(pair);
                }
            }
        }
        out
    };
    let delta = skew.resolve(&emitted, "varlen-rs");
    let grouped = emitted.group_by_key("varlen-rs/group-by-token", partitions);
    let pairs_ds = match delta {
        None => {
            let pair_of = pair_of.clone();
            grouped.flat_map("varlen-rs/join-groups", move |(_, members)| {
                rs_all_pairs(members, &pair_of)
            })
        }
        Some(budget) => {
            let (hits, split) = minispark::skew::split_grouped_join(
                &grouped,
                budget,
                partitions,
                "varlen-rs",
                |_token, members: &[RsEntry]| rs_all_pairs(members, &pair_of),
                |_token, chunk_a: &[RsEntry], chunk_b: &[RsEntry]| {
                    // Chunks of a split group mix both relations; the
                    // relation-aware kernel keeps only cross pairs.
                    let mut out = Vec::new();
                    for a in chunk_a {
                        for b in chunk_b {
                            if let Some(pair) = pair_of(a, b) {
                                out.push(pair);
                            }
                        }
                    }
                    out
                },
            );
            JoinStats::add(&stats.posting_lists_split, split.groups_split);
            JoinStats::add(&stats.rs_joins, split.rs_joins);
            JoinStats::add(&stats.skew_chunks, split.chunks);
            JoinStats::add(&stats.skew_steals, split.stolen_tasks);
            hits
        }
    };

    drop(phase);

    let phase = cluster.trace().span("varlen-rs/phase/dedup");
    let mut pairs = pairs_ds
        .distinct("varlen-rs/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    drop(phase);
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// Exact quadratic R-S baseline at a raw threshold, for mixed-length
/// relations. Pairs are `(left id, right id)`, sorted.
pub fn varlen_brute_force_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    theta_raw: u64,
) -> Result<JoinOutcome, JoinError> {
    let start = Instant::now();
    let shared_right = cluster.broadcast(Arc::new(right.to_vec()));
    let partitions = cluster.config().default_partitions;
    let left_ds = cluster.parallelize(left.to_vec(), partitions);
    let pairs_ds = left_ds.flat_map("varlen-bf-rs/compare", move |a: &Ranking| {
        let right = shared_right.value();
        let mut out = Vec::new();
        for b in right.iter() {
            if topk_rankings::footrule_within(a, b, theta_raw).is_some() {
                out.push((a.id(), b.id()));
            }
        }
        out
    });
    let mut pairs = pairs_ds
        .distinct("varlen-bf-rs/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: crate::stats::StatsSnapshot::default(),
        elapsed: start.elapsed(),
    })
}

/// Exact quadratic baseline at a raw threshold, for mixed-length datasets.
pub fn varlen_brute_force(
    cluster: &Cluster,
    data: &[Ranking],
    theta_raw: u64,
) -> Result<JoinOutcome, JoinError> {
    let start = Instant::now();
    let shared = cluster.broadcast(Arc::new(data.to_vec()));
    let partitions = cluster.config().default_partitions;
    let indices = cluster.parallelize((0..data.len()).collect(), partitions);
    let pairs_ds = indices.flat_map("varlen-bf/compare", move |&i| {
        let data = shared.value();
        let a = &data[i];
        let mut out = Vec::new();
        for b in &data[i + 1..] {
            if topk_rankings::footrule_within(a, b, theta_raw).is_some() {
                let (x, y) = if a.id() < b.id() {
                    (a.id(), b.id())
                } else {
                    (b.id(), a.id())
                };
                out.push((x, y));
            }
        }
        out
    });
    let mut pairs = pairs_ds
        .distinct("varlen-bf/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: crate::stats::StatsSnapshot::default(),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minispark::ClusterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use topk_datagen::CorpusProfile;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4).with_default_partitions(8))
    }

    /// A mixed-length corpus: k ∈ {5, 8, 10}, with cross-length
    /// near-duplicates (truncations of the same ranking).
    fn mixed_corpus() -> Vec<Ranking> {
        let base = CorpusProfile::dblp_like(250, 10).generate();
        let mut rng = StdRng::seed_from_u64(77);
        let mut out = Vec::new();
        let mut id = 0u64;
        for r in &base {
            let lengths = [5usize, 8, 10];
            let k = lengths[rng.gen_range(0..lengths.len())];
            out.push(Ranking::new_unchecked(id, r.items()[..k].to_vec()));
            id += 1;
            // Occasionally add a truncation of the same ranking — a
            // distance-0 cross-length pair.
            if rng.gen_bool(0.1) && k > 5 {
                out.push(Ranking::new_unchecked(id, r.items()[..k - 2].to_vec()));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn matches_brute_force_on_mixed_lengths() {
        let c = cluster();
        let data = mixed_corpus();
        for theta_raw in [0u64, 5, 15, 30, 60] {
            let expected = varlen_brute_force(&c, &data, theta_raw)
                .expect("mixed-length corpus is valid input")
                .pairs;
            let got = varlen_join(&c, &data, theta_raw, 8)
                .expect("mixed-length corpus is valid input")
                .pairs;
            assert_eq!(got, expected, "θ_raw = {theta_raw}");
        }
    }

    #[test]
    fn cross_length_truncations_are_found() {
        // [1..5] vs [1..7]: distance Δ(Δ−1)/2 = 1 with Δ = 2.
        let c = cluster();
        let data = vec![
            Ranking::new(1, vec![1, 2, 3, 4, 5]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![1, 2, 3, 4, 5, 6, 7])
                .expect("distinct items form a valid ranking"),
            Ranking::new(3, vec![8, 9, 10]).expect("distinct items form a valid ranking"),
        ];
        let got = varlen_join(&c, &data, 1, 4)
            .expect("mixed-length input is valid for the varlen join")
            .pairs;
        assert_eq!(got, vec![(1, 2)]);
    }

    #[test]
    fn length_filter_prunes_wide_gaps() {
        let c = cluster();
        let data = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10])
                .expect("distinct items form a valid ranking"),
        ];
        // Gap Δ = 7 ⇒ min distance 21 > θ = 20 ⇒ pruned by lengths alone.
        let outcome =
            varlen_join(&c, &data, 20, 4).expect("mixed-length input is valid for the varlen join");
        assert!(outcome.pairs.is_empty());
        assert!(outcome.stats.triangle_pruned > 0 || outcome.stats.candidates == 0);
        // At θ = 21 the pair becomes reachable; whether it qualifies is up
        // to verification.
        let expected = varlen_brute_force(&c, &data, 21)
            .expect("mixed-length input is valid for the brute force")
            .pairs;
        let got = varlen_join(&c, &data, 21, 4)
            .expect("mixed-length input is valid for the varlen join")
            .pairs;
        assert_eq!(got, expected);
    }

    #[test]
    fn huge_threshold_admits_disjoint_pairs() {
        let c = cluster();
        let data = vec![
            Ranking::new(1, vec![1, 2]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![8, 9]).expect("distinct items form a valid ranking"),
            Ranking::new(3, vec![4, 5, 6]).expect("distinct items form a valid ranking"),
        ];
        // Max possible distance across these lengths is small; a raw budget
        // of 100 admits everything, including disjoint pairs.
        let got = varlen_join(&c, &data, 100, 2)
            .expect("mixed-length input is valid for the varlen join")
            .pairs;
        assert_eq!(got, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_dataset() {
        let c = cluster();
        assert!(varlen_join(&c, &[], 10, 4)
            .expect("empty input is valid for the varlen join")
            .pairs
            .is_empty());
    }

    /// Splits the mixed corpus into two relations with overlapping id
    /// spaces (both renumbered from 0).
    fn mixed_relations() -> (Vec<Ranking>, Vec<Ranking>) {
        let all = mixed_corpus();
        let split = all.len() / 2;
        let renumber = |rs: &[Ranking]| {
            rs.iter()
                .enumerate()
                .map(|(i, r)| Ranking::new_unchecked(i as u64, r.items().to_vec()))
                .collect::<Vec<_>>()
        };
        (renumber(&all[..split]), renumber(&all[split..]))
    }

    #[test]
    fn rs_matches_brute_force_on_mixed_lengths() {
        let c = cluster();
        let (left, right) = mixed_relations();
        for theta_raw in [0u64, 5, 15, 30, 60] {
            let expected = varlen_brute_force_rs(&c, &left, &right, theta_raw)
                .expect("mixed-length relations are valid input")
                .pairs;
            let got = varlen_join_rs(&c, &left, &right, theta_raw, 8)
                .expect("mixed-length relations are valid input")
                .pairs;
            assert_eq!(got, expected, "θ_raw = {theta_raw}");
        }
    }

    #[test]
    fn rs_skew_split_never_changes_the_result_set() {
        let c = cluster();
        let (left, right) = mixed_relations();
        let expected = varlen_join_rs(&c, &left, &right, 30, 8)
            .expect("mixed-length relations are valid input")
            .pairs;
        for budget in [1usize, 3, 100_000] {
            let outcome =
                varlen_join_rs_with_skew(&c, &left, &right, 30, 8, SkewBudget::Fixed(budget))
                    .expect("mixed-length relations are valid input");
            assert_eq!(outcome.pairs, expected, "budget = {budget}");
            if budget == 1 {
                assert!(outcome.stats.posting_lists_split > 0);
            }
        }
    }

    #[test]
    fn rs_validates_relations_separately_and_handles_empty_sides() {
        let c = cluster();
        let dup = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(1, vec![4, 5, 6]).expect("distinct items form a valid ranking"),
        ];
        let ok = vec![Ranking::new(9, vec![1, 2, 3]).expect("distinct items form a valid ranking")];
        assert!(matches!(
            varlen_join_rs(&c, &dup, &ok, 10, 4),
            Err(JoinError::DuplicateRankingId(1))
        ));
        // An id shared ACROSS relations is legal.
        let other = vec![
            Ranking::new(9, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(1, vec![1, 2, 3, 4]).expect("distinct items form a valid ranking"),
        ];
        let got = varlen_join_rs(&c, &ok, &other, 10, 4)
            .expect("overlapping id spaces are valid for R-S")
            .pairs;
        assert_eq!(got, vec![(9, 1), (9, 9)]);
        assert!(varlen_join_rs(&c, &ok, &[], 10, 4)
            .expect("an empty side is valid")
            .pairs
            .is_empty());
    }

    #[test]
    fn skew_split_never_changes_the_result_set() {
        // ISSUE 5, satellite 4: the generic splitter must be invisible in
        // the varlen driver's output for any budget, and a tiny budget must
        // actually exercise the chunk + chunk-pair path.
        let c = cluster();
        let data = mixed_corpus();
        for theta_raw in [5u64, 30] {
            let expected = varlen_join(&c, &data, theta_raw, 8)
                .expect("mixed-length corpus is valid input")
                .pairs;
            for budget in [1usize, 3, 10, 100_000] {
                let outcome =
                    varlen_join_with_skew(&c, &data, theta_raw, 8, SkewBudget::Fixed(budget))
                        .expect("mixed-length corpus is valid input");
                assert_eq!(
                    outcome.pairs, expected,
                    "θ_raw = {theta_raw}, budget = {budget}"
                );
                if budget == 1 {
                    assert!(outcome.stats.posting_lists_split > 0);
                    assert!(outcome.stats.skew_chunks > 0);
                    assert!(outcome.stats.rs_joins > 0);
                }
            }
        }
    }
}
