//! The *Joining* phase: the similarity join over cluster centroids
//! (Algorithm 1, §5.2).
//!
//! Centroids are joined with threshold `θo = θ + 2·θc` (Lemma 5.1), but
//! Lemma 5.3 relaxes this by centroid type: pairs of singleton centroids
//! only need θ, mixed pairs `θ + θc`. Accordingly, non-singleton centroids
//! emit a prefix sized for θo while singleton centroids emit a shorter
//! prefix, and each candidate pair is verified against its type's threshold.
//!
//! **Prefix-size note.** The paper sizes the singleton prefix for θ. Prefix
//! intersection for a pair within distance `D` is only guaranteed when *both*
//! prefixes are at least `k − ω(D) + 1` long, and mixed pairs must be
//! retrieved up to `D = θ + θc` — so a θ-sized singleton prefix can miss
//! mixed pairs. By default we size singleton prefixes for `θ + θc` (sound,
//! still shorter than the θo prefix, same asymptotic saving);
//! [`crate::JoinConfig::strict_paper_prefixes`] restores the literal paper
//! behaviour.

use std::sync::Arc;

use minispark::Dataset;
use topk_rankings::distance::raw_threshold;
use topk_rankings::{OrderedRanking, Relation};

use crate::kernels::{GroupThresholds, JoinMode};
use crate::pipeline::{
    emit_prefixes, token_grouped_join, with_disjoint_sentinels, GroupJoinStyle, PairHit,
};
use crate::stats::JoinStats;
use crate::JoinConfig;

/// The three per-type raw thresholds of Lemma 5.3: `(θ_o, θ_ms, θ_ss)`.
///
/// Each composed threshold is converted from the *normalized* domain in one
/// step — `raw_threshold(k, θ + 2θc)` — never by summing per-term raw
/// floors: `⌊a⌋ + ⌊b⌋ ≤ ⌊a + b⌋`, so a sum of floors can come out one raw
/// unit **tighter** than the exact composed threshold and silently drop
/// boundary pairs (pinned by `composed_thresholds_match_exact_rationals`).
fn composed_thresholds(k: usize, config: &JoinConfig) -> (u64, u64, u64) {
    // Normalized distances live in [0, 1], so a composed threshold past 1
    // (θ near 1 plus a positive θc) accepts everything — clamp before
    // converting, `raw_threshold(k, 1.0)` is the exact maximum.
    let theta_o = raw_threshold(k, (config.theta + 2.0 * config.cluster_threshold).min(1.0));
    let theta_ms = if config.use_lemma53 {
        raw_threshold(k, (config.theta + config.cluster_threshold).min(1.0))
    } else {
        // Ablation: no per-type relaxation — every pair joins at θ + 2θc.
        theta_o
    };
    let theta_ss = if config.use_lemma53 {
        raw_threshold(k, config.theta)
    } else {
        theta_o
    };
    (theta_o, theta_ms, theta_ss)
}

/// Joins the centroid set `C = C_m ∪ C_s` per Algorithm 1, returning every
/// centroid pair within its type-specific threshold (with exact distances
/// and type tags for the expansion phase). The per-type thresholds are
/// composed from `config.theta` / `config.cluster_threshold` in the
/// normalized domain (see [`composed_thresholds`]).
pub fn centroid_join(
    centroids_m: &Dataset<Arc<OrderedRanking>>,
    singletons: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    config: &JoinConfig,
    partitions: usize,
    delta: Option<usize>,
    stats: &Arc<JoinStats>,
) -> Dataset<PairHit> {
    let (theta_o, theta_ms, theta_ss) = composed_thresholds(k, config);
    crate::invariants::check_centroid_thresholds(theta_ss, theta_ms, theta_o);
    let p_m = config.prefix.prefix_len(k, theta_o);
    let p_s = if !config.use_lemma53 {
        p_m
    } else if config.strict_paper_prefixes {
        config.prefix.prefix_len(k, theta_ss)
    } else {
        config.prefix.prefix_len(k, theta_ms)
    };

    let emitted_m = emit_prefixes(
        centroids_m,
        p_m,
        false,
        Relation::Left,
        "cl/join/emit-cm-prefixes",
    );
    // A pair involving a non-singleton centroid is retrieved up to θ + 2θc
    // (mm) at most; a singleton's most permissive pair threshold is θ + θc
    // (ms). Where those admit disjoint pairs, the sentinel routing kicks in
    // (see pipeline::DISJOINT_SENTINEL).
    let emitted_m = with_disjoint_sentinels(
        emitted_m,
        centroids_m,
        k,
        theta_o,
        false,
        Relation::Left,
        "cl/join/emit-cm-sentinels",
    );
    let emitted_s = emit_prefixes(
        singletons,
        p_s,
        true,
        Relation::Left,
        "cl/join/emit-cs-prefixes",
    );
    let emitted_s = with_disjoint_sentinels(
        emitted_s,
        singletons,
        k,
        theta_ms,
        true,
        Relation::Left,
        "cl/join/emit-cs-sentinels",
    );
    let emitted = emitted_m.union(&emitted_s);

    token_grouped_join(
        &emitted,
        GroupJoinStyle::NestedLoop,
        move |singleton| if singleton { p_s } else { p_m },
        GroupThresholds::Mixed {
            mm: theta_o,
            ms: theta_ms,
            ss: theta_ss,
        },
        config.use_position_filter,
        JoinMode::SelfJoin,
        partitions,
        delta,
        config.skew,
        stats,
        "cl/join",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::order_rankings;
    use minispark::{Cluster, ClusterConfig};
    use topk_rankings::distance::{footrule_raw, raw_threshold};
    use topk_rankings::{PrefixKind, Ranking};

    fn r(id: u64, items: &[u32]) -> Ranking {
        Ranking::new(id, items.to_vec()).unwrap()
    }

    /// `(a_id, b_id, distance, a_singleton, b_singleton)`.
    type HitRow = (u64, u64, u64, bool, bool);

    fn split_and_join(
        cm: Vec<Ranking>,
        cs: Vec<Ranking>,
        theta: f64,
        theta_c: f64,
        delta: Option<usize>,
    ) -> Vec<HitRow> {
        split_and_join_with_stats(cm, cs, theta, theta_c, delta).0
    }

    fn split_and_join_with_stats(
        cm: Vec<Ranking>,
        cs: Vec<Ranking>,
        theta: f64,
        theta_c: f64,
        delta: Option<usize>,
    ) -> (Vec<HitRow>, crate::stats::StatsSnapshot) {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let config = JoinConfig::new(theta).with_cluster_threshold(theta_c);
        let all: Vec<Ranking> = cm.iter().chain(cs.iter()).cloned().collect();
        let k = all[0].k();
        let cm_ids: std::collections::HashSet<u64> =
            cm.iter().map(topk_rankings::Ranking::id).collect();
        let ordered = order_rankings(&cluster, &all, PrefixKind::Overlap, 4, "test");
        let cm_ids2 = cm_ids.clone();
        let centroids_m = ordered.filter("cm", move |r: &Arc<OrderedRanking>| {
            cm_ids2.contains(&r.id())
        });
        let singletons = ordered.filter("cs", move |r: &Arc<OrderedRanking>| {
            !cm_ids.contains(&r.id())
        });
        let stats = Arc::new(JoinStats::default());
        let hits = centroid_join(&centroids_m, &singletons, k, &config, 4, delta, &stats);
        let mut out: Vec<HitRow> = hits
            .collect()
            .into_iter()
            .map(|h| (h.a.id(), h.b.id(), h.distance, h.a_singleton, h.b_singleton))
            .collect();
        out.sort();
        (out, stats.snapshot())
    }

    #[test]
    fn thresholds_depend_on_centroid_types() {
        // k = 5 ⇒ max = 30. θ = 0.2 → raw 6, θc = 0.1 → raw 3.
        // mm: 12, ms: 9, ss: 6.
        let a = r(1, &[1, 2, 3, 4, 5]);
        let b = r(2, &[4, 1, 2, 3, 5]); // distance to a:
        assert_eq!(footrule_raw(&a, &b), 6);
        let c = r(3, &[4, 1, 2, 5, 3]); // a↔c: item4:3,1:1,2:1,3:2,5:1 = 8
        assert_eq!(footrule_raw(&a, &c), 8);

        // Both non-singleton: both pairs retrieved (6 ≤ 12, 8 ≤ 12).
        let mm = split_and_join(
            vec![a.clone(), b.clone(), c.clone()],
            vec![],
            0.2,
            0.1,
            None,
        );
        assert_eq!(mm.iter().filter(|t| t.2 <= 12).count(), mm.len());
        assert!(mm.iter().any(|t| (t.0, t.1) == (1, 3)));

        // All singleton: only d ≤ 6 survives.
        let ss = split_and_join(
            vec![],
            vec![a.clone(), b.clone(), c.clone()],
            0.2,
            0.1,
            None,
        );
        assert!(ss.iter().any(|t| (t.0, t.1) == (1, 2)));
        assert!(
            !ss.iter().any(|t| (t.0, t.1) == (1, 3)),
            "d = 8 > ss = 6: {ss:?}"
        );

        // Mixed: (1,3) with a ∈ Cm, c ∈ Cs → threshold 9 ≥ 8 → retrieved.
        let ms = split_and_join(vec![a], vec![b, c], 0.2, 0.1, None);
        let pair13 = ms
            .iter()
            .find(|t| (t.0, t.1) == (1, 3))
            .expect("mixed pair");
        assert_eq!(pair13.2, 8);
        assert_eq!((pair13.3, pair13.4), (false, true));
    }

    #[test]
    fn repartitioned_centroid_join_matches_plain() {
        let data: Vec<Ranking> = (0..40)
            .map(|i| {
                let base = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
                let mut items: Vec<u32> = base.to_vec();
                items.rotate_left((i % 4) as usize);
                items[9] = 20 + i;
                r(u64::from(i), &items)
            })
            .collect();
        let cm: Vec<Ranking> = data[..20].to_vec();
        let cs: Vec<Ranking> = data[20..].to_vec();
        let plain = split_and_join(cm.clone(), cs.clone(), 0.3, 0.03, None);
        let split = split_and_join(cm, cs, 0.3, 0.03, Some(3));
        assert_eq!(plain, split);
        assert!(!plain.is_empty());
    }

    #[test]
    fn clp_chunk_pair_join_recovers_pairs_straddling_chunk_boundaries() {
        // Regression (ISSUE 5, satellite 3): with a tiny δ every hot token
        // group is cut into many chunks, so most near-pairs land in
        // *different* chunks and only the chunk-pair R-S join can recover
        // them. The pair set is pinned to brute force (per-type Lemma 5.3
        // thresholds), and the candidate/verified counters must match the
        // unchunked join exactly — each unordered pair is examined once
        // whether its group is joined whole or as chunks plus chunk pairs.
        // One singleton ranking is duplicated verbatim (same id, same
        // items): equal-id pairs must stay skipped across chunk boundaries.
        let data: Vec<Ranking> = (0..40)
            .map(|i| {
                let base = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
                let mut items: Vec<u32> = base.to_vec();
                items.rotate_left((i % 4) as usize);
                items[9] = 20 + i;
                r(u64::from(i), &items)
            })
            .collect();
        let cm: Vec<Ranking> = data[..20].to_vec();
        let mut cs: Vec<Ranking> = data[20..].to_vec();
        cs.push(data[25].clone());

        let (theta, theta_c) = (0.3, 0.03);
        let k = 10;
        let (theta_raw, theta_c_raw) = (raw_threshold(k, theta), raw_threshold(k, theta_c));
        let mut expected: Vec<HitRow> = Vec::new();
        for x in 0..40u64 {
            for y in (x + 1)..40 {
                let (a_s, b_s) = (x >= 20, y >= 20);
                let threshold = match (a_s, b_s) {
                    (true, true) => theta_raw,
                    (false, false) => theta_raw + 2 * theta_c_raw,
                    _ => theta_raw + theta_c_raw,
                };
                let d = footrule_raw(&data[x as usize], &data[y as usize]);
                if d <= threshold {
                    expected.push((x, y, d, a_s, b_s));
                }
            }
        }
        assert!(
            expected.len() >= 8,
            "corpus must produce a meaningful pair set, got {expected:?}"
        );

        let (plain, plain_stats) =
            split_and_join_with_stats(cm.clone(), cs.clone(), theta, theta_c, None);
        let (chunked, chunked_stats) = split_and_join_with_stats(cm, cs, theta, theta_c, Some(2));

        assert_eq!(plain, expected, "unchunked centroid join pair set");
        assert_eq!(chunked, expected, "chunked (δ = 2) centroid join pair set");

        // Pair-examination parity across the split.
        assert_eq!(chunked_stats.candidates, plain_stats.candidates);
        assert_eq!(chunked_stats.position_pruned, plain_stats.position_pruned);
        assert_eq!(chunked_stats.verified, plain_stats.verified);
        assert_eq!(chunked_stats.result_pairs, plain_stats.result_pairs);

        // The chunked run must actually have split and R-S-joined; the
        // plain run must not have.
        assert!(chunked_stats.posting_lists_split > 0);
        assert!(chunked_stats.skew_chunks > 0);
        assert!(chunked_stats.rs_joins > 0);
        assert_eq!(plain_stats.posting_lists_split, 0);
        assert_eq!(plain_stats.rs_joins, 0);
        assert_eq!(plain_stats.skew_chunks, 0);
    }

    #[test]
    fn composed_thresholds_match_exact_rationals() {
        // Regression (ISSUE 9, satellite 1): θ_o used to be composed as
        // `raw_threshold(k, θ) + 2·raw_threshold(k, θc)` — a sum of floors,
        // which `⌊a⌋ + ⌊b⌋ ≤ ⌊a + b⌋` makes up to two raw units tighter
        // than the exact composed threshold. Sweep a θ×θc×k grid of exact
        // thousandths, compare both compositions against the exact u128
        // rational, and require (a) the fixed composition is always exact
        // and (b) the grid actually contains combinations where the old
        // sum-of-floors composition was strictly tighter.
        let ks = [5usize, 10, 20, 25, 50];
        let mut old_was_tighter = 0usize;
        for &k in &ks {
            let max = u128::from(topk_rankings::max_raw_distance(k));
            for a in (25u32..=400).step_by(25) {
                for b in (5u32..=150).step_by(5) {
                    let theta = f64::from(a) / 1000.0;
                    let theta_c = f64::from(b) / 1000.0;
                    let config = JoinConfig::new(theta).with_cluster_threshold(theta_c);
                    let (theta_o, theta_ms, theta_ss) = super::composed_thresholds(k, &config);

                    let exact =
                        |num: u32| -> u64 { (u128::from(num) * max / 1000).try_into().unwrap() };
                    assert_eq!(theta_o, exact(a + 2 * b), "θ_o at k={k} θ={a}‰ θc={b}‰");
                    assert_eq!(theta_ms, exact(a + b), "θ_ms at k={k} θ={a}‰ θc={b}‰");
                    assert_eq!(theta_ss, exact(a), "θ_ss at k={k} θ={a}‰ θc={b}‰");

                    let old_theta_o = raw_threshold(k, theta) + 2 * raw_threshold(k, theta_c);
                    assert!(old_theta_o <= theta_o);
                    if old_theta_o < theta_o {
                        old_was_tighter += 1;
                    }
                }
            }
        }
        assert!(
            old_was_tighter > 0,
            "grid must exhibit the sum-of-floors off-by-one the fix removes"
        );
    }

    #[test]
    fn boundary_pair_at_exact_composed_threshold_is_kept() {
        // Concrete off-by-one: k = 5 (max raw = 30), θ = 0.25, θc = 0.15.
        // Exact θ_o = ⌊30 · 0.55⌋ = 16, but the old sum-of-floors gave
        // ⌊7.5⌋ + 2·⌊4.5⌋ = 15 — silently dropping any non-singleton
        // centroid pair at distance exactly 16. The paper's own §1.1
        // example pair (Table 2) sits at raw distance 16.
        let t1 = r(1, &[2, 5, 4, 3, 1]);
        let t2 = r(2, &[1, 4, 5, 9, 0]);
        assert_eq!(footrule_raw(&t1, &t2), 16);
        let hits = split_and_join(vec![t1, t2], vec![], 0.25, 0.15, None);
        assert_eq!(hits, vec![(1, 2, 16, false, false)]);
    }

    #[test]
    fn strict_paper_prefixes_flag_is_honoured() {
        // Smoke test: the flag changes the singleton prefix length but on
        // this small input the result set is the same.
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![r(1, &[1, 2, 3, 4, 5]), r(2, &[2, 1, 3, 4, 5])];
        let mut config = JoinConfig::new(0.2).with_cluster_threshold(0.1);
        config.strict_paper_prefixes = true;
        let ordered = order_rankings(&cluster, &data, PrefixKind::Overlap, 2, "test");
        let empty = ordered.filter("none", |_| false);
        let stats = Arc::new(JoinStats::default());
        let hits = centroid_join(&empty, &ordered, 5, &config, 2, None, &stats);
        let pairs: Vec<(u64, u64)> = hits
            .collect()
            .iter()
            .map(super::super::pipeline::PairHit::ids)
            .collect();
        assert_eq!(pairs, vec![(1, 2)]);
    }
}
