//! The *Clustering* phase of CL/CL-P (§5.1).
//!
//! A similarity self-join at the (tiny) clustering threshold θc finds all
//! near-duplicate pairs; clusters are then formed by grouping the result
//! pairs by their first (smaller-id) ranking, which becomes the centroid.
//! Rankings that appear in no pair form singleton clusters. Because the
//! Footrule adaptation is a metric, every pair of rankings inside one
//! cluster is within `2·θc` of each other, so cluster-internal result pairs
//! can be emitted immediately (verified only when the triangle bounds cannot
//! certify them).

use std::collections::HashSet;
use std::sync::Arc;

use minispark::{Cluster, Dataset};
use topk_rankings::OrderedRanking;

use crate::pipeline::{prefix_self_join, GroupJoinStyle};
use crate::stats::JoinStats;
use crate::JoinConfig;

/// `centroid id → [(member ranking, distance to centroid)]`.
pub type ClusterTable = Dataset<(u64, Vec<(Arc<OrderedRanking>, u64)>)>;

/// Output of the clustering phase.
pub struct Clustering {
    /// The cluster table for clusters with at least one member. Clusters may
    /// overlap (a ranking can be a member of several clusters and a centroid
    /// itself), as §5.1 accepts.
    pub clusters: ClusterTable,
    /// The non-singleton centroids `C_m` (one ranking per cluster).
    pub centroids_m: Dataset<Arc<OrderedRanking>>,
    /// The singleton centroids `C_s`: rankings with no neighbour within θc.
    pub singletons: Dataset<Arc<OrderedRanking>>,
    /// Result pairs already certain from the clustering phase (centroid ↔
    /// member and member ↔ member inside one cluster).
    pub within_cluster_pairs: Dataset<(u64, u64)>,
}

/// Runs the clustering phase over the canonicalized dataset.
#[allow(clippy::too_many_arguments)]
pub fn clustering_phase(
    cluster: &Cluster,
    ordered: &Dataset<Arc<OrderedRanking>>,
    k: usize,
    theta_raw: u64,
    theta_c_raw: u64,
    config: &JoinConfig,
    partitions: usize,
    stats: &Arc<JoinStats>,
) -> Clustering {
    // The θc self-join. The paper uses VJ here ("our experiments revealed
    // that VJ is the most efficient one to be used here") with the
    // iterator-style per-group processing of §4.1.
    let rc = prefix_self_join(
        ordered,
        k,
        theta_c_raw,
        config.prefix,
        GroupJoinStyle::NestedLoop,
        config.use_position_filter,
        partitions,
        None,
        config.skew,
        stats,
        "cl/cluster",
    );

    // Clusters: group pairs by the smaller-id ranking (PairHit guarantees
    // a.id < b.id), matching "from the pairs, we take the first ranking …
    // as the cluster centroid, and the second one as their member".
    let clusters = rc
        .map("cl/cluster/member-assignments", |hit| {
            (hit.a.id(), (Arc::clone(&hit.b), hit.distance))
        })
        .group_by_key("cl/cluster/form-clusters", partitions);

    // C_m: one ranking per centroid id. Keep-first is value-deterministic:
    // every value under one centroid id is an `Arc` of the same canonical
    // ranking, so the survivor is content-equal whichever duplicate wins.
    let centroids_m = rc
        .map("cl/cluster/centroid-candidates", |hit| {
            (hit.a.id(), Arc::clone(&hit.a))
        })
        .reduce_by_key("cl/cluster/dedup-centroids", partitions, |a, _| a)
        .values("cl/cluster/centroid-rankings");

    // C_s: rankings that appear in no θc pair. The id set is small metadata
    // (bounded by 2·|pairs|) and is broadcast, like the frequency order.
    let non_singleton_ids: HashSet<u64> = rc
        .flat_map("cl/cluster/paired-ids", |hit| vec![hit.a.id(), hit.b.id()])
        .distinct("cl/cluster/distinct-paired-ids", partitions)
        .collect()
        .into_iter()
        .collect();
    JoinStats::add(&stats.clusters, clusters.count() as u64);
    let paired = cluster.broadcast(non_singleton_ids);
    let singletons = {
        let paired = paired.clone();
        ordered.filter("cl/cluster/singletons", move |r: &Arc<OrderedRanking>| {
            !paired.value().contains(&r.id())
        })
    };
    JoinStats::add(&stats.singletons, singletons.count() as u64);

    // Cluster-internal results. Centroid–member distances are known exactly;
    // member–member pairs are certified by the triangle bounds where
    // possible (always, when 2·θc ≤ θ) and verified otherwise.
    let use_triangle_bounds = config.use_triangle_bounds;
    let within_cluster_pairs = {
        let stats = Arc::clone(stats);
        clusters.flat_map(
            "cl/cluster/within-cluster-results",
            move |(centroid, members)| {
                let mut out = Vec::new();
                for (member, d) in members {
                    if *d <= theta_raw {
                        out.push(ordered_pair(*centroid, member.id()));
                    }
                }
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        let (mi, di) = &members[i];
                        let (mj, dj) = &members[j];
                        if mi.id() == mj.id() {
                            continue;
                        }
                        if use_triangle_bounds && di + dj <= theta_raw {
                            JoinStats::bump(&stats.triangle_accepted);
                            out.push(ordered_pair(mi.id(), mj.id()));
                        } else if use_triangle_bounds && di.abs_diff(*dj) > theta_raw {
                            JoinStats::bump(&stats.triangle_pruned);
                        } else {
                            JoinStats::bump(&stats.candidates);
                            JoinStats::bump(&stats.verified);
                            if mi.footrule_within(mj, theta_raw).is_some() {
                                JoinStats::bump(&stats.result_pairs);
                                out.push(ordered_pair(mi.id(), mj.id()));
                            }
                        }
                    }
                }
                out
            },
        )
    };

    Clustering {
        clusters,
        centroids_m,
        singletons,
        within_cluster_pairs,
    }
}

#[inline]
fn ordered_pair(x: u64, y: u64) -> (u64, u64) {
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::order_rankings;
    use minispark::ClusterConfig;
    use topk_rankings::distance::raw_threshold;
    use topk_rankings::{PrefixKind, Ranking};

    fn r(id: u64, items: &[u32]) -> Ranking {
        Ranking::new(id, items.to_vec()).unwrap()
    }

    /// Figure 3's setup: τ1, τ2, τ5 cluster around τ1; τ3, τ4 around τ3;
    /// τ6 is a singleton.
    fn figure3_dataset() -> Vec<Ranking> {
        vec![
            r(1, &[2, 5, 3, 4, 1]),
            r(2, &[2, 5, 4, 3, 1]),
            r(3, &[0, 8, 5, 3, 7]),
            r(4, &[8, 0, 5, 3, 7]),
            r(5, &[2, 5, 3, 1, 4]),
            r(6, &[6, 9, 0, 8, 5]),
        ]
    }

    fn run(theta: f64, theta_c: f64) -> (Clustering, Cluster) {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = figure3_dataset();
        let config = JoinConfig::new(theta).with_cluster_threshold(theta_c);
        let ordered = order_rankings(&cluster, &data, PrefixKind::Overlap, 4, "test");
        let stats = Arc::new(JoinStats::default());
        let clustering = clustering_phase(
            &cluster,
            &ordered,
            5,
            raw_threshold(5, theta),
            raw_threshold(5, theta_c),
            &config,
            4,
            &stats,
        );
        (clustering, cluster)
    }

    #[test]
    fn forms_figure3_clusters() {
        // θc = 0.1 → raw 3. Distances: (1,2) swap of ranks 2/3 → 2;
        // (1,5) swap of ranks 3/4 → 2; (2,5): [2,5,4,3,1] vs [2,5,3,1,4]:
        // item4: |2-4|=2, item3: |3-2|=1, item1: |4-3|=1 → 4 > 3;
        // (3,4) swap → 2. τ6 far from all.
        let (clustering, _) = run(0.2, 0.1);
        let mut clusters = clustering.clusters.collect();
        clusters.sort_by_key(|(c, _)| *c);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].0, 1);
        let mut members1: Vec<u64> = clusters[0].1.iter().map(|(m, _)| m.id()).collect();
        members1.sort();
        assert_eq!(members1, vec![2, 5]);
        assert_eq!(clusters[1].0, 3);
        assert_eq!(clusters[1].1.len(), 1);
        assert_eq!(clusters[1].1[0].0.id(), 4);

        let mut centroid_ids: Vec<u64> = clustering
            .centroids_m
            .collect()
            .into_iter()
            .map(|c| c.id())
            .collect();
        centroid_ids.sort();
        assert_eq!(centroid_ids, vec![1, 3]);

        let singleton_ids: Vec<u64> = clustering
            .singletons
            .collect()
            .into_iter()
            .map(|c| c.id())
            .collect();
        assert_eq!(singleton_ids, vec![6]);
    }

    #[test]
    fn within_cluster_pairs_cover_members() {
        let (clustering, _) = run(0.2, 0.1);
        let mut pairs = clustering.within_cluster_pairs.collect();
        pairs.sort();
        pairs.dedup();
        // Cluster {1,2,5}: (1,2), (1,5) centroid-member; (2,5) member-member
        // at distance 4 ≤ θ_raw = 6. Cluster {3,4}: (3,4).
        assert_eq!(pairs, vec![(1, 2), (1, 5), (2, 5), (3, 4)]);
    }

    #[test]
    fn member_member_verification_respects_theta() {
        // θ = 0.1 (raw 3): the member pair (2,5) at distance 4 must be
        // dropped even though both are within θc·Footrule of the centroid.
        let (clustering, _) = run(0.1, 0.1);
        let mut pairs = clustering.within_cluster_pairs.collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs, vec![(1, 2), (1, 5), (3, 4)]);
    }

    #[test]
    fn zero_theta_c_clusters_only_duplicates() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = figure3_dataset();
        let config = JoinConfig::new(0.2).with_cluster_threshold(0.0);
        let ordered = order_rankings(&cluster, &data, PrefixKind::Overlap, 4, "test");
        let stats = Arc::new(JoinStats::default());
        let clustering = clustering_phase(
            &cluster,
            &ordered,
            5,
            raw_threshold(5, 0.2),
            0,
            &config,
            4,
            &stats,
        );
        assert_eq!(clustering.clusters.count(), 0);
        assert_eq!(clustering.singletons.count(), 6);
        assert_eq!(stats.snapshot().singletons, 6);
    }
}
