//! Mini-batch **arrival joins** against a standing corpus — the streaming
//! face of the R-S join.
//!
//! [`ArrivalJoin`] owns a canonicalized corpus inside a
//! [`RankingIndex`](crate::index::RankingIndex) and consumes arrival
//! mini-batches: each arriving ranking is range-queried against everything
//! indexed so far (the corpus, all previous batches, and the earlier members
//! of its own batch) and then inserted. Because every pair of rankings has a
//! unique "later" member and that member performs exactly one query before
//! insertion, each qualifying pair is reported exactly once, and the union
//! of all batch outputs equals the one-shot reference:
//!
//! > the brute-force join of `corpus ∪ arrivals`, restricted to the pairs
//! > with at least one arrival member (`corpus × arrivals ∪
//! > arrivals × arrivals`).
//!
//! Corpus-internal pairs are deliberately *not* produced — the standing
//! corpus is assumed already joined (that is the batch drivers' job).
//!
//! Ids must be globally unique across the corpus and every arrival; a
//! duplicate is rejected *before* the batch mutates any state, so a failed
//! call leaves the joiner exactly as it was.

use std::collections::HashSet;
use std::time::Instant;

use topk_rankings::Ranking;

use crate::index::RankingIndex;
use crate::stats::{JoinStats, StatsSnapshot};
use crate::{JoinError, JoinOutcome};

/// A standing corpus accepting arrival mini-batches (see the module docs).
pub struct ArrivalJoin {
    index: RankingIndex,
    theta: f64,
    /// Every id ever indexed (corpus + arrivals) — global uniqueness guard.
    seen: HashSet<u64>,
    stats: JoinStats,
    batches: u64,
    arrivals: u64,
}

impl ArrivalJoin {
    /// Builds the standing index over `corpus` for arrival joins at
    /// normalized threshold `theta`.
    ///
    /// # Errors
    /// `InvalidThreshold` for a non-probability θ; `DuplicateRankingId` /
    /// `MixedRankingLengths` for an invalid corpus.
    pub fn new(corpus: &[Ranking], theta: f64) -> Result<Self, JoinError> {
        let index = RankingIndex::build(corpus, theta)?;
        // Corpus ids are unique (checked by the build above).
        // alloc(once per joiner construction, not per arrival)
        let seen = corpus.iter().map(Ranking::id).collect();
        Ok(Self {
            index,
            theta,
            seen,
            stats: JoinStats::default(),
            batches: 0,
            arrivals: 0,
        })
    }

    /// The join threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of rankings currently indexed (corpus + arrivals so far).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether nothing is indexed yet.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of mini-batches consumed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Number of arrival rankings consumed so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Cumulative filter/verification counters across all batches, with the
    /// same semantics as the batch join kernels.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Joins one mini-batch of arrivals against everything indexed so far
    /// (plus the batch's own earlier members), then folds the batch into the
    /// standing index.
    ///
    /// Returns the batch's qualifying pairs normalized to
    /// `(smaller id, larger id)` — globally unique ids make that
    /// unambiguous — sorted, with the **cumulative** stats snapshot.
    ///
    /// # Errors
    /// `DuplicateRankingId` when an arrival reuses any id seen before
    /// (corpus, earlier batch, or this batch); `MixedRankingLengths` when an
    /// arrival's length differs from the indexed rankings'. Validation runs
    /// before any state changes — on error the joiner is untouched.
    pub fn join_arrivals(&mut self, batch: &[Ranking]) -> Result<JoinOutcome, JoinError> {
        let start = Instant::now();
        // ---- Pre-validate: the batch must be rejectable atomically. ------
        // alloc(once per mini-batch, sized up front)
        let mut batch_ids = HashSet::with_capacity(batch.len());
        let mut expected_k = if self.index.k() == 0 {
            None
        } else {
            Some(self.index.k())
        };
        for r in batch {
            if self.seen.contains(&r.id()) || !batch_ids.insert(r.id()) {
                return Err(JoinError::DuplicateRankingId(r.id()));
            }
            match expected_k {
                None => expected_k = Some(r.k()),
                Some(k) if k != r.k() => {
                    return Err(JoinError::MixedRankingLengths {
                        expected: k,
                        found: r.k(),
                    });
                }
                Some(_) => {}
            }
        }

        // ---- Query-then-insert, in batch order. --------------------------
        // The index at query time holds corpus + previous batches + earlier
        // members of this batch, so every pair involving this arrival and an
        // earlier record is reported here and never again.
        // alloc(once per mini-batch; an empty Vec never allocates)
        let mut pairs = Vec::new();
        for r in batch {
            let neighbours = self
                .index
                .range_query_with_stats(r, self.theta, &self.stats)?;
            for (other, _distance) in neighbours {
                let (x, y) = if other < r.id() {
                    (other, r.id())
                } else {
                    (r.id(), other)
                };
                pairs.push((x, y));
            }
            self.index.insert_ranking(r)?;
            self.seen.insert(r.id());
        }
        pairs.sort_unstable();
        self.batches += 1;
        self.arrivals += batch.len() as u64;
        Ok(JoinOutcome {
            pairs,
            stats: self.stats.snapshot(),
            elapsed: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{brute_force_join, brute_force_join_rs};
    use minispark::{Cluster, ClusterConfig};
    use topk_datagen::CorpusProfile;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(2))
    }

    /// One-shot reference: all pairs of `corpus ∪ arrivals` with at least
    /// one arrival member, normalized to `(smaller id, larger id)`.
    fn one_shot_reference(corpus: &[Ranking], arrivals: &[Ranking], theta: f64) -> Vec<(u64, u64)> {
        let c = cluster();
        let mut expected: Vec<(u64, u64)> = brute_force_join_rs(&c, corpus, arrivals, theta)
            .expect("valid relations")
            .pairs
            .into_iter()
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        expected.extend(
            brute_force_join(&c, arrivals, theta)
                .expect("valid relation")
                .pairs,
        );
        expected.sort_unstable();
        expected.dedup();
        expected
    }

    fn split_corpus(total: usize, corpus_share: usize) -> (Vec<Ranking>, Vec<Ranking>) {
        let all = CorpusProfile::orku_like(total, 10).generate();
        let (c, a) = all.split_at(corpus_share);
        (c.to_vec(), a.to_vec())
    }

    #[test]
    fn batched_arrivals_equal_one_shot_reference() {
        let (corpus, arrivals) = split_corpus(320, 200);
        for batch_size in [1usize, 7, 40, 120] {
            let mut joiner = ArrivalJoin::new(&corpus, 0.2).expect("valid corpus");
            let mut got = Vec::new();
            for batch in arrivals.chunks(batch_size) {
                got.extend(
                    joiner
                        .join_arrivals(batch)
                        .expect("valid arrival batch")
                        .pairs,
                );
            }
            got.sort_unstable();
            let expected = one_shot_reference(&corpus, &arrivals, 0.2);
            assert_eq!(got, expected, "batch_size = {batch_size}");
            assert_eq!(joiner.arrivals(), arrivals.len() as u64);
            assert!(!expected.is_empty(), "reference should find pairs");
        }
    }

    #[test]
    fn batch_internal_pairs_are_found_without_a_corpus() {
        // Empty corpus: only arrivals×arrivals pairs exist.
        let (_, arrivals) = split_corpus(150, 0);
        let mut joiner = ArrivalJoin::new(&[], 0.2).expect("empty corpus is valid");
        assert!(joiner.is_empty());
        let mut got = Vec::new();
        for batch in arrivals.chunks(33) {
            got.extend(
                joiner
                    .join_arrivals(batch)
                    .expect("valid arrival batch")
                    .pairs,
            );
        }
        got.sort_unstable();
        let expected = brute_force_join(&cluster(), &arrivals, 0.2)
            .expect("valid relation")
            .pairs;
        assert_eq!(got, expected);
    }

    #[test]
    fn corpus_internal_pairs_are_never_reported() {
        // A corpus full of duplicates joined at θ = 0: arrivals that match
        // nothing must report nothing, despite the corpus-internal pairs.
        let corpus = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
            Ranking::new(2, vec![1, 2, 3]).expect("distinct items form a valid ranking"),
        ];
        let arrival = vec![Ranking::new(3, vec![7, 8, 9]).expect("valid ranking")];
        let mut joiner = ArrivalJoin::new(&corpus, 0.0).expect("valid corpus");
        let outcome = joiner.join_arrivals(&arrival).expect("valid batch");
        assert!(outcome.pairs.is_empty());
    }

    #[test]
    fn duplicate_and_mismatched_arrivals_are_rejected_atomically() {
        let corpus = vec![
            Ranking::new(1, vec![1, 2, 3]).expect("valid ranking"),
            Ranking::new(2, vec![4, 5, 6]).expect("valid ranking"),
        ];
        let mut joiner = ArrivalJoin::new(&corpus, 0.3).expect("valid corpus");
        // Id collision with the corpus.
        let dup_corpus = vec![Ranking::new(1, vec![7, 8, 9]).expect("valid ranking")];
        assert!(matches!(
            joiner.join_arrivals(&dup_corpus),
            Err(JoinError::DuplicateRankingId(1))
        ));
        // Intra-batch id collision.
        let dup_batch = vec![
            Ranking::new(5, vec![7, 8, 9]).expect("valid ranking"),
            Ranking::new(5, vec![2, 3, 4]).expect("valid ranking"),
        ];
        assert!(matches!(
            joiner.join_arrivals(&dup_batch),
            Err(JoinError::DuplicateRankingId(5))
        ));
        // Length mismatch.
        let short = vec![Ranking::new(6, vec![7, 8]).expect("valid ranking")];
        assert!(matches!(
            joiner.join_arrivals(&short),
            Err(JoinError::MixedRankingLengths { .. })
        ));
        // Nothing was inserted by the failed batches.
        assert_eq!(joiner.len(), corpus.len());
        assert_eq!(joiner.batches(), 0);
        // Id collision with a previously accepted arrival.
        let ok = vec![Ranking::new(7, vec![7, 8, 9]).expect("valid ranking")];
        joiner.join_arrivals(&ok).expect("valid batch");
        assert!(matches!(
            joiner.join_arrivals(&ok),
            Err(JoinError::DuplicateRankingId(7))
        ));
        assert_eq!(joiner.batches(), 1);
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let (corpus, arrivals) = split_corpus(200, 120);
        let mut joiner = ArrivalJoin::new(&corpus, 0.2).expect("valid corpus");
        let mut last_candidates = 0;
        for batch in arrivals.chunks(40) {
            let outcome = joiner.join_arrivals(batch).expect("valid batch");
            assert!(outcome.stats.candidates >= last_candidates);
            last_candidates = outcome.stats.candidates;
        }
        let snap = joiner.stats();
        assert!(snap.candidates > 0);
        assert_eq!(snap.candidates, snap.position_pruned + snap.verified);
    }
}
