//! The Vernica-Join adaptation to top-k rankings (§4), in three flavours:
//!
//! * [`vj_join`] — inverted-index verification per token group (VJ),
//! * [`vj_nl_join`] — iterator nested-loop verification (VJ-NL, §4.1),
//! * [`vj_repartitioned_join`] — VJ-NL plus Algorithm 3's splitting of
//!   oversized posting lists (the joining machinery CL-P adds on top of CL;
//!   exposed standalone for ablation benchmarks).

use std::sync::Arc;
use std::time::Instant;

use minispark::Cluster;
use topk_rankings::distance::raw_threshold;
use topk_rankings::Ranking;

use crate::pipeline::{
    order_rankings, order_rankings_rs, prefix_rs_join, prefix_self_join, rs_uniform_k, uniform_k,
    GroupJoinStyle,
};
use crate::stats::JoinStats;
use crate::{JoinConfig, JoinError, JoinOutcome};

fn vj_flavour(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
    style: GroupJoinStyle,
    delta: Option<usize>,
    label: &str,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    let Some(k) = uniform_k(data)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta_raw = raw_threshold(k, config.theta);
    let partitions = config.effective_partitions(cluster.config().default_partitions);
    let stats = Arc::new(JoinStats::default());

    // Phase spans label the Ordering → Joining → Projection pipeline on the
    // trace timeline (no-ops unless the cluster records a trace).
    let run_span = cluster.trace().span(format!("{label}/run"));
    let ordered = {
        let _phase = cluster.trace().span(format!("{label}/phase/ordering"));
        order_rankings(cluster, data, config.prefix, partitions, label)
    };
    let hits = {
        let _phase = cluster.trace().span(format!("{label}/phase/joining"));
        prefix_self_join(
            &ordered,
            k,
            theta_raw,
            config.prefix,
            style,
            config.use_position_filter,
            partitions,
            delta,
            config.skew,
            &stats,
            label,
        )
    };
    let mut pairs = {
        let _phase = cluster.trace().span(format!("{label}/phase/projection"));
        hits.map(
            &format!("{label}/project-ids"),
            super::pipeline::PairHit::ids,
        )
        .collect()
    };
    pairs.sort_unstable();
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

fn vj_rs_flavour(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    config: &JoinConfig,
    style: GroupJoinStyle,
    label: &str,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    let Some(k) = rs_uniform_k(left, right)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta_raw = raw_threshold(k, config.theta);
    let partitions = config.effective_partitions(cluster.config().default_partitions);
    let stats = Arc::new(JoinStats::default());

    let run_span = cluster.trace().span(format!("{label}/run"));
    // One frequency order over R ∪ S canonicalizes both relations — the
    // shared order is what makes cross-relation prefix filtering complete.
    let (ordered_left, ordered_right) = {
        let _phase = cluster.trace().span(format!("{label}/phase/ordering"));
        order_rankings_rs(cluster, left, right, config.prefix, partitions, label)
    };
    let hits = {
        let _phase = cluster.trace().span(format!("{label}/phase/joining"));
        prefix_rs_join(
            &ordered_left,
            &ordered_right,
            k,
            theta_raw,
            config.prefix,
            style,
            config.use_position_filter,
            partitions,
            None,
            config.skew,
            &stats,
            label,
        )
    };
    // Hits lead with the left-relation record, so projecting ids yields
    // `(left id, right id)` pairs directly.
    let mut pairs = {
        let _phase = cluster.trace().span(format!("{label}/phase/projection"));
        hits.map(
            &format!("{label}/project-ids"),
            super::pipeline::PairHit::ids,
        )
        .collect()
    };
    pairs.sort_unstable();
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// VJ: prefix filtering with per-group inverted indexes (§4).
pub fn vj_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    vj_flavour(cluster, data, config, GroupJoinStyle::Indexed, None, "vj")
}

/// VJ-NL: prefix filtering with nested-loop (iterator) verification (§4.1).
pub fn vj_nl_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    vj_flavour(
        cluster,
        data,
        config,
        GroupJoinStyle::NestedLoop,
        None,
        "vj-nl",
    )
}

/// VJ over two relations (R-S join): both relations' prefixes shuffle into
/// one token-grouped bipartite join; only cross-relation pairs are verified.
/// Output pairs are `(left id, right id)`, sorted — the two id spaces may
/// overlap, so no `a < b` ordering is implied.
pub fn vj_join_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    vj_rs_flavour(
        cluster,
        left,
        right,
        config,
        GroupJoinStyle::Indexed,
        "vj-rs",
    )
}

/// VJ-NL over two relations (R-S join), nested-loop verification per group.
/// Output pairs are `(left id, right id)`, sorted.
pub fn vj_nl_join_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    vj_rs_flavour(
        cluster,
        left,
        right,
        config,
        GroupJoinStyle::NestedLoop,
        "vj-nl-rs",
    )
}

/// VJ-NL with repartitioning of posting lists longer than the configured
/// `partition_threshold` δ (Algorithm 3) — the standalone version of CL-P's
/// joining machinery.
pub fn vj_repartitioned_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JoinConfig,
) -> Result<JoinOutcome, JoinError> {
    vj_flavour(
        cluster,
        data,
        config,
        GroupJoinStyle::NestedLoop,
        Some(config.partition_threshold),
        "vj-p",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::brute_force_join;
    use minispark::ClusterConfig;
    use topk_datagen::CorpusProfile;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4))
    }

    fn corpus() -> Vec<Ranking> {
        CorpusProfile::dblp_like(300, 10).generate()
    }

    #[test]
    fn vj_matches_brute_force() {
        let c = cluster();
        let data = corpus();
        for theta in [0.1, 0.3] {
            let expected = brute_force_join(&c, &data, theta).unwrap().pairs;
            let got = vj_join(&c, &data, &JoinConfig::new(theta)).unwrap().pairs;
            assert_eq!(got, expected, "θ = {theta}");
        }
    }

    #[test]
    fn vj_nl_matches_brute_force() {
        let c = cluster();
        let data = corpus();
        let expected = brute_force_join(&c, &data, 0.3).unwrap().pairs;
        let got = vj_nl_join(&c, &data, &JoinConfig::new(0.3)).unwrap().pairs;
        assert_eq!(got, expected);
    }

    #[test]
    fn repartitioned_result_is_invariant_to_delta() {
        let c = cluster();
        let data = corpus();
        let expected = brute_force_join(&c, &data, 0.3).unwrap().pairs;
        for delta in [1, 5, 50, 10_000] {
            let cfg = JoinConfig::new(0.3).with_partition_threshold(delta);
            let got = vj_repartitioned_join(&c, &data, &cfg).unwrap().pairs;
            assert_eq!(got, expected, "δ = {delta}");
        }
    }

    #[test]
    fn repartitioning_actually_splits_lists() {
        let c = cluster();
        let data = corpus();
        let cfg = JoinConfig::new(0.3).with_partition_threshold(5);
        let outcome = vj_repartitioned_join(&c, &data, &cfg).unwrap();
        assert!(outcome.stats.posting_lists_split > 0);
        assert!(outcome.stats.rs_joins > 0);
    }

    #[test]
    fn fixed_skew_budget_never_changes_the_result_set() {
        // ISSUE 5, satellite 4: splitting + stealing must be invisible in
        // the output, for any budget, on both kernel styles.
        use minispark::SkewBudget;
        let c = cluster();
        let data = corpus();
        let expected = vj_join(&c, &data, &JoinConfig::new(0.3)).unwrap().pairs;
        for budget in [1usize, 2, 3, 7, 64, 100_000] {
            for nested_loop in [false, true] {
                let cfg = JoinConfig::new(0.3).with_skew(SkewBudget::Fixed(budget));
                let outcome = if nested_loop {
                    vj_nl_join(&c, &data, &cfg).unwrap()
                } else {
                    vj_join(&c, &data, &cfg).unwrap()
                };
                assert_eq!(
                    outcome.pairs, expected,
                    "budget = {budget}, nested_loop = {nested_loop}"
                );
                if budget <= 3 {
                    // Small budgets must actually split and chunk.
                    assert!(outcome.stats.posting_lists_split > 0, "budget = {budget}");
                    assert!(outcome.stats.skew_chunks > 0, "budget = {budget}");
                }
            }
        }
    }

    #[test]
    fn auto_skew_budget_splits_hot_groups_without_changing_results() {
        // A corpus where every ranking leads with hot item 1: under the
        // rank-ordered prefix the token-1 posting list holds the whole
        // corpus, while per-family tokens form hundreds of tiny groups —
        // exactly the shape `SkewBudget::Auto`'s sampling pass must detect.
        use minispark::SkewBudget;
        use topk_rankings::PrefixKind;
        let data: Vec<Ranking> = (0..240u64)
            .map(|i| {
                let family = (i / 2) as u32;
                let mut items: Vec<u32> = vec![1];
                items.extend((0..9).map(|j| 10 + family * 9 + j));
                if i % 2 == 1 {
                    items.swap(1, 2); // near-duplicate of its even sibling
                }
                Ranking::new(i, items).unwrap()
            })
            .collect();
        let c = cluster();
        let base = JoinConfig::new(0.1).with_prefix(PrefixKind::Ordered);
        let off = vj_join(&c, &data, &base).unwrap();
        let auto = vj_join(&c, &data, &base.clone().with_skew(SkewBudget::Auto)).unwrap();
        assert_eq!(auto.pairs, off.pairs);
        assert!(
            !auto.pairs.is_empty(),
            "sibling pairs are within θ by construction"
        );
        assert_eq!(off.stats.skew_chunks, 0, "Off must never split");
        assert!(
            auto.stats.posting_lists_split > 0 && auto.stats.skew_chunks > 0,
            "Auto must split the hot token-1 group: {:?}",
            auto.stats
        );
    }

    #[test]
    fn position_filter_changes_work_but_not_results() {
        let c = cluster();
        let data = corpus();
        // The filter prunes on a shared-item rank difference > θ_raw / 2;
        // for k = 10 that bound is below the maximum possible difference
        // (k − 1 = 9) only for θ < 2/(k+1) ≈ 0.18, so test at θ = 0.1.
        let with = vj_nl_join(&c, &data, &JoinConfig::new(0.1)).unwrap();
        let without =
            vj_nl_join(&c, &data, &JoinConfig::new(0.1).with_position_filter(false)).unwrap();
        assert_eq!(with.pairs, without.pairs);
        assert!(with.stats.position_pruned > 0);
        assert!(with.stats.verified < without.stats.verified);
    }

    #[test]
    fn ordered_prefix_matches_overlap_prefix() {
        use topk_rankings::PrefixKind;
        let c = cluster();
        let data = corpus();
        let overlap = vj_nl_join(&c, &data, &JoinConfig::new(0.2)).unwrap();
        let ordered = vj_nl_join(
            &c,
            &data,
            &JoinConfig::new(0.2).with_prefix(PrefixKind::Ordered),
        )
        .unwrap();
        assert_eq!(overlap.pairs, ordered.pairs);
    }

    #[test]
    fn empty_dataset() {
        let c = cluster();
        let outcome = vj_join(&c, &[], &JoinConfig::new(0.3)).unwrap();
        assert!(outcome.pairs.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let c = cluster();
        let data = corpus();
        let outcome = vj_join(&c, &data, &JoinConfig::new(0.3)).unwrap();
        assert!(outcome.stats.candidates > 0);
        assert!(outcome.stats.verified > 0);
        assert!(outcome.stats.result_pairs as usize >= outcome.pairs.len());
    }
}
