//! Runtime invariant checks for the join pipelines, complementing
//! [`topk_rankings::invariants`] one layer up: these guard the *dataflow*
//! facts (CL-P sub-partition sizes, centroid threshold ordering, result-pair
//! normalization) rather than the distance arithmetic.
//!
//! All checks are `debug_assert!`-backed: zero cost in release builds, armed
//! in every `cargo test` and figure smoke run.

/// Checks that a CL-P sub-partition respects the partitioning threshold δ:
/// Algorithm 3 splits an oversized posting list into chunks of **at most** δ
/// entries, and a chunk must be non-empty to be worth shipping (debug builds
/// only).
#[inline]
pub fn check_subpartition(len: usize, delta: usize) {
    debug_assert!(
        (1..=delta).contains(&len),
        "CL-P invariant violated: sub-partition of {len} entries outside [1, δ = {delta}]"
    );
}

/// Checks Lemma 5.1/5.3's threshold ordering for the centroid join:
/// `θ_ss ≤ θ_ms ≤ θ_o` must hold or the per-type relaxation would *tighten*
/// a threshold and drop true pairs (debug builds only).
#[inline]
pub fn check_centroid_thresholds(theta_ss: u64, theta_ms: u64, theta_o: u64) {
    debug_assert!(
        theta_ss <= theta_ms && theta_ms <= theta_o,
        "Lemma 5.3 invariant violated: need θ_ss ≤ θ_ms ≤ θ_o, got {theta_ss}, {theta_ms}, {theta_o}"
    );
}

/// Checks that a result pair is normalized (`a < b`; in particular no
/// self-pair), the representation every join promises (debug builds only).
#[inline]
pub fn check_pair_normalized(a: u64, b: u64) {
    debug_assert!(
        a < b,
        "pair invariant violated: result pair ({a}, {b}) is not ordered a < b"
    );
}

/// Checks that a result pair is normalized under the `(relation, id)` order
/// the relation-tagged pipeline promises: strictly increasing record keys,
/// so a self-join pair is id-ordered and an R-S pair always leads with the
/// left relation — even when the two id spaces overlap (debug builds only).
#[inline]
pub fn check_tagged_pair_normalized(a: (u8, u64), b: (u8, u64)) {
    debug_assert!(
        a < b,
        "pair invariant violated: result pair {a:?}, {b:?} is not ordered by (relation, id)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass() {
        check_subpartition(1, 1);
        check_subpartition(3, 5);
        check_centroid_thresholds(6, 9, 12);
        check_centroid_thresholds(6, 6, 6);
        check_pair_normalized(1, 2);
        check_tagged_pair_normalized((0, 1), (0, 2));
        // An R-S pair with overlapping (even equal) ids is normalized as
        // long as the left relation leads.
        check_tagged_pair_normalized((0, 4), (1, 4));
        check_tagged_pair_normalized((0, 9), (1, 2));
    }

    #[test]
    #[should_panic(expected = "CL-P invariant")]
    fn oversized_subpartition_trips() {
        check_subpartition(6, 5);
    }

    #[test]
    #[should_panic(expected = "CL-P invariant")]
    fn empty_subpartition_trips() {
        check_subpartition(0, 5);
    }

    #[test]
    #[should_panic(expected = "Lemma 5.3 invariant")]
    fn inverted_thresholds_trip() {
        check_centroid_thresholds(9, 6, 12);
    }

    #[test]
    #[should_panic(expected = "pair invariant")]
    fn self_pair_trips() {
        check_pair_normalized(4, 4);
    }

    #[test]
    #[should_panic(expected = "pair invariant")]
    fn right_leading_tagged_pair_trips() {
        check_tagged_pair_normalized((1, 2), (0, 9));
    }
}
