//! Distributed similarity joins over top-k rankings — a from-scratch Rust
//! reproduction of Milchevski & Michel, *“Distributed Similarity Joins over
//! Top-K Rankings”*, EDBT 2020, executing on the [`minispark`] dataflow
//! engine instead of Apache Spark.
//!
//! # Algorithms
//!
//! | Function | Paper name | Idea |
//! |---|---|---|
//! | [`vj_join`] | VJ | Vernica-Join adapted to rankings: frequency ordering, overlap-prefix filtering, per-token groups, inverted-index verification with a position filter (§4) |
//! | [`vj_nl_join`] | VJ-NL | same partitioning, iterator nested-loop verification (§4.1) |
//! | [`cl_join`] | CL | Ordering → Clustering (θc) → centroid Joining (θ + 2θc, Lemma 5.1/5.3) → triangle-filtered Expansion (§5) |
//! | [`clp_join`] | CL-P | CL plus repartitioning of oversized posting lists (Algorithm 3, §6) |
//! | [`vj_repartitioned_join`] | — | the repartitioned join standalone (ablation) |
//! | [`brute_force_join`] | — | exact quadratic ground truth |
//!
//! All of them return the identical pair set — an invariant enforced by this
//! repository's test suite against the brute-force baseline.
//!
//! # Two-relation (R-S) joins and arrivals
//!
//! Every driver also has an R-S entry point joining two relations whose id
//! spaces may overlap: [`vj_join_rs`], [`vj_nl_join_rs`], [`cl_join_rs`],
//! [`jaccard_vj_join_rs`], [`varlen_join_rs`], with
//! [`brute_force_join_rs`] as ground truth. For arrival streams against a
//! standing corpus, see [`ArrivalJoin`].
//!
//! # Example
//!
//! ```
//! use minispark::{Cluster, ClusterConfig};
//! use topk_rankings::Ranking;
//! use topk_simjoin::{cl_join, JoinConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::local(4));
//! let data = vec![
//!     Ranking::new(1, vec![1, 2, 3, 4, 5]).unwrap(),
//!     Ranking::new(2, vec![2, 1, 3, 4, 5]).unwrap(),
//!     Ranking::new(3, vec![9, 8, 7, 6, 5]).unwrap(),
//! ];
//! let outcome = cl_join(&cluster, &data, &JoinConfig::new(0.2)).unwrap();
//! assert_eq!(outcome.pairs, vec![(1, 2)]);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod baseline;
pub mod centroid_join;
pub mod cl;
pub mod clustering;
pub mod config;
pub mod expansion;
pub mod index;
pub mod invariants;
pub mod jaccard_join;
pub mod kernels;
pub mod pipeline;
pub mod report;
pub mod serving;
pub mod stats;
pub mod varlen_join;
pub mod vj;
pub mod wal;

use std::time::Duration;

pub use arrivals::ArrivalJoin;
pub use baseline::{brute_force_join, brute_force_join_rs};
pub use cl::{cl_join, cl_join_rs, clp_join};
pub use config::JoinConfig;
pub use index::RankingIndex;
pub use jaccard_join::{
    jaccard_brute_force, jaccard_brute_force_rs, jaccard_cl_join, jaccard_clp_join,
    jaccard_vj_join, jaccard_vj_join_rs, JaccardConfig,
};
pub use minispark::SkewBudget;
pub use report::{runs_to_json, RunReport, RUN_REPORT_SCHEMA};
pub use serving::{
    serving_router, ReplayStats, ServingConfig, ServingError, ServingIndex, ServingServer,
    ServingStats, UpsertOutcome,
};
pub use stats::{JoinStats, StatsSnapshot};
pub use varlen_join::{
    varlen_brute_force, varlen_brute_force_rs, varlen_join, varlen_join_rs,
    varlen_join_rs_with_skew, varlen_join_with_skew,
};
pub use vj::{vj_join, vj_join_rs, vj_nl_join, vj_nl_join_rs, vj_repartitioned_join};
pub use wal::{WalError, WalRecord, WalReplay, WalStore};

use minispark::Cluster;
use topk_rankings::{Ranking, RankingId};

/// Errors raised by the join entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// A threshold was outside `[0, 1]` or not finite.
    InvalidThreshold(f64),
    /// The partitioning threshold δ was zero.
    InvalidPartitionThreshold,
    /// The dataset mixes ranking lengths (the paper works with fixed-length
    /// rankings; for variable lengths the distance bounds would have to be
    /// length-pair specific, see footnote 1 of the paper).
    MixedRankingLengths {
        /// Length of the first ranking seen.
        expected: usize,
        /// The conflicting length.
        found: usize,
    },
    /// Two rankings share an id. Ids key the cluster tables and the result
    /// pairs, so they must be unique within a dataset.
    DuplicateRankingId(u64),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::InvalidThreshold(t) => {
                write!(f, "threshold {t} is not a normalized distance in [0, 1]")
            }
            JoinError::InvalidPartitionThreshold => {
                write!(f, "the partitioning threshold δ must be at least 1")
            }
            JoinError::MixedRankingLengths { expected, found } => write!(
                f,
                "dataset mixes ranking lengths (k = {expected} and k = {found})"
            ),
            JoinError::DuplicateRankingId(id) => {
                write!(f, "ranking id {id} appears more than once in the dataset")
            }
        }
    }
}

impl std::error::Error for JoinError {}

/// Result of a join run: the (sorted, deduplicated) id pairs, the filter
/// counters, and the wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    /// All result pairs, sorted. Self-joins normalize to `(a, b)` with
    /// `a < b`; R-S joins (`*_rs` entry points) emit `(left id, right id)`
    /// — no `a < b` ordering is implied there, because the two relations'
    /// id spaces may overlap.
    pub pairs: Vec<(RankingId, RankingId)>,
    /// Filter/verification counters.
    pub stats: StatsSnapshot,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl JoinOutcome {
    /// An empty outcome (empty input dataset).
    pub fn empty(elapsed: Duration) -> Self {
        Self {
            pairs: Vec::new(),
            stats: StatsSnapshot::default(),
            elapsed,
        }
    }
}

/// The algorithms under investigation (§7), as a dispatchable enum for
/// harnesses and examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Exact quadratic baseline.
    BruteForce,
    /// Vernica Join with per-group inverted indexes.
    Vj,
    /// Vernica Join with nested-loop (iterator) verification.
    VjNl,
    /// VJ-NL with posting-list repartitioning (ablation target).
    VjRepartitioned,
    /// The clustering algorithm.
    Cl,
    /// The clustering algorithm with repartitioning.
    ClP,
}

impl Algorithm {
    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::BruteForce => "BF",
            Algorithm::Vj => "VJ",
            Algorithm::VjNl => "VJ-NL",
            Algorithm::VjRepartitioned => "VJ-P",
            Algorithm::Cl => "CL",
            Algorithm::ClP => "CL-P",
        }
    }

    /// The four algorithms compared throughout the paper's evaluation.
    pub fn paper_lineup() -> [Algorithm; 4] {
        [
            Algorithm::Vj,
            Algorithm::VjNl,
            Algorithm::Cl,
            Algorithm::ClP,
        ]
    }

    /// Runs the algorithm.
    pub fn run(
        &self,
        cluster: &Cluster,
        data: &[Ranking],
        config: &JoinConfig,
    ) -> Result<JoinOutcome, JoinError> {
        match self {
            Algorithm::BruteForce => brute_force_join(cluster, data, config.theta),
            Algorithm::Vj => vj_join(cluster, data, config),
            Algorithm::VjNl => vj_nl_join(cluster, data, config),
            Algorithm::VjRepartitioned => vj_repartitioned_join(cluster, data, config),
            Algorithm::Cl => cl_join(cluster, data, config),
            Algorithm::ClP => clp_join(cluster, data, config),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minispark::ClusterConfig;

    #[test]
    fn algorithm_names_match_the_paper() {
        assert_eq!(Algorithm::Vj.name(), "VJ");
        assert_eq!(Algorithm::VjNl.name(), "VJ-NL");
        assert_eq!(Algorithm::Cl.name(), "CL");
        assert_eq!(Algorithm::ClP.name(), "CL-P");
        assert_eq!(Algorithm::paper_lineup().len(), 4);
    }

    #[test]
    fn all_algorithms_agree_on_a_tiny_dataset() {
        let cluster = Cluster::new(ClusterConfig::local(2));
        let data = vec![
            Ranking::new(1, vec![1, 2, 3, 4, 5]).unwrap(),
            Ranking::new(2, vec![2, 1, 3, 4, 5]).unwrap(),
            Ranking::new(3, vec![1, 2, 3, 5, 4]).unwrap(),
            Ranking::new(4, vec![9, 8, 7, 6, 1]).unwrap(),
        ];
        let config = JoinConfig::new(0.2).with_partition_threshold(2);
        let expected = Algorithm::BruteForce
            .run(&cluster, &data, &config)
            .unwrap()
            .pairs;
        for algo in [
            Algorithm::Vj,
            Algorithm::VjNl,
            Algorithm::VjRepartitioned,
            Algorithm::Cl,
            Algorithm::ClP,
        ] {
            let got = algo.run(&cluster, &data, &config).unwrap().pairs;
            assert_eq!(got, expected, "{}", algo.name());
        }
    }

    #[test]
    fn join_error_messages_are_informative() {
        assert!(JoinError::InvalidThreshold(1.5).to_string().contains("1.5"));
        assert!(JoinError::InvalidPartitionThreshold
            .to_string()
            .contains("δ"));
        let e = JoinError::MixedRankingLengths {
            expected: 10,
            found: 25,
        };
        assert!(e.to_string().contains("10") && e.to_string().contains("25"));
    }
}
