//! Join configuration.

use minispark::SkewBudget;
use topk_rankings::PrefixKind;

/// Parameters of a similarity-join run (all thresholds normalized to
/// `[0, 1]`, as in the paper's evaluation).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinConfig {
    /// The join distance threshold θ.
    pub theta: f64,
    /// The clustering threshold θc of CL/CL-P (§5; the paper recommends
    /// values below 0.05 and uses 0.03 throughout).
    pub cluster_threshold: f64,
    /// The partitioning threshold δ of CL-P (§6): posting lists longer than
    /// this are split into sub-partitions of at most δ entries.
    pub partition_threshold: usize,
    /// Number of reduce-side partitions for wide operations; `0` uses the
    /// cluster's `default_partitions`.
    pub partitions: usize,
    /// Which prefix derivation to use (§4 offers both). `Overlap` requires —
    /// and enables — the frequency reordering; `Ordered` keeps the original
    /// rank order.
    pub prefix: PrefixKind,
    /// Whether the position filter (ref. 19 of the paper, §4) is applied during candidate
    /// verification.
    pub use_position_filter: bool,
    /// Apply the triangle-inequality bounds in the expansion phase and for
    /// cluster-internal member pairs (§5.3). Disabling verifies every
    /// expansion candidate — an ablation knob quantifying what the metric
    /// property buys.
    pub use_triangle_bounds: bool,
    /// Apply Lemma 5.3's per-centroid-type thresholds in the joining phase.
    /// Disabling joins every centroid pair at the full θ + 2θc — the
    /// ablation for the singleton optimization.
    pub use_lemma53: bool,
    /// Follow the paper's Algorithm 1 literally and emit singleton-centroid
    /// prefixes sized for θ (instead of θ + θc).
    ///
    /// The literal variant is **potentially incomplete**: a pair
    /// `(c_m, c_s)` must be retrieved up to distance θ + θc (Lemma 5.3,
    /// case 2), and prefix-filter completeness requires *both* prefixes to
    /// cover the pair's threshold — a θ-sized singleton prefix does not.
    /// The default (`false`) sizes singleton prefixes for θ + θc, which is
    /// sound and still shorter than the non-singleton θ + 2·θc prefix,
    /// preserving the lemma's intent. See DESIGN.md.
    pub strict_paper_prefixes: bool,
    /// Skew handling for the token-grouped join phases (DESIGN.md §11):
    /// `Off` (default) joins each prefix-token group as one task, `Fixed(b)`
    /// splits groups larger than `b` into ≤-b sub-partitions à la CL-P, and
    /// `Auto` samples the token stream first and derives the budget from the
    /// cluster's slot count and the estimated p95 group size. Independent of
    /// [`partition_threshold`](Self::partition_threshold), which is CL-P's
    /// always-on δ; `skew` is the opt-in for every *other* driver (VJ,
    /// VJ-NL, CL's centroid join, the Jaccard joins, the varlen join).
    pub skew: SkewBudget,
}

impl JoinConfig {
    /// A configuration with the given θ and the paper's recommended defaults
    /// (θc = 0.03, position filter on, overlap prefix).
    pub fn new(theta: f64) -> Self {
        Self {
            theta,
            cluster_threshold: 0.03,
            partition_threshold: 2_000,
            partitions: 0,
            prefix: PrefixKind::Overlap,
            use_position_filter: true,
            use_triangle_bounds: true,
            use_lemma53: true,
            strict_paper_prefixes: false,
            skew: SkewBudget::Off,
        }
    }

    /// Sets the skew-handling policy for the token-grouped join phases.
    pub fn with_skew(mut self, skew: SkewBudget) -> Self {
        self.skew = skew;
        self
    }

    /// Enables/disables the expansion triangle bounds (ablation).
    pub fn with_triangle_bounds(mut self, enabled: bool) -> Self {
        self.use_triangle_bounds = enabled;
        self
    }

    /// Enables/disables Lemma 5.3's mixed centroid thresholds (ablation).
    pub fn with_lemma53(mut self, enabled: bool) -> Self {
        self.use_lemma53 = enabled;
        self
    }

    /// Sets the clustering threshold θc.
    pub fn with_cluster_threshold(mut self, theta_c: f64) -> Self {
        self.cluster_threshold = theta_c;
        self
    }

    /// Sets the partitioning threshold δ.
    pub fn with_partition_threshold(mut self, delta: usize) -> Self {
        self.partition_threshold = delta;
        self
    }

    /// Sets the number of reduce-side partitions.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Selects the prefix derivation.
    pub fn with_prefix(mut self, prefix: PrefixKind) -> Self {
        self.prefix = prefix;
        self
    }

    /// Enables/disables the position filter.
    pub fn with_position_filter(mut self, enabled: bool) -> Self {
        self.use_position_filter = enabled;
        self
    }

    /// Validates the configuration against a dataset's ranking length.
    pub fn validate(&self) -> Result<(), crate::JoinError> {
        if !(0.0..=1.0).contains(&self.theta) || !self.theta.is_finite() {
            return Err(crate::JoinError::InvalidThreshold(self.theta));
        }
        if !(0.0..=1.0).contains(&self.cluster_threshold) || !self.cluster_threshold.is_finite() {
            return Err(crate::JoinError::InvalidThreshold(self.cluster_threshold));
        }
        if self.partition_threshold == 0 || self.skew == SkewBudget::Fixed(0) {
            return Err(crate::JoinError::InvalidPartitionThreshold);
        }
        Ok(())
    }

    /// The reduce-side partition count, falling back to the cluster default.
    pub fn effective_partitions(&self, cluster_default: usize) -> usize {
        if self.partitions == 0 {
            cluster_default.max(1)
        } else {
            self.partitions
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = JoinConfig::new(0.3);
        assert_eq!(c.theta, 0.3);
        assert_eq!(c.cluster_threshold, 0.03);
        assert!(c.use_position_filter);
        assert_eq!(c.prefix, PrefixKind::Overlap);
        assert!(c.use_triangle_bounds);
        assert!(c.use_lemma53);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let c = JoinConfig::new(0.2)
            .with_cluster_threshold(0.05)
            .with_partition_threshold(500)
            .with_partitions(32)
            .with_prefix(PrefixKind::Ordered)
            .with_position_filter(false);
        assert_eq!(c.cluster_threshold, 0.05);
        assert_eq!(c.partition_threshold, 500);
        assert_eq!(c.partitions, 32);
        assert_eq!(c.prefix, PrefixKind::Ordered);
        assert!(!c.use_position_filter);
        let c = c.with_triangle_bounds(false).with_lemma53(false);
        assert!(!c.use_triangle_bounds);
        assert!(!c.use_lemma53);
    }

    #[test]
    fn validation_rejects_bad_thresholds() {
        assert!(JoinConfig::new(-0.1).validate().is_err());
        assert!(JoinConfig::new(1.5).validate().is_err());
        assert!(JoinConfig::new(f64::NAN).validate().is_err());
        assert!(JoinConfig::new(0.3)
            .with_cluster_threshold(2.0)
            .validate()
            .is_err());
        assert!(JoinConfig::new(0.3)
            .with_partition_threshold(0)
            .validate()
            .is_err());
    }

    #[test]
    fn effective_partitions_fallback() {
        assert_eq!(JoinConfig::new(0.3).effective_partitions(64), 64);
        assert_eq!(
            JoinConfig::new(0.3)
                .with_partitions(8)
                .effective_partitions(64),
            8
        );
    }
}
