//! Per-group join kernels.
//!
//! After the prefix-emission shuffle, every reduce-side group holds the
//! rankings whose prefix contains one particular token. The kernels here
//! find the qualifying pairs inside one group (or across two sub-partitions
//! of a group, for CL-P's R-S joins), in the two styles §4 compares:
//!
//! * [`join_group_indexed`] — VJ's style: build a group-local inverted index
//!   over the members' prefixes and probe it (the per-reducer PPJoin-like
//!   pass of Vernica et al.),
//! * [`join_group_nested_loop`] — VJ-NL's style (§4.1): stream ordered pairs
//!   with iterators, applying the position filter on the group token, no
//!   materialized index.
//!
//! Both produce the same pair set; the indexed variant pays index
//! construction and hashing, the nested-loop variant pays O(|group|²)
//! candidate enumeration — exactly the trade-off the paper measures.
//!
//! Kernels emit entry-index triples `(i, j, distance)` with
//! `entries[i].id < entries[j].id`; callers map them to their output type.
//! Cross-group duplicates are removed later by a global `distinct`, as in
//! the paper's final phase.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

use topk_rankings::verify::{verify_candidate, Verification};
use topk_rankings::{ItemId, OrderedRanking, Relation};

use crate::stats::JoinStats;

/// One ranking's occurrence in a token group: the token's original rank in
/// the ranking, the centroid-type tag (only meaningful in the centroid
/// join), the source relation (only meaningful in R-S joins), and the
/// ranking itself.
#[derive(Debug, Clone)]
pub struct TokenEntry {
    /// Original rank of the group token within `ranking`.
    pub rank: u16,
    /// Whether this entry is a singleton centroid (Algorithm 1); `false` in
    /// plain self-joins.
    pub singleton: bool,
    /// Which input relation the ranking came from; [`Relation::Left`] in
    /// self-joins.
    pub relation: Relation,
    /// The ranking, shared across groups.
    pub ranking: Arc<OrderedRanking>,
}

impl TokenEntry {
    /// A plain (non-centroid-tagged, left-relation) entry.
    pub fn plain(rank: u16, ranking: Arc<OrderedRanking>) -> Self {
        Self {
            rank,
            singleton: false,
            relation: Relation::Left,
            ranking,
        }
    }

    /// A relation-tagged entry for bipartite (R-S) joins.
    pub fn tagged(rank: u16, relation: Relation, ranking: Arc<OrderedRanking>) -> Self {
        Self {
            rank,
            singleton: false,
            relation,
            ranking,
        }
    }

    /// The entry's record identity: `(relation, ranking id)`. In an R-S join
    /// the two id spaces may overlap, so the relation is part of the key.
    #[inline]
    pub fn record_key(&self) -> (Relation, u64) {
        (self.relation, self.ranking.id())
    }
}

/// Whether a token group joins one relation against itself or pairs the two
/// sides of an R-S join.
///
/// The mode decides which pairs a kernel skips *before* the candidate
/// counter: a self-join never relates a ranking id to itself, while a
/// bipartite join only emits cross-relation pairs — equal ids *across*
/// relations are legitimate results there (the id spaces are independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinMode {
    /// Join a single relation against itself (every driver's classic path).
    SelfJoin,
    /// Join the `Left` relation against the `Right` relation; same-relation
    /// pairs are skipped entirely.
    Bipartite,
}

impl JoinMode {
    /// Whether the pair `(a, b)` is skipped under this mode (checked before
    /// the candidate counter, so skipped pairs never appear in stats).
    #[inline]
    pub fn skips(self, a: &TokenEntry, b: &TokenEntry) -> bool {
        match self {
            JoinMode::SelfJoin => a.ranking.id() == b.ranking.id(),
            JoinMode::Bipartite => a.relation == b.relation,
        }
    }
}

/// When the decode interner holds this many entries, dead `Weak`s are swept
/// before inserting the next one (live entries are genuinely shared and
/// stay).
const DECODE_CACHE_SWEEP_LEN: usize = 8192;

thread_local! {
    /// Per-task-thread interner for spill-replayed rankings: ranking id →
    /// weak handle to the decoded [`OrderedRanking`]. A ranking occurs once
    /// per prefix token in a shuffle, so replaying a spilled partition
    /// without interning rebuilds `avg prefix length` copies of every
    /// ranking — the interner restores the map-side `Arc` sharing. `Weak`
    /// entries keep the cache from pinning rankings beyond the partitions
    /// that reference them.
    // alloc(empty HashMap never allocates; filled only on spill replay)
    static DECODE_INTERNER: RefCell<HashMap<u64, Weak<OrderedRanking>>> =
        RefCell::new(HashMap::new());
}

/// Decodes an `OrderedRanking` through the thread's interner: occurrences of
/// one ranking id within a partition replay share a single allocation. The
/// cached copy is only reused when its pairs match the decoded bytes, so a
/// (never expected) id collision degrades to a fresh allocation, not to
/// wrong data.
fn intern_decoded(id: u64, pairs: Vec<(u32, u16)>) -> Arc<OrderedRanking> {
    DECODE_INTERNER.with(|cell| {
        let mut cache = cell.borrow_mut();
        if let Some(shared) = cache.get(&id).and_then(Weak::upgrade) {
            if shared.pairs() == pairs.as_slice() {
                return shared;
            }
        }
        let fresh = Arc::new(OrderedRanking::from_pairs(id, pairs));
        if cache.len() >= DECODE_CACHE_SWEEP_LEN {
            cache.retain(|_, weak| weak.strong_count() > 0);
        }
        cache.insert(id, Arc::downgrade(&fresh));
        fresh
    })
}

/// Spill encoding (see `minispark::spill`): rank, singleton tag, relation
/// tag, ranking id and the `(item, original_rank)` pairs. Decoding rebuilds
/// the `OrderedRanking` through a per-thread interner, so the `Arc` sharing
/// that serialization naturally loses is restored on replay instead of
/// multiplying resident memory by the average prefix length.
impl minispark::Codec for TokenEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rank.encode(out);
        self.singleton.encode(out);
        self.relation.as_u8().encode(out);
        self.ranking.id().encode(out);
        // alloc(spill encode only runs under memory pressure, never on the fast path)
        self.ranking.pairs().to_vec().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Option<Self> {
        let rank = u16::decode(input)?;
        let singleton = bool::decode(input)?;
        let relation = Relation::from_u8(u8::decode(input)?);
        let id = u64::decode(input)?;
        let pairs = Vec::<(u32, u16)>::decode(input)?;
        Some(Self {
            rank,
            singleton,
            relation,
            ranking: intern_decoded(id, pairs),
        })
    }
}

/// Distance thresholds for pairs within a group.
#[derive(Debug, Clone, Copy)]
pub enum GroupThresholds {
    /// Self-joins: one threshold for every pair.
    Uniform(u64),
    /// The centroid join (Lemma 5.3): thresholds by the pair's centroid
    /// types — both non-singleton (`mm` = θ + 2θc), mixed (`ms` = θ + θc),
    /// both singleton (`ss` = θ).
    Mixed {
        /// Threshold for non-singleton / non-singleton pairs.
        mm: u64,
        /// Threshold for mixed pairs.
        ms: u64,
        /// Threshold for singleton / singleton pairs.
        ss: u64,
    },
}

impl GroupThresholds {
    /// The verification threshold for a pair with the given singleton tags.
    #[inline]
    pub fn for_pair(&self, a_singleton: bool, b_singleton: bool) -> u64 {
        match *self {
            GroupThresholds::Uniform(t) => t,
            GroupThresholds::Mixed { mm, ms, ss } => match (a_singleton, b_singleton) {
                (false, false) => mm,
                (true, true) => ss,
                _ => ms,
            },
        }
    }

    /// The largest threshold (used for sizing shared structures).
    pub fn max(&self) -> u64 {
        match *self {
            GroupThresholds::Uniform(t) => t,
            GroupThresholds::Mixed { mm, ms, ss } => mm.max(ms).max(ss),
        }
    }
}

/// Verifies one candidate pair through the shared kernel
/// ([`topk_rankings::verify::verify_candidate`]: position filter on the
/// shared token's ranks, then early-exit Footrule), recording the stats.
/// Returns the distance if the pair qualifies.
#[inline]
fn verify_pair(
    a: &TokenEntry,
    b: &TokenEntry,
    shared_ranks: (u16, u16),
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    stats: &JoinStats,
) -> Option<u64> {
    let threshold = thresholds.for_pair(a.singleton, b.singleton);
    JoinStats::bump(&stats.candidates);
    match verify_candidate(
        &a.ranking,
        &b.ranking,
        Some((shared_ranks.0 as usize, shared_ranks.1 as usize)),
        threshold,
        use_position_filter,
    ) {
        Verification::PositionPruned => {
            JoinStats::bump(&stats.position_pruned);
            None
        }
        Verification::Within(d) => {
            JoinStats::bump(&stats.verified);
            JoinStats::bump(&stats.result_pairs);
            Some(d)
        }
        Verification::DistanceExceeded => {
            JoinStats::bump(&stats.verified);
            None
        }
    }
}

/// Orders an entry-index pair by `(relation, ranking id)`. Within one
/// relation this is the classic id order; across relations the `Left` record
/// always comes first, so overlapping R/S id spaces cannot flip which
/// relation the first slot came from.
#[inline]
fn ordered_indices(entries: &[TokenEntry], i: usize, j: usize) -> (usize, usize) {
    // panics(callers pass entry indices — both i and j are < entries.len())
    if entries[i].record_key() < entries[j].record_key() {
        (i, j)
    } else {
        (j, i)
    }
}

/// Sentinel chain terminator for [`GroupScratch`] posting chains.
const NO_POSTING: u32 = u32::MAX;

/// One node of an intrusive posting chain in the flat arena: the entry it
/// refers to, the token's original rank in that entry, and the arena index
/// of the next posting for the same item.
#[derive(Debug, Clone, Copy)]
struct Posting {
    entry: u32,
    rank: u16,
    next: u32,
}

/// Reusable working memory for [`join_group_indexed`].
///
/// The kernel used to build a fresh `HashMap<ItemId, Vec<(usize, u16)>>` per
/// group — one map plus one `Vec` allocation per distinct prefix token, per
/// group, for the lifetime of the join. The scratch replaces the per-token
/// `Vec`s with intrusive chains in a single flat arena and the per-probe
/// `seen` clear loop with a generation counter, so a warm scratch runs the
/// kernel without allocating at all. One group's contents never leak into
/// the next: `begin_group` resets the arena and `next_probe` invalidates
/// every stamp by bumping the generation.
#[derive(Debug, Default)]
pub struct GroupScratch {
    /// Item id → arena index of the newest posting for that item.
    heads: HashMap<ItemId, u32>,
    /// Flat arena of posting-chain nodes, reused across groups.
    postings: Vec<Posting>,
    /// Entry indices in processing order, reused across groups.
    order: Vec<u32>,
    /// Per-entry stamp; an entry is "seen by the current probe" iff its
    /// stamp equals `generation`.
    seen_stamp: Vec<u32>,
    /// Current probe's stamp value; bumping it un-sees every entry in O(1).
    generation: u32,
}

impl GroupScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the scratch for a group of `n` entries.
    fn begin_group(&mut self, n: usize) {
        self.heads.clear();
        self.postings.clear();
        self.order.clear();
        if self.seen_stamp.len() < n {
            self.seen_stamp.resize(n, 0);
        }
    }

    /// Starts a new probe: returns the stamp that marks entries as seen by
    /// it. On the (astronomically rare) generation wrap the stamps are
    /// zeroed so stale stamps from 2³² probes ago can never alias.
    fn next_probe(&mut self) -> u32 {
        self.generation = match self.generation.checked_add(1) {
            Some(g) => g,
            None => {
                self.seen_stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
        self.generation
    }
}

thread_local! {
    /// Per-executor-thread [`GroupScratch`]: every group a thread processes
    /// reuses one arena instead of rebuilding the inverted index from
    /// nothing. Kernel closures run as `Fn` from multiple executor threads,
    /// so the scratch is thread-local rather than captured.
    static GROUP_SCRATCH: RefCell<GroupScratch> = RefCell::new(GroupScratch::new());
}

/// Runs `f` with the calling thread's reusable [`GroupScratch`].
///
/// This is how the pipelines thread the scratch into
/// [`join_group_indexed`]; tests that want a cold scratch can pass their own
/// `GroupScratch::new()` instead.
pub fn with_group_scratch<R>(f: impl FnOnce(&mut GroupScratch) -> R) -> R {
    GROUP_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// VJ-style kernel: index the group members' prefixes in a group-local
/// inverted index and probe it, verifying each distinct colliding pair once.
///
/// `prefix_len_of(singleton)` gives the prefix length of an entry (constant
/// for self-joins, type-dependent in the centroid join). `mode` selects the
/// skip rule: a self-join skips duplicate ranking ids, a bipartite join
/// skips same-relation pairs (see [`JoinMode`]). `scratch` is the reusable
/// index memory — see [`GroupScratch`] and [`with_group_scratch`].
pub fn join_group_indexed(
    entries: &[TokenEntry],
    prefix_len_of: impl Fn(bool) -> usize,
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    mode: JoinMode,
    stats: &JoinStats,
    scratch: &mut GroupScratch,
) -> Vec<(usize, usize, u64)> {
    // Group boundary: an interleaving point for schedule exploration (a
    // single relaxed-load branch when no hook is installed).
    minispark::sched::yield_point("kernel/indexed-group");
    // alloc(the output buffer — the kernel's only allocation; index memory is GroupScratch)
    let mut results = Vec::new();
    if entries.len() < 2 {
        return results;
    }
    scratch.begin_group(entries.len());
    // Process in ranking-id order so the index only ever holds ids no larger
    // than the probe's. The slot index breaks id ties, making the order
    // total — duplicate-id groups traverse identically on every run.
    // cast(group cardinality is far below u32::MAX — slot ids fit u32)
    scratch.order.extend(0..entries.len() as u32);
    scratch
        .order
        // panics(order holds exactly 0..entries.len() — every slot id is in range)
        .sort_unstable_by_key(|&i| (entries[i as usize].ranking.id(), i));

    for oi in 0..scratch.order.len() {
        // cast(order holds u32 slot ids — widening into usize)
        // panics(oi < order.len() by the loop bound; order ids are < entries.len())
        let probe_idx = scratch.order[oi] as usize;
        let probe = &entries[probe_idx];
        let p = prefix_len_of(probe.singleton);
        let stamp = scratch.next_probe();
        for &(item, rank) in probe.ranking.prefix(p) {
            let mut cursor: u32 = scratch.heads.get(&item).copied().unwrap_or(NO_POSTING);
            while cursor != NO_POSTING {
                let Posting {
                    entry,
                    rank: indexed_rank,
                    next,
                    // panics(cursor ≠ NO_POSTING is a valid posting id — chains only link inserted nodes)
                } = scratch.postings[cursor as usize];
                cursor = next;
                let indexed_idx = entry as usize;
                // panics(entry < entries.len(); seen_stamp is sized by begin_group)
                if scratch.seen_stamp[indexed_idx] == stamp {
                    continue;
                }
                // panics(entry < entries.len(); seen_stamp is sized by begin_group)
                scratch.seen_stamp[indexed_idx] = stamp;
                let indexed = &entries[indexed_idx];
                // A ranking can occur more than once in a group (duplicate
                // ids in the input) and a bipartite group never pairs
                // records of one relation; the mode's skip rule is applied
                // before the candidate counter so every kernel's stats
                // agree.
                if mode.skips(indexed, probe) {
                    continue;
                }
                if let Some(d) = verify_pair(
                    indexed,
                    probe,
                    (indexed_rank, rank),
                    thresholds,
                    use_position_filter,
                    stats,
                ) {
                    let (a, b) = ordered_indices(entries, indexed_idx, probe_idx);
                    results.push((a, b, d));
                }
            }
        }
        // Index the probe's prefix for subsequent (larger-id) members:
        // head-insert each token into its intrusive chain.
        for &(item, rank) in probe.ranking.prefix(p) {
            let head = scratch.heads.entry(item).or_insert(NO_POSTING);
            let node = Posting {
                // cast(probe_idx < entries.len(), which fits u32 — see the order construction)
                entry: probe_idx as u32,
                rank,
                next: *head,
            };
            // cast(posting count ≤ group size × prefix length — far below u32::MAX)
            *head = scratch.postings.len() as u32;
            scratch.postings.push(node);
        }
    }
    results
}

/// VJ-NL-style kernel: iterate all ordered pairs of the group, position
/// filter on the group token, verify with early exit — no index, no
/// per-group allocations beyond the output.
pub fn join_group_nested_loop(
    entries: &[TokenEntry],
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    mode: JoinMode,
    stats: &JoinStats,
) -> Vec<(usize, usize, u64)> {
    // Group boundary: interleaving point, see `join_group_indexed`.
    minispark::sched::yield_point("kernel/nested-loop-group");
    // alloc(the output buffer — the kernel's only allocation)
    let mut results = Vec::new();
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            // panics(loop bounds: i < j < entries.len())
            if mode.skips(&entries[i], &entries[j]) {
                continue;
            }
            if let Some(d) = verify_pair(
                // panics(loop bounds: i < j < entries.len())
                &entries[i],
                &entries[j],
                (entries[i].rank, entries[j].rank),
                thresholds,
                use_position_filter,
                stats,
            ) {
                let (a, b) = ordered_indices(entries, i, j);
                results.push((a, b, d));
            }
        }
    }
    results
}

/// R-S kernel (§6): pairs one sub-partition of a split posting list against
/// another. Used by CL-P's chunk-pair plans (`mode = SelfJoin`: the chunks
/// partition one relation, duplicate ids are skipped) and by the bipartite
/// pipelines' split hot groups (`mode = Bipartite`: only cross-relation
/// pairs are verified). Returns `(left_idx, right_idx, distance)` triples;
/// callers normalize pair order by `(relation, ranking id)`.
pub fn join_group_rs(
    left: &[TokenEntry],
    right: &[TokenEntry],
    thresholds: &GroupThresholds,
    use_position_filter: bool,
    mode: JoinMode,
    stats: &JoinStats,
) -> Vec<(usize, usize, u64)> {
    // Sub-partition boundary: interleaving point, see `join_group_indexed`.
    minispark::sched::yield_point("kernel/rs-group");
    // alloc(the output buffer — the kernel's only allocation)
    let mut results = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if mode.skips(a, b) {
                continue;
            }
            if let Some(d) = verify_pair(
                a,
                b,
                (a.rank, b.rank),
                thresholds,
                use_position_filter,
                stats,
            ) {
                results.push((i, j, d));
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_rankings::{FrequencyTable, Ranking};

    fn entry(id: u64, items: &[u32], token: u32) -> TokenEntry {
        let r = Ranking::new(id, items.to_vec()).unwrap();
        let ordered = OrderedRanking::by_frequency(&r, &FrequencyTable::default());
        let rank = ordered.rank_of(token).expect("token must be in ranking") as u16;
        TokenEntry::plain(rank, Arc::new(ordered))
    }

    fn tagged_entry(relation: Relation, id: u64, items: &[u32], token: u32) -> TokenEntry {
        let mut e = entry(id, items, token);
        e.relation = relation;
        e
    }

    fn group() -> Vec<TokenEntry> {
        // All contain token 1. Pairs within raw distance 8 (k = 5):
        // (1,2): one swap → 2; (1,3): item 5↔9 at last position → 2;
        // (2,3): differs by swap and item → 4. (1,4)/(2,4)/(3,4): far.
        vec![
            entry(1, &[1, 2, 3, 4, 5], 1),
            entry(2, &[2, 1, 3, 4, 5], 1),
            entry(3, &[1, 2, 3, 4, 9], 1),
            entry(4, &[5, 9, 8, 7, 1], 1),
        ]
    }

    fn pairs_of(results: &[(usize, usize, u64)], entries: &[TokenEntry]) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = results
            .iter()
            .map(|&(i, j, d)| (entries[i].ranking.id(), entries[j].ranking.id(), d))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn nested_loop_finds_expected_pairs() {
        let stats = JoinStats::default();
        let entries = group();
        let results = join_group_nested_loop(
            &entries,
            &GroupThresholds::Uniform(8),
            true,
            JoinMode::SelfJoin,
            &stats,
        );
        let pairs = pairs_of(&results, &entries);
        assert_eq!(pairs, vec![(1, 2, 2), (1, 3, 2), (2, 3, 4)]);
        let snap = stats.snapshot();
        assert_eq!(snap.candidates, 6);
        assert_eq!(snap.result_pairs, 3);
    }

    #[test]
    fn indexed_matches_nested_loop() {
        let entries = group();
        let stats_nl = JoinStats::default();
        let nl = pairs_of(
            &join_group_nested_loop(
                &entries,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::SelfJoin,
                &stats_nl,
            ),
            &entries,
        );
        let stats_ix = JoinStats::default();
        let ix = pairs_of(
            &join_group_indexed(
                &entries,
                |_| 3,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::SelfJoin,
                &stats_ix,
                &mut GroupScratch::new(),
            ),
            &entries,
        );
        assert_eq!(nl, ix);
    }

    #[test]
    fn indexed_skips_duplicate_ranking_ids_like_nested_loop() {
        // Regression: the indexed kernel used to verify (and emit) pairs of
        // entries carrying the same ranking id, which the nested-loop kernel
        // skips. Feed both kernels a group holding a duplicated ranking and
        // assert identical pair sets and identical candidate counts.
        let mut entries = group();
        entries.push(entry(2, &[2, 1, 3, 4, 5], 1)); // duplicate of id 2
        entries.push(entry(2, &[2, 1, 3, 4, 5], 1)); // and a third copy
        let stats_nl = JoinStats::default();
        let nl = pairs_of(
            &join_group_nested_loop(
                &entries,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::SelfJoin,
                &stats_nl,
            ),
            &entries,
        );
        let stats_ix = JoinStats::default();
        let ix = pairs_of(
            &join_group_indexed(
                &entries,
                |_| 3,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::SelfJoin,
                &stats_ix,
                &mut GroupScratch::new(),
            ),
            &entries,
        );
        assert_eq!(nl, ix);
        assert_eq!(
            stats_nl.snapshot().candidates,
            stats_ix.snapshot().candidates
        );
        // No emitted pair may relate a ranking id to itself.
        for &(i, j, _) in &join_group_indexed(
            &entries,
            |_| 3,
            &GroupThresholds::Uniform(8),
            true,
            JoinMode::SelfJoin,
            &JoinStats::default(),
            &mut GroupScratch::new(),
        ) {
            assert_ne!(entries[i].ranking.id(), entries[j].ranking.id());
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_state_across_groups() {
        // Run a big group, then a small unrelated one, through the same
        // scratch; the small group must behave exactly as with a cold
        // scratch.
        let mut scratch = GroupScratch::new();
        let big = group();
        join_group_indexed(
            &big,
            |_| 3,
            &GroupThresholds::Uniform(8),
            true,
            JoinMode::SelfJoin,
            &JoinStats::default(),
            &mut scratch,
        );
        let small = vec![entry(7, &[9, 8, 7, 6, 5], 9), entry(8, &[9, 8, 7, 6, 4], 9)];
        let stats_warm = JoinStats::default();
        let warm = pairs_of(
            &join_group_indexed(
                &small,
                |_| 3,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::SelfJoin,
                &stats_warm,
                &mut scratch,
            ),
            &small,
        );
        let stats_cold = JoinStats::default();
        let cold = pairs_of(
            &join_group_indexed(
                &small,
                |_| 3,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::SelfJoin,
                &stats_cold,
                &mut GroupScratch::new(),
            ),
            &small,
        );
        assert_eq!(warm, cold);
        assert_eq!(
            stats_warm.snapshot().candidates,
            stats_cold.snapshot().candidates
        );
    }

    #[test]
    fn scratch_generation_wrap_resets_stamps() {
        let mut scratch = GroupScratch::new();
        scratch.begin_group(3);
        scratch.generation = u32::MAX - 1;
        scratch.seen_stamp = vec![u32::MAX, 0, u32::MAX - 1];
        assert_eq!(scratch.next_probe(), u32::MAX);
        // Wrap: stamps must be zeroed so nothing aliases generation 1.
        assert_eq!(scratch.next_probe(), 1);
        assert!(scratch.seen_stamp.iter().all(|&s| s == 0));
    }

    #[test]
    fn decode_interns_repeated_rankings() {
        use minispark::Codec;
        let e = entry(42, &[1, 2, 3, 4, 5], 1);
        let mut bytes = Vec::new();
        e.encode(&mut bytes);
        e.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let first = TokenEntry::decode(&mut input).expect("first decode");
        let second = TokenEntry::decode(&mut input).expect("second decode");
        assert!(input.is_empty());
        assert_eq!(first.ranking, second.ranking);
        // The interner must hand back the same allocation for the replayed
        // occurrence, restoring the map-side Arc sharing.
        assert!(Arc::ptr_eq(&first.ranking, &second.ranking));
    }

    #[test]
    fn decode_interner_rejects_mismatched_pairs() {
        use minispark::Codec;
        // Two different rankings that (artificially) share an id: the
        // interner must fall back to fresh allocations, never alias them.
        let a = entry(77, &[1, 2, 3, 4, 5], 1);
        let b = entry(77, &[5, 4, 3, 2, 1], 1);
        let mut bytes = Vec::new();
        a.encode(&mut bytes);
        b.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let da = TokenEntry::decode(&mut input).expect("decode a");
        let db = TokenEntry::decode(&mut input).expect("decode b");
        assert!(!Arc::ptr_eq(&da.ranking, &db.ranking));
        assert_eq!(da.ranking.pairs(), a.ranking.pairs());
        assert_eq!(db.ranking.pairs(), b.ranking.pairs());
    }

    #[test]
    fn indexed_verifies_each_pair_at_most_once() {
        // Entries share many prefix tokens; the seen-set must prevent
        // re-verification per collision.
        let entries = vec![entry(1, &[1, 2, 3, 4, 5], 1), entry(2, &[1, 2, 3, 4, 6], 1)];
        let stats = JoinStats::default();
        let results = join_group_indexed(
            &entries,
            |_| 5, // full prefix → 5 shared tokens
            &GroupThresholds::Uniform(110),
            false,
            JoinMode::SelfJoin,
            &stats,
            &mut GroupScratch::new(),
        );
        assert_eq!(results.len(), 1);
        assert_eq!(stats.snapshot().candidates, 1);
    }

    #[test]
    fn position_filter_reduces_verifications() {
        let entries = group();
        let with = JoinStats::default();
        join_group_nested_loop(
            &entries,
            &GroupThresholds::Uniform(2),
            true,
            JoinMode::SelfJoin,
            &with,
        );
        let without = JoinStats::default();
        join_group_nested_loop(
            &entries,
            &GroupThresholds::Uniform(2),
            false,
            JoinMode::SelfJoin,
            &without,
        );
        assert!(with.snapshot().verified < without.snapshot().verified);
        assert_eq!(
            with.snapshot().result_pairs,
            without.snapshot().result_pairs
        );
    }

    #[test]
    fn mixed_thresholds_select_by_type() {
        let t = GroupThresholds::Mixed {
            mm: 30,
            ms: 20,
            ss: 10,
        };
        assert_eq!(t.for_pair(false, false), 30);
        assert_eq!(t.for_pair(true, false), 20);
        assert_eq!(t.for_pair(false, true), 20);
        assert_eq!(t.for_pair(true, true), 10);
        assert_eq!(t.max(), 30);
        assert_eq!(GroupThresholds::Uniform(7).max(), 7);
    }

    #[test]
    fn mixed_thresholds_gate_verification() {
        // Pair at distance 4: qualifies under mm = 4 but not under ss = 2.
        let mut a = entry(1, &[1, 2, 3, 4, 5], 1);
        let mut b = entry(2, &[2, 1, 4, 3, 5], 1);
        let stats = JoinStats::default();
        let thresholds = GroupThresholds::Mixed {
            mm: 4,
            ms: 3,
            ss: 2,
        };
        let both_m = join_group_nested_loop(
            &[a.clone(), b.clone()],
            &thresholds,
            false,
            JoinMode::SelfJoin,
            &stats,
        );
        assert_eq!(both_m.len(), 1);
        a.singleton = true;
        b.singleton = true;
        let both_s =
            join_group_nested_loop(&[a, b], &thresholds, false, JoinMode::SelfJoin, &stats);
        assert!(both_s.is_empty());
    }

    #[test]
    fn rs_kernel_joins_across_lists_only() {
        let left = vec![entry(1, &[1, 2, 3, 4, 5], 1)];
        let right = vec![entry(2, &[2, 1, 3, 4, 5], 1), entry(9, &[9, 8, 7, 6, 1], 1)];
        let stats = JoinStats::default();
        let results = join_group_rs(
            &left,
            &right,
            &GroupThresholds::Uniform(8),
            true,
            JoinMode::SelfJoin,
            &stats,
        );
        assert_eq!(results.len(), 1);
        let (i, j, d) = results[0];
        assert_eq!((left[i].ranking.id(), right[j].ranking.id(), d), (1, 2, 2));
    }

    #[test]
    fn kernels_handle_tiny_groups() {
        let stats = JoinStats::default();
        let one = vec![entry(1, &[1, 2, 3], 1)];
        assert!(join_group_nested_loop(
            &one,
            &GroupThresholds::Uniform(5),
            true,
            JoinMode::SelfJoin,
            &stats
        )
        .is_empty());
        assert!(join_group_indexed(
            &one,
            |_| 2,
            &GroupThresholds::Uniform(5),
            true,
            JoinMode::SelfJoin,
            &stats,
            &mut GroupScratch::new()
        )
        .is_empty());
        assert!(join_group_rs(
            &one,
            &[],
            &GroupThresholds::Uniform(5),
            true,
            JoinMode::SelfJoin,
            &stats
        )
        .is_empty());
        let empty: Vec<TokenEntry> = vec![];
        assert!(join_group_nested_loop(
            &empty,
            &GroupThresholds::Uniform(5),
            true,
            JoinMode::SelfJoin,
            &stats
        )
        .is_empty());
    }

    /// A mixed-relation group: the bipartite kernels must pair only across
    /// relations, and the left record must always land in the first slot —
    /// even when the right record's id is smaller or equal.
    fn bipartite_group() -> Vec<TokenEntry> {
        vec![
            tagged_entry(Relation::Left, 5, &[1, 2, 3, 4, 5], 1),
            tagged_entry(Relation::Left, 9, &[9, 8, 7, 6, 1], 1),
            tagged_entry(Relation::Right, 2, &[2, 1, 3, 4, 5], 1),
            // Shares id 5 with a left record — a legitimate pair in R-S mode.
            tagged_entry(Relation::Right, 5, &[1, 2, 3, 4, 9], 1),
        ]
    }

    fn relation_pairs_of(
        results: &[(usize, usize, u64)],
        entries: &[TokenEntry],
    ) -> Vec<((Relation, u64), (Relation, u64), u64)> {
        let mut out: Vec<_> = results
            .iter()
            .map(|&(i, j, d)| (entries[i].record_key(), entries[j].record_key(), d))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn bipartite_nested_loop_pairs_across_relations_only() {
        let entries = bipartite_group();
        let stats = JoinStats::default();
        let results = join_group_nested_loop(
            &entries,
            &GroupThresholds::Uniform(8),
            true,
            JoinMode::Bipartite,
            &stats,
        );
        let pairs = relation_pairs_of(&results, &entries);
        // Left 5 ↔ Right 2 at distance 2, Left 5 ↔ Right 5 at distance 2;
        // left 9 is far from both right records; left-left and right-right
        // pairs are never considered.
        assert_eq!(
            pairs,
            vec![
                ((Relation::Left, 5), (Relation::Right, 2), 2),
                ((Relation::Left, 5), (Relation::Right, 5), 2),
            ]
        );
        // 2 left × 2 right cross pairs, nothing else, counted as candidates.
        assert_eq!(stats.snapshot().candidates, 4);
        for &(i, j, _) in &results {
            assert_eq!(entries[i].relation, Relation::Left);
            assert_eq!(entries[j].relation, Relation::Right);
        }
    }

    #[test]
    fn bipartite_indexed_matches_nested_loop() {
        let entries = bipartite_group();
        let stats_nl = JoinStats::default();
        let nl = relation_pairs_of(
            &join_group_nested_loop(
                &entries,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::Bipartite,
                &stats_nl,
            ),
            &entries,
        );
        let stats_ix = JoinStats::default();
        let ix = relation_pairs_of(
            &join_group_indexed(
                &entries,
                |_| 3,
                &GroupThresholds::Uniform(8),
                true,
                JoinMode::Bipartite,
                &stats_ix,
                &mut GroupScratch::new(),
            ),
            &entries,
        );
        assert_eq!(nl, ix);
    }

    #[test]
    fn bipartite_rs_kernel_skips_same_relation_chunk_pairs() {
        // Chunks of a split bipartite group are mixed-relation; the cross
        // kernel must still only verify cross-relation pairs, including the
        // equal-id cross pair.
        let left_chunk = vec![
            tagged_entry(Relation::Left, 5, &[1, 2, 3, 4, 5], 1),
            tagged_entry(Relation::Right, 2, &[2, 1, 3, 4, 5], 1),
        ];
        let right_chunk = vec![
            tagged_entry(Relation::Left, 9, &[9, 8, 7, 6, 1], 1),
            tagged_entry(Relation::Right, 5, &[1, 2, 3, 4, 9], 1),
        ];
        let stats = JoinStats::default();
        let results = join_group_rs(
            &left_chunk,
            &right_chunk,
            &GroupThresholds::Uniform(8),
            true,
            JoinMode::Bipartite,
            &stats,
        );
        // Cross-relation pairs across the chunks: (L5, R5) hit at 2,
        // (R2, L9) far, and the same-relation pairs (L5, L9) / (R2, R5)
        // are skipped before the candidate counter.
        assert_eq!(stats.snapshot().candidates, 2);
        assert_eq!(results.len(), 1);
        let (i, j, d) = results[0];
        assert_eq!(left_chunk[i].record_key(), (Relation::Left, 5));
        assert_eq!(right_chunk[j].record_key(), (Relation::Right, 5));
        assert_eq!(d, 2);
    }

    #[test]
    fn codec_round_trips_relation_tag() {
        use minispark::Codec;
        let e = tagged_entry(Relation::Right, 11, &[1, 2, 3, 4, 5], 1);
        let mut bytes = Vec::new();
        e.encode(&mut bytes);
        let mut input = bytes.as_slice();
        let decoded = TokenEntry::decode(&mut input).expect("decode");
        assert!(input.is_empty());
        assert_eq!(decoded.relation, Relation::Right);
        assert_eq!(decoded.ranking, e.ranking);
    }
}
