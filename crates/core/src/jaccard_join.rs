//! Similarity joins under **Jaccard distance** — the paper's announced
//! future work (§8), implemented with the same architecture: frequency
//! ordering, prefix filtering, and the clustering/joining/expansion pipeline
//! justified by Jaccard distance being a metric.
//!
//! Differences from the Footrule pipeline:
//!
//! * records are treated as **sets** (rank positions are ignored),
//! * verification counts the overlap (`d_J = (2k − 2o)/(2k − o)` for two
//!   k-sets) instead of summing rank displacements,
//! * there is no position filter (ranks carry no information here),
//! * thresholds and distances are rationals represented as `f64`; all
//!   algorithms share one exact predicate
//!   ([`topk_rankings::jaccard::jaccard_within`]) so they decide candidate
//!   pairs identically, and the expansion's triangle bounds are applied
//!   with a conservative ε margin (a pruned/accepted decision is only taken
//!   when it holds with room to spare; everything else is verified).

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use minispark::{Cluster, Dataset, SkewBudget};
use topk_rankings::jaccard::{jaccard_prefix_len, jaccard_within};
use topk_rankings::{FrequencyTable, ItemId, OrderedRanking, Ranking, Relation};

use crate::stats::JoinStats;
use crate::{JoinError, JoinOutcome};

/// Safety margin for floating-point triangle bounds (distances are
/// rationals with denominator ≤ 2k; 1e-9 is far below their granularity).
const EPS: f64 = 1e-9;

/// Configuration of a Jaccard join.
#[derive(Debug, Clone, PartialEq)]
pub struct JaccardConfig {
    /// Jaccard distance threshold θ ∈ [0, 1].
    pub theta: f64,
    /// Clustering threshold θc for the CL variant.
    pub cluster_threshold: f64,
    /// Partitioning threshold δ for the CL-P variant (Algorithm 3 applied
    /// to sets): posting lists longer than this are split.
    pub partition_threshold: usize,
    /// Reduce-side partitions (0 = cluster default).
    pub partitions: usize,
    /// Opt-in skew handling for the token-grouped joins (see
    /// [`crate::JoinConfig::skew`]); `partition_threshold` remains CL-P's
    /// always-on δ.
    pub skew: SkewBudget,
}

impl JaccardConfig {
    /// A configuration with the paper-style default θc = 0.05 (Jaccard
    /// distances are coarser than Footrule, so a slightly larger clustering
    /// radius pays off).
    pub fn new(theta: f64) -> Self {
        Self {
            theta,
            cluster_threshold: 0.05,
            partition_threshold: 2_000,
            partitions: 0,
            skew: SkewBudget::Off,
        }
    }

    /// Sets the skew-handling policy for the token-grouped joins.
    pub fn with_skew(mut self, skew: SkewBudget) -> Self {
        self.skew = skew;
        self
    }

    /// Sets the partitioning threshold δ.
    pub fn with_partition_threshold(mut self, delta: usize) -> Self {
        self.partition_threshold = delta;
        self
    }

    /// Sets θc.
    pub fn with_cluster_threshold(mut self, theta_c: f64) -> Self {
        self.cluster_threshold = theta_c;
        self
    }

    fn validate(&self) -> Result<(), JoinError> {
        for t in [self.theta, self.cluster_threshold] {
            if !(0.0..=1.0).contains(&t) || !t.is_finite() {
                return Err(JoinError::InvalidThreshold(t));
            }
        }
        if self.partition_threshold == 0 || self.skew == SkewBudget::Fixed(0) {
            return Err(JoinError::InvalidPartitionThreshold);
        }
        Ok(())
    }

    fn effective_partitions(&self, default: usize) -> usize {
        if self.partitions == 0 {
            default.max(1)
        } else {
            self.partitions
        }
    }
}

type SetRecord = Arc<OrderedRanking>;

#[inline]
fn within(a: &SetRecord, b: &SetRecord, theta: f64, stats: &JoinStats) -> Option<f64> {
    JoinStats::bump(&stats.candidates);
    JoinStats::bump(&stats.verified);
    // Overlap over the pair representation (item order is canonical-
    // frequency order; only membership matters).
    let o = a
        .pairs()
        .iter()
        .filter(|(item, _)| b.pairs().iter().any(|(other, _)| other == item))
        .count();
    let total = a.k() + b.k();
    // cast(total ≤ 2·MAX_K ≤ 2^17 — exact in f64)
    let num = (total - 2 * o) as f64;
    let den = (total - o) as f64;
    if num <= theta * den {
        JoinStats::bump(&stats.result_pairs);
        Some(if den == 0.0 { 0.0 } else { num / den })
    } else {
        None
    }
}

fn order_sets(cluster: &Cluster, data: &[Ranking], partitions: usize) -> Dataset<SetRecord> {
    let ds = cluster.parallelize(data.to_vec(), partitions);
    let counts = ds
        .flat_map("jaccard/freq-emit", |r: &Ranking| {
            r.items()
                .iter()
                .map(|&item| (item, 1u64))
                .collect::<Vec<_>>()
        })
        .reduce_by_key("jaccard/freq-count", partitions, |a, b| a + b)
        .collect();
    let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
    ds.map("jaccard/order", move |r| {
        Arc::new(OrderedRanking::by_frequency(r, freq.value()))
    })
}

/// A `(smaller_id, larger_id, distance)` hit with both records attached.
#[derive(Clone)]
struct JaccardHit {
    a: SetRecord,
    b: SetRecord,
    distance: f64,
    a_singleton: bool,
    b_singleton: bool,
}

/// Joins the members of every token group with `pair_fn`, optionally
/// splitting groups longer than δ into sub-partitions that are spread with a
/// composite partitioner and joined pairwise — Algorithm 3 transplanted to
/// the Jaccard pipeline.
///
/// The chunk-split/spread/pair mechanics are
/// [`minispark::skew::split_grouped_join`], shared with
/// `crate::pipeline::token_grouped_join`; this wrapper only adapts the
/// caller-supplied pair function (rational thresholds, `JaccardHit`s) into
/// the splitter's self-/cross-join kernels and books the split counters.
fn split_group_join<M>(
    grouped: &Dataset<(ItemId, Vec<M>)>,
    delta: Option<usize>,
    partitions: usize,
    stats: &Arc<JoinStats>,
    label: &str,
    pair_fn: impl Fn(&M, &M) -> Option<JaccardHit> + Send + Sync + Clone + 'static,
) -> Dataset<JaccardHit>
where
    M: Clone + Send + Sync + 'static,
{
    let all_pairs = |members: &[M], pair_fn: &dyn Fn(&M, &M) -> Option<JaccardHit>| {
        let mut out = Vec::new();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if let Some(hit) = pair_fn(&members[i], &members[j]) {
                    out.push(hit);
                }
            }
        }
        out
    };
    match delta {
        None => {
            let pair_fn = pair_fn.clone();
            grouped.flat_map(&format!("{label}/join-groups"), move |(_, members)| {
                all_pairs(members, &pair_fn)
            })
        }
        Some(delta) => {
            let delta = delta.max(1);
            let (hits, split) = minispark::skew::split_grouped_join(
                grouped,
                delta,
                partitions,
                label,
                |_token, members: &[M]| all_pairs(members, &pair_fn),
                |_token, left: &[M], right: &[M]| {
                    let mut out = Vec::new();
                    for a in left {
                        for b in right {
                            if let Some(hit) = pair_fn(a, b) {
                                out.push(hit);
                            }
                        }
                    }
                    out
                },
            );
            JoinStats::add(&stats.posting_lists_split, split.groups_split);
            JoinStats::add(&stats.rs_joins, split.rs_joins);
            JoinStats::add(&stats.skew_chunks, split.chunks);
            JoinStats::add(&stats.skew_steals, split.stolen_tasks);
            hits
        }
    }
}

/// Prefix self-join of `ordered` at `theta` (nested-loop groups, global
/// dedup), the building block for both the flat join and CL's phases.
#[allow(clippy::too_many_arguments)]
fn jaccard_prefix_join(
    ordered: &Dataset<SetRecord>,
    k: usize,
    theta: f64,
    partitions: usize,
    delta: Option<usize>,
    skew: SkewBudget,
    stats: &Arc<JoinStats>,
    label: &str,
) -> Dataset<JaccardHit> {
    let p = jaccard_prefix_len(k, theta);
    let emitted = ordered.flat_map(&format!("{label}/emit-prefixes"), move |r: &SetRecord| {
        r.prefix(p)
            .iter()
            .map(|&(item, _)| (item, Arc::clone(r)))
            .collect::<Vec<_>>()
    });
    // θ = 1 admits disjoint pairs; route everyone into one sentinel group
    // (prefix filtering alone cannot produce token-disjoint candidates).
    let emitted = if theta >= 1.0 - EPS {
        emitted.union(
            &ordered.map(&format!("{label}/emit-sentinels"), |r: &SetRecord| {
                (ItemId::MAX, Arc::clone(r))
            }),
        )
    } else {
        emitted
    };
    // An explicit δ wins; otherwise the opt-in skew policy decides from the
    // pre-shuffle token stream (see pipeline::token_grouped_join).
    let delta = match delta {
        Some(d) => Some(d.max(1)),
        None => skew.resolve(&emitted, label),
    };
    let grouped = emitted.group_by_key(&format!("{label}/group-by-token"), partitions);
    let hits = {
        let stats_for_pairs = Arc::clone(stats);
        let pair_fn = move |a: &SetRecord, b: &SetRecord| -> Option<JaccardHit> {
            let (x, y) = if a.id() < b.id() { (a, b) } else { (b, a) };
            if x.id() == y.id() {
                return None;
            }
            within(x, y, theta, &stats_for_pairs).map(|d| JaccardHit {
                a: Arc::clone(x),
                b: Arc::clone(y),
                distance: d,
                a_singleton: false,
                b_singleton: false,
            })
        };
        split_group_join(&grouped, delta, partitions, stats, label, pair_fn)
    };
    // Keep-first dedup is value-deterministic: duplicates of one id pair all
    // carry the same exact distance (and `false` singleton tags), so the
    // survivor is content-equal regardless of hash-map iteration order.
    hits.map(&format!("{label}/key-pairs"), |h: &JaccardHit| {
        ((h.a.id(), h.b.id()), h.clone())
    })
    .reduce_by_key(&format!("{label}/dedup"), partitions, |a, _| a)
    .values(&format!("{label}/values"))
}

/// The flat prefix-filtered Jaccard join (the VJ-NL analogue for sets).
pub fn jaccard_vj_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JaccardConfig,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    let Some(k) = crate::pipeline::uniform_k(data)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let partitions = config.effective_partitions(cluster.config().default_partitions);
    let stats = Arc::new(JoinStats::default());
    let run_span = cluster.trace().span("jaccard-vj/run");
    let ordered = {
        let _phase = cluster.trace().span("jaccard-vj/phase/ordering");
        order_sets(cluster, data, partitions)
    };
    let hits = {
        let _phase = cluster.trace().span("jaccard-vj/phase/joining");
        jaccard_prefix_join(
            &ordered,
            k,
            config.theta,
            partitions,
            None,
            config.skew,
            &stats,
            "jaccard-vj",
        )
    };
    let mut pairs = {
        let _phase = cluster.trace().span("jaccard-vj/phase/projection");
        hits.map("jaccard-vj/ids", |h| (h.a.id(), h.b.id()))
            .distinct("jaccard-vj/distinct", partitions)
            .collect()
    };
    pairs.sort_unstable();
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// Canonicalizes both relations of an R-S join under **one** frequency
/// order counted over R ∪ S, so a shared token means the same canonical
/// position in either relation (prefix-filter completeness needs one order).
fn order_sets_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    partitions: usize,
) -> (Dataset<SetRecord>, Dataset<SetRecord>) {
    let left_ds = cluster.parallelize(left.to_vec(), partitions);
    let right_ds = cluster.parallelize(right.to_vec(), partitions);
    let counts = left_ds
        .union(&right_ds)
        .flat_map("jaccard-rs/freq-emit", |r: &Ranking| {
            r.items()
                .iter()
                .map(|&item| (item, 1u64))
                .collect::<Vec<_>>()
        })
        .reduce_by_key("jaccard-rs/freq-count", partitions, |a, b| a + b)
        .collect();
    let freq = cluster.broadcast(FrequencyTable::from_counts(counts));
    let freq_r = freq.clone();
    (
        left_ds.map("jaccard-rs/order-left", move |r| {
            Arc::new(OrderedRanking::by_frequency(r, freq.value()))
        }),
        right_ds.map("jaccard-rs/order-right", move |r| {
            Arc::new(OrderedRanking::by_frequency(r, freq_r.value()))
        }),
    )
}

/// The flat prefix-filtered Jaccard join over **two relations** (R-S join).
///
/// Records are tagged with their source [`Relation`] at prefix emission;
/// the per-token pair function joins **cross-relation** pairs only and
/// always leads with the left record, so the output pairs are
/// `(left id, right id)`, sorted — the id spaces of R and S may overlap.
pub fn jaccard_vj_join_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    config: &JaccardConfig,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    let Some(k) = crate::pipeline::rs_uniform_k(left, right)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta = config.theta;
    let partitions = config.effective_partitions(cluster.config().default_partitions);
    let stats = Arc::new(JoinStats::default());
    let run_span = cluster.trace().span("jaccard-vj-rs/run");
    let (ordered_left, ordered_right) = {
        let _phase = cluster.trace().span("jaccard-vj-rs/phase/ordering");
        order_sets_rs(cluster, left, right, partitions)
    };
    let p = jaccard_prefix_len(k, theta);
    let tag = |ds: &Dataset<SetRecord>, relation: Relation, label: &str| {
        ds.flat_map(label, move |r: &SetRecord| {
            r.prefix(p)
                .iter()
                .map(|&(item, _)| (item, (Arc::clone(r), relation)))
                .collect::<Vec<_>>()
        })
    };
    let hits =
        {
            let _phase = cluster.trace().span("jaccard-vj-rs/phase/joining");
            let emitted = tag(&ordered_left, Relation::Left, "jaccard-vj-rs/emit-left").union(
                &tag(&ordered_right, Relation::Right, "jaccard-vj-rs/emit-right"),
            );
            // θ = 1 admits disjoint pairs; route both relations into one
            // sentinel group, as the self-join pipeline does.
            let emitted = if theta >= 1.0 - EPS {
                let sentinel = |ds: &Dataset<SetRecord>, relation: Relation, label: &str| {
                    ds.map(label, move |r: &SetRecord| {
                        (ItemId::MAX, (Arc::clone(r), relation))
                    })
                };
                emitted
                    .union(&sentinel(
                        &ordered_left,
                        Relation::Left,
                        "jaccard-vj-rs/left-sentinels",
                    ))
                    .union(&sentinel(
                        &ordered_right,
                        Relation::Right,
                        "jaccard-vj-rs/right-sentinels",
                    ))
            } else {
                emitted
            };
            let delta = config.skew.resolve(&emitted, "jaccard-vj-rs");
            let grouped = emitted.group_by_key("jaccard-vj-rs/group-by-token", partitions);
            let stats_for_pairs = Arc::clone(&stats);
            let pair_fn = move |x: &(SetRecord, Relation), y: &(SetRecord, Relation)| {
                // Same-relation pairs are not part of an R-S join; skipping them
                // here (before `within` counts a candidate) keeps kernel stats
                // identical whether or not a hot group was skew-split.
                if x.1 == y.1 {
                    return None;
                }
                let (l, r) = if x.1 == Relation::Left {
                    (&x.0, &y.0)
                } else {
                    (&y.0, &x.0)
                };
                within(l, r, theta, &stats_for_pairs).map(|d| JaccardHit {
                    a: Arc::clone(l),
                    b: Arc::clone(r),
                    distance: d,
                    a_singleton: false,
                    b_singleton: false,
                })
            };
            split_group_join(
                &grouped,
                delta,
                partitions,
                &stats,
                "jaccard-vj-rs",
                pair_fn,
            )
        };
    let mut pairs = {
        let _phase = cluster.trace().span("jaccard-vj-rs/phase/projection");
        // `a` is always the left record, so the (left id, right id) key is
        // unambiguous even when the two id spaces overlap.
        hits.map("jaccard-vj-rs/ids", |h| (h.a.id(), h.b.id()))
            .distinct("jaccard-vj-rs/distinct", partitions)
            .collect()
    };
    pairs.sort_unstable();
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// Exact quadratic Jaccard R-S baseline: every cross-relation pair, output
/// `(left id, right id)`, sorted.
pub fn jaccard_brute_force_rs(
    cluster: &Cluster,
    left: &[Ranking],
    right: &[Ranking],
    theta: f64,
) -> Result<JoinOutcome, JoinError> {
    if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
        return Err(JoinError::InvalidThreshold(theta));
    }
    let start = Instant::now();
    if crate::pipeline::rs_uniform_k(left, right)?.is_none() {
        return Ok(JoinOutcome::empty(start.elapsed()));
    }
    let shared_right = cluster.broadcast(Arc::new(right.to_vec()));
    let partitions = cluster.config().default_partitions;
    let left_ds = cluster.parallelize(left.to_vec(), partitions);
    let pairs_ds = left_ds.flat_map("jaccard-bf-rs/compare", move |a: &Ranking| {
        let right = shared_right.value();
        let mut out = Vec::new();
        for b in right.iter() {
            if jaccard_within(a, b, theta).is_some() {
                out.push((a.id(), b.id()));
            }
        }
        out
    });
    let mut pairs = pairs_ds
        .distinct("jaccard-bf-rs/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: crate::stats::StatsSnapshot::default(),
        elapsed: start.elapsed(),
    })
}

/// The CL pipeline under Jaccard distance: cluster at θc, join centroids at
/// `min(θ + 2θc, 1)`, expand with (ε-guarded) triangle bounds.
pub fn jaccard_cl_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JaccardConfig,
) -> Result<JoinOutcome, JoinError> {
    jaccard_cl_flavour(cluster, data, config, None)
}

/// CL-P for sets: the CL pipeline with Algorithm-3 repartitioning of the
/// centroid join's posting lists at `config.partition_threshold`.
pub fn jaccard_clp_join(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JaccardConfig,
) -> Result<JoinOutcome, JoinError> {
    jaccard_cl_flavour(cluster, data, config, Some(config.partition_threshold))
}

fn jaccard_cl_flavour(
    cluster: &Cluster,
    data: &[Ranking],
    config: &JaccardConfig,
    delta: Option<usize>,
) -> Result<JoinOutcome, JoinError> {
    config.validate()?;
    let start = Instant::now();
    let Some(k) = crate::pipeline::uniform_k(data)? else {
        return Ok(JoinOutcome::empty(start.elapsed()));
    };
    let theta = config.theta;
    let theta_c = config.cluster_threshold;
    let partitions = config.effective_partitions(cluster.config().default_partitions);
    let stats = Arc::new(JoinStats::default());

    // Phase spans mirror the Footrule CL driver: Ordering → Clustering →
    // Joining → Expansion → Dedup on the trace timeline (no-ops unless the
    // cluster records a trace). The guard is rebound at each section break.
    let run_span = cluster.trace().span("jaccard-cl/run");
    let phase = cluster.trace().span("jaccard-cl/phase/ordering");
    let ordered = order_sets(cluster, data, partitions);
    drop(phase);

    // ---- Clustering at θc. ------------------------------------------------
    let phase = cluster.trace().span("jaccard-cl/phase/clustering");
    let rc = jaccard_prefix_join(
        &ordered,
        k,
        theta_c,
        partitions,
        None,
        config.skew,
        &stats,
        "jaccard-cl/cluster",
    );
    let clusters = rc
        .map("jaccard-cl/assignments", |h| {
            (h.a.id(), (Arc::clone(&h.b), h.distance))
        })
        .group_by_key("jaccard-cl/form-clusters", partitions);
    // Keep-first is value-deterministic: all values under one centroid id
    // are `Arc`s of the same canonical record.
    let centroids_m = rc
        .map("jaccard-cl/centroid-candidates", |h| {
            (h.a.id(), Arc::clone(&h.a))
        })
        .reduce_by_key("jaccard-cl/dedup-centroids", partitions, |a, _| a)
        .values("jaccard-cl/centroids");
    let paired_ids: HashSet<u64> = rc
        .flat_map("jaccard-cl/paired-ids", |h| vec![h.a.id(), h.b.id()])
        .distinct("jaccard-cl/distinct-ids", partitions)
        .collect()
        .into_iter()
        .collect();
    JoinStats::add(&stats.clusters, clusters.count() as u64);
    let paired = cluster.broadcast(paired_ids);
    let singletons = {
        let paired = paired.clone();
        ordered.filter("jaccard-cl/singletons", move |r: &SetRecord| {
            !paired.value().contains(&r.id())
        })
    };
    JoinStats::add(&stats.singletons, singletons.count() as u64);

    // Cluster-internal results.
    let within_cluster = {
        let stats = Arc::clone(&stats);
        clusters.flat_map("jaccard-cl/within-cluster", move |(centroid, members)| {
            let mut out = Vec::new();
            for (m, d) in members {
                if *d <= theta {
                    out.push(ordered_ids(*centroid, m.id()));
                }
            }
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (mi, di) = &members[i];
                    let (mj, dj) = &members[j];
                    if mi.id() == mj.id() {
                        continue;
                    }
                    if di + dj <= theta - EPS {
                        JoinStats::bump(&stats.triangle_accepted);
                        out.push(ordered_ids(mi.id(), mj.id()));
                    } else if (di - dj).abs() > theta + EPS {
                        JoinStats::bump(&stats.triangle_pruned);
                    } else if within(mi, mj, theta, &stats).is_some() {
                        out.push(ordered_ids(mi.id(), mj.id()));
                    }
                }
            }
            out
        })
    };

    drop(phase);

    // ---- Joining the centroids at θ + 2θc (mixed thresholds per type). ----
    let phase = cluster.trace().span("jaccard-cl/phase/joining");
    let theta_o = (theta + 2.0 * theta_c).min(1.0);
    let theta_ms = (theta + theta_c).min(1.0);
    let p_m = jaccard_prefix_len(k, theta_o);
    let p_s = jaccard_prefix_len(k, theta_ms);
    let tag = |ds: &Dataset<SetRecord>, singleton: bool, p: usize, label: &str| {
        ds.flat_map(label, move |r: &SetRecord| {
            r.prefix(p)
                .iter()
                .map(|&(item, _)| (item, (Arc::clone(r), singleton)))
                .collect::<Vec<_>>()
        })
    };
    let emitted = tag(&centroids_m, false, p_m, "jaccard-cl/emit-cm").union(&tag(
        &singletons,
        true,
        p_s,
        "jaccard-cl/emit-cs",
    ));
    // θ = 1 admits disjoint pairs, which share no token: route everyone into
    // one sentinel group, as the Footrule pipeline does.
    let emitted = if theta_o >= 1.0 - EPS {
        let cm = centroids_m.map("jaccard-cl/cm-sentinels", |r: &SetRecord| {
            (ItemId::MAX, (Arc::clone(r), false))
        });
        let cs = singletons.map("jaccard-cl/cs-sentinels", |r: &SetRecord| {
            (ItemId::MAX, (Arc::clone(r), true))
        });
        emitted.union(&cm).union(&cs)
    } else {
        emitted
    };
    // Explicit δ (CL-P) wins; otherwise the skew policy may opt the centroid
    // join into splitting.
    let delta = match delta {
        Some(d) => Some(d.max(1)),
        None => config.skew.resolve(&emitted, "jaccard-cl/join"),
    };
    let grouped = emitted.group_by_key("jaccard-cl/group-centroids", partitions);
    let cjoin = {
        let stats_for_pairs = Arc::clone(&stats);
        let pair_fn = move |x: &(SetRecord, bool), y: &(SetRecord, bool)| -> Option<JaccardHit> {
            let ((ri, si), (rj, sj)) = (x, y);
            if ri.id() == rj.id() {
                return None;
            }
            let threshold = match (si, sj) {
                (false, false) => theta_o,
                (true, true) => theta,
                _ => theta_ms,
            };
            within(ri, rj, threshold, &stats_for_pairs).map(|d| {
                let (a, b, a_s, b_s) = if ri.id() < rj.id() {
                    (ri, rj, *si, *sj)
                } else {
                    (rj, ri, *sj, *si)
                };
                JaccardHit {
                    a: Arc::clone(a),
                    b: Arc::clone(b),
                    distance: d,
                    a_singleton: a_s,
                    b_singleton: b_s,
                }
            })
        };
        split_group_join(
            &grouped,
            delta,
            partitions,
            &stats,
            "jaccard-cl/join",
            pair_fn,
        )
    };
    // Keep-first is value-deterministic: duplicates of one centroid pair
    // share the exact distance and the centroids' fixed singleton tags.
    let cjoin = cjoin
        .map("jaccard-cl/key-cpairs", |h: &JaccardHit| {
            ((h.a.id(), h.b.id()), h.clone())
        })
        .reduce_by_key("jaccard-cl/dedup-cpairs", partitions, |a, _| a)
        .values("jaccard-cl/cpairs");

    drop(phase);

    // ---- Expansion. --------------------------------------------------------
    let phase = cluster.trace().span("jaccard-cl/phase/expansion");
    let direct = cjoin
        .filter("jaccard-cl/direct", move |h: &JaccardHit| {
            h.distance <= theta
        })
        .map("jaccard-cl/direct-ids", |h| (h.a.id(), h.b.id()));
    let rm = cjoin.filter("jaccard-cl/rm", |h: &JaccardHit| {
        !(h.a_singleton && h.b_singleton)
    });
    let member_vs_centroid = {
        let by_centroid = rm.flat_map("jaccard-cl/key-by-centroid", |h: &JaccardHit| {
            let mut out = Vec::with_capacity(2);
            if !h.a_singleton {
                out.push((h.a.id(), (Arc::clone(&h.b), h.distance)));
            }
            if !h.b_singleton {
                out.push((h.b.id(), (Arc::clone(&h.a), h.distance)));
            }
            out
        });
        let joined = by_centroid.join("jaccard-cl/join-members", &clusters, partitions);
        let stats = Arc::clone(&stats);
        joined.flat_map(
            "jaccard-cl/member-centroid",
            move |(_, ((other, d), members))| {
                let mut out = Vec::new();
                for (m, d_i) in members {
                    if m.id() == other.id() {
                        continue;
                    }
                    if (d - d_i).abs() > theta + EPS {
                        JoinStats::bump(&stats.triangle_pruned);
                    } else if d + d_i <= theta - EPS {
                        JoinStats::bump(&stats.triangle_accepted);
                        out.push(ordered_ids(m.id(), other.id()));
                    } else if within(m, other, theta, &stats).is_some() {
                        out.push(ordered_ids(m.id(), other.id()));
                    }
                }
                out
            },
        )
    };
    let member_vs_member = {
        let both_m = rm
            .filter("jaccard-cl/both-m", |h: &JaccardHit| {
                !h.a_singleton && !h.b_singleton
            })
            .map("jaccard-cl/key-mm", |h: &JaccardHit| {
                (h.a.id(), (h.b.id(), h.distance))
            });
        let with_a = both_m
            .join("jaccard-cl/join-a", &clusters, partitions)
            .map("jaccard-cl/rekey-b", rekey_by_second_centroid);
        let with_both = with_a.join("jaccard-cl/join-b", &clusters, partitions);
        let stats = Arc::clone(&stats);
        with_both.flat_map(
            "jaccard-cl/member-member",
            move |(_, ((d, members_a), members_b))| {
                let mut out = Vec::new();
                for (ma, d_a) in members_a {
                    for (mb, d_b) in members_b {
                        if ma.id() == mb.id() {
                            continue;
                        }
                        let lower = (d - d_a - d_b).max(d_a - d - d_b).max(d_b - d - d_a);
                        if lower > theta + EPS {
                            JoinStats::bump(&stats.triangle_pruned);
                        } else if d + d_a + d_b <= theta - EPS {
                            JoinStats::bump(&stats.triangle_accepted);
                            out.push(ordered_ids(ma.id(), mb.id()));
                        } else if within(ma, mb, theta, &stats).is_some() {
                            out.push(ordered_ids(ma.id(), mb.id()));
                        }
                    }
                }
                out
            },
        )
    };

    drop(phase);

    let phase = cluster.trace().span("jaccard-cl/phase/dedup");
    let mut pairs = direct
        .union(&member_vs_centroid)
        .union(&member_vs_member)
        .union(&within_cluster)
        .distinct("jaccard-cl/final-distinct", partitions)
        .collect();
    pairs.sort_unstable();
    drop(phase);
    drop(run_span);
    Ok(JoinOutcome {
        pairs,
        stats: stats.snapshot(),
        elapsed: start.elapsed(),
    })
}

/// Exact quadratic Jaccard baseline.
pub fn jaccard_brute_force(
    cluster: &Cluster,
    data: &[Ranking],
    theta: f64,
) -> Result<JoinOutcome, JoinError> {
    if !(0.0..=1.0).contains(&theta) || !theta.is_finite() {
        return Err(JoinError::InvalidThreshold(theta));
    }
    let start = Instant::now();
    crate::pipeline::uniform_k(data)?;
    let shared = cluster.broadcast(Arc::new(data.to_vec()));
    let partitions = cluster.config().default_partitions;
    let indices = cluster.parallelize((0..data.len()).collect(), partitions);
    let pairs_ds = indices.flat_map("jaccard-bf/compare", move |&i| {
        let data = shared.value();
        let a = &data[i];
        let mut out = Vec::new();
        for b in &data[i + 1..] {
            if jaccard_within(a, b, theta).is_some() {
                out.push(ordered_ids(a.id(), b.id()));
            }
        }
        out
    });
    let mut pairs = pairs_ds
        .distinct("jaccard-bf/distinct", partitions)
        .collect();
    pairs.sort_unstable();
    Ok(JoinOutcome {
        pairs,
        stats: crate::stats::StatsSnapshot::default(),
        elapsed: start.elapsed(),
    })
}

type JaccardMmRow = (u64, ((u64, f64), Vec<(SetRecord, f64)>));

/// Rekeys an `R_j ⋈ clusters` row by the second centroid (Algorithm 2).
fn rekey_by_second_centroid(
    (_, ((b_id, d), members_a)): &JaccardMmRow,
) -> (u64, (f64, Vec<(SetRecord, f64)>)) {
    (*b_id, (*d, members_a.clone()))
}

#[inline]
fn ordered_ids(x: u64, y: u64) -> (u64, u64) {
    if x < y {
        (x, y)
    } else {
        (y, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minispark::ClusterConfig;
    use topk_datagen::CorpusProfile;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::local(4).with_default_partitions(8))
    }

    fn corpus() -> Vec<Ranking> {
        CorpusProfile::orku_like(300, 10).generate()
    }

    #[test]
    fn vj_matches_brute_force() {
        let c = cluster();
        let data = corpus();
        for theta in [0.1, 0.3, 0.5, 0.7] {
            let expected = jaccard_brute_force(&c, &data, theta).unwrap().pairs;
            let got = jaccard_vj_join(&c, &data, &JaccardConfig::new(theta))
                .unwrap()
                .pairs;
            assert_eq!(got, expected, "θ = {theta}");
        }
    }

    #[test]
    fn cl_matches_brute_force() {
        let c = cluster();
        let data = corpus();
        for theta in [0.2, 0.4, 0.6] {
            let expected = jaccard_brute_force(&c, &data, theta).unwrap().pairs;
            let got = jaccard_cl_join(&c, &data, &JaccardConfig::new(theta))
                .unwrap()
                .pairs;
            assert_eq!(got, expected, "θ = {theta}");
        }
    }

    #[test]
    fn clp_matches_brute_force_and_is_invariant_to_delta() {
        let c = cluster();
        let data = corpus();
        let expected = jaccard_brute_force(&c, &data, 0.4).unwrap().pairs;
        for delta in [1usize, 5, 40, 100_000] {
            let cfg = JaccardConfig::new(0.4).with_partition_threshold(delta);
            let got = jaccard_clp_join(&c, &data, &cfg).unwrap().pairs;
            assert_eq!(got, expected, "δ = {delta}");
        }
    }

    #[test]
    fn clp_actually_splits_lists() {
        let c = cluster();
        let data = corpus();
        let cfg = JaccardConfig::new(0.4).with_partition_threshold(3);
        let outcome = jaccard_clp_join(&c, &data, &cfg).unwrap();
        assert!(outcome.stats.posting_lists_split > 0);
        assert!(outcome.stats.rs_joins > 0);
    }

    #[test]
    fn cl_invariant_to_theta_c() {
        let c = cluster();
        let data = corpus();
        let expected = jaccard_brute_force(&c, &data, 0.4).unwrap().pairs;
        for theta_c in [0.0, 0.05, 0.1, 0.2] {
            let cfg = JaccardConfig::new(0.4).with_cluster_threshold(theta_c);
            let got = jaccard_cl_join(&c, &data, &cfg).unwrap().pairs;
            assert_eq!(got, expected, "θc = {theta_c}");
        }
    }

    #[test]
    fn extreme_thresholds() {
        let c = cluster();
        let data = CorpusProfile::dblp_like(120, 10).generate();
        for theta in [0.0, 1.0] {
            let expected = jaccard_brute_force(&c, &data, theta).unwrap().pairs;
            let vj = jaccard_vj_join(&c, &data, &JaccardConfig::new(theta))
                .unwrap()
                .pairs;
            assert_eq!(vj, expected, "VJ θ = {theta}");
            let cl = jaccard_cl_join(&c, &data, &JaccardConfig::new(theta))
                .unwrap()
                .pairs;
            assert_eq!(cl, expected, "CL θ = {theta}");
        }
    }

    #[test]
    fn clustering_forms_and_triangle_bounds_fire() {
        let c = cluster();
        let data = corpus();
        let outcome = jaccard_cl_join(&c, &data, &JaccardConfig::new(0.4)).unwrap();
        assert!(outcome.stats.clusters > 0);
        assert!(outcome.stats.triangle_accepted + outcome.stats.triangle_pruned > 0);
    }

    #[test]
    fn rs_matches_brute_force_with_overlapping_ids() {
        let c = cluster();
        // Same profile, different seeds → overlapping id spaces with
        // genuinely different records, plus real near-matches.
        let left = CorpusProfile::orku_like(160, 10).generate();
        let right = CorpusProfile::orku_like(120, 10).with_seed(7).generate();
        for theta in [0.2, 0.5, 1.0] {
            let expected = jaccard_brute_force_rs(&c, &left, &right, theta)
                .unwrap()
                .pairs;
            let got = jaccard_vj_join_rs(&c, &left, &right, &JaccardConfig::new(theta))
                .unwrap()
                .pairs;
            assert_eq!(got, expected, "θ = {theta}");
            if theta >= 1.0 {
                // θ = 1 admits every cross pair, including disjoint ones.
                assert_eq!(expected.len(), 160 * 120, "θ = 1 matches everything");
            }
        }
    }

    #[test]
    fn rs_empty_sides_and_skew_invariance() {
        let c = cluster();
        let left = CorpusProfile::orku_like(140, 10).generate();
        let right = CorpusProfile::orku_like(90, 10).with_seed(3).generate();
        assert!(jaccard_vj_join_rs(&c, &left, &[], &JaccardConfig::new(0.4))
            .unwrap()
            .pairs
            .is_empty());
        assert!(
            jaccard_vj_join_rs(&c, &[], &right, &JaccardConfig::new(0.4))
                .unwrap()
                .pairs
                .is_empty()
        );
        let expected = jaccard_brute_force_rs(&c, &left, &right, 0.5)
            .unwrap()
            .pairs;
        for skew in [SkewBudget::Off, SkewBudget::Auto, SkewBudget::Fixed(4)] {
            let cfg = JaccardConfig::new(0.5).with_skew(skew);
            let got = jaccard_vj_join_rs(&c, &left, &right, &cfg).unwrap().pairs;
            assert_eq!(got, expected, "skew = {skew:?}");
        }
    }

    #[test]
    fn empty_and_invalid_inputs() {
        let c = cluster();
        assert!(jaccard_vj_join(&c, &[], &JaccardConfig::new(0.3))
            .unwrap()
            .pairs
            .is_empty());
        assert!(jaccard_cl_join(&c, &[], &JaccardConfig::new(0.3))
            .unwrap()
            .pairs
            .is_empty());
        assert!(jaccard_vj_join(&c, &[], &JaccardConfig::new(1.5)).is_err());
        assert!(jaccard_brute_force(&c, &[], f64::NAN).is_err());
        let zero_delta = JaccardConfig::new(0.3).with_partition_threshold(0);
        assert!(matches!(
            jaccard_clp_join(&c, &[], &zero_delta),
            Err(JoinError::InvalidPartitionThreshold)
        ));
    }
}
